#include "xml/arena.h"

#include <algorithm>
#include <cstring>
#include <string>

namespace dtdevolve::xml {

namespace {

/// Bounded thread-local free list of default-size chunks. A chunk is
/// plain memory, so it may be released on a different thread than it was
/// acquired on (documents move across threads in the server); each
/// thread's pool simply caps its own retention.
constexpr size_t kMaxPooledChunks = 32;
thread_local std::vector<std::unique_ptr<char[]>> chunk_pool;

}  // namespace

Arena::~Arena() {
  for (Chunk& chunk : chunks_) {
    if (chunk.data != nullptr && chunk.size == kDefaultChunkBytes &&
        chunk_pool.size() < kMaxPooledChunks) {
      chunk_pool.push_back(std::move(chunk.data));
    }
  }
}

void Arena::NewChunk(size_t min_bytes) {
  size_t size = std::max(kDefaultChunkBytes, min_bytes);
  Chunk chunk;
  if (size == kDefaultChunkBytes && !chunk_pool.empty()) {
    chunk.data = std::move(chunk_pool.back());
    chunk_pool.pop_back();
  } else {
    // Uninitialized on purpose: every byte handed out is written before
    // it is read (tree nodes are placement-new'd, strings memcpy'd).
    chunk.data = std::unique_ptr<char[]>(new char[size]);
  }
  chunk.size = size;
  cursor_ = chunk.data.get();
  remaining_ = size;
  bytes_reserved_ += size;
  chunks_.push_back(std::move(chunk));
}

void* Arena::Allocate(size_t bytes, size_t align) {
  if (bytes == 0) bytes = 1;
  size_t padding =
      (align - reinterpret_cast<uintptr_t>(cursor_) % align) % align;
  if (padding + bytes > remaining_) {
    NewChunk(bytes + align);
    padding = (align - reinterpret_cast<uintptr_t>(cursor_) % align) % align;
  }
  cursor_ += padding;
  remaining_ -= padding;
  void* result = cursor_;
  cursor_ += bytes;
  remaining_ -= bytes;
  bytes_allocated_ += bytes;
  return result;
}

std::string_view Arena::CopyString(std::string_view text) {
  if (text.empty()) return {};
  char* storage = AllocateArray<char>(text.size());
  std::memcpy(storage, text.data(), text.size());
  return {storage, text.size()};
}

namespace {

std::unique_ptr<Element> MaterializeElement(const ArenaElement& element) {
  auto out = std::make_unique<Element>(std::string(element.tag));
  for (const ArenaAttribute& attr : element.attributes()) {
    out->AddAttribute(std::string(attr.name), std::string(attr.value));
  }
  for (const ArenaChild& child : element.child_nodes()) {
    if (child.is_element()) {
      out->AddChild(MaterializeElement(*child.element));
    } else {
      out->AddText(std::string(child.text));
    }
  }
  return out;
}

}  // namespace

Document ArenaDocument::ToDocument() const {
  Document doc;
  doc.set_doctype_name(std::string(doctype_name_));
  doc.set_internal_subset(std::string(internal_subset_));
  if (root_ != nullptr) doc.set_root(MaterializeElement(*root_));
  return doc;
}

}  // namespace dtdevolve::xml
