#ifndef DTDEVOLVE_XML_DOCUMENT_H_
#define DTDEVOLVE_XML_DOCUMENT_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/symbol_table.h"

namespace dtdevolve::xml {

class Element;

/// A node of the document tree. The paper represents documents as labeled
/// trees whose labels come from a set EN of element tags plus a set V of
/// #PCDATA values; accordingly a node is either an Element (tag label) or a
/// Text node (value label).
class Node {
 public:
  enum class Kind { kElement, kText };

  virtual ~Node() = default;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  Kind kind() const { return kind_; }
  bool is_element() const { return kind_ == Kind::kElement; }
  bool is_text() const { return kind_ == Kind::kText; }

  /// Downcasts; must only be called when the kind matches.
  const Element& AsElement() const;
  Element& AsElement();

  /// Deep copy of this node and its subtree.
  virtual std::unique_ptr<Node> Clone() const = 0;

 protected:
  explicit Node(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// A #PCDATA leaf.
class Text : public Node {
 public:
  explicit Text(std::string value)
      : Node(Kind::kText), value_(std::move(value)) {}

  const std::string& value() const { return value_; }
  void set_value(std::string value) { value_ = std::move(value); }

  std::unique_ptr<Node> Clone() const override {
    return std::make_unique<Text>(value_);
  }

 private:
  std::string value_;
};

/// An attribute as it appeared on a start tag.
struct Attribute {
  std::string name;
  std::string value;

  friend bool operator==(const Attribute&, const Attribute&) = default;
};

/// An element node: a tag label plus an ordered list of child nodes.
class Element : public Node {
 public:
  explicit Element(std::string tag)
      : Node(Kind::kElement),
        tag_(std::move(tag)),
        tag_id_(util::InternSymbolBounded(tag_)) {}

  const std::string& tag() const { return tag_; }
  void set_tag(std::string tag) {
    tag_ = std::move(tag);
    tag_id_ = util::InternSymbolBounded(tag_);
  }

  /// Dense id of the tag in `util::GlobalSymbols()`, interned at
  /// construction — the similarity hot path compares these instead of
  /// strings. Tags come from untrusted documents, so interning is
  /// bounded: past the table's capacity this is
  /// `util::SymbolTable::kNoSymbol`, which is shared by every overflow
  /// tag and therefore never meaningful under `==` — consumers must fall
  /// back to comparing `tag()` strings. A tag that matches any DTD label
  /// always resolves to the label's real id, so an overflow id also
  /// certifies the tag is undeclared in every loaded DTD.
  int32_t tag_id() const { return tag_id_; }

  const std::vector<Attribute>& attributes() const { return attributes_; }
  void AddAttribute(std::string name, std::string value) {
    attributes_.push_back({std::move(name), std::move(value)});
  }
  /// Returns the value of attribute `name`, or nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const;

  const std::vector<std::unique_ptr<Node>>& children() const {
    return children_;
  }
  std::vector<std::unique_ptr<Node>>& children() { return children_; }

  /// Appends a child node and returns a reference to it.
  Node& AddChild(std::unique_ptr<Node> child);
  /// Convenience: appends a new child element with the given tag.
  Element& AddElement(std::string tag);
  /// Convenience: appends a new text child.
  Text& AddText(std::string value);

  /// Direct child elements, in document order (text children skipped).
  std::vector<const Element*> ChildElements() const;
  std::vector<Element*> ChildElements();

  /// Allocation-free iteration over direct child elements — the hot-loop
  /// replacement for `ChildElements()`, which materializes a fresh
  /// vector on every call.
  class ChildElementIterator {
   public:
    ChildElementIterator(const std::unique_ptr<Node>* pos,
                         const std::unique_ptr<Node>* end)
        : pos_(pos), end_(end) {
      SkipText();
    }
    const Element& operator*() const { return (*pos_)->AsElement(); }
    const Element* operator->() const { return &(*pos_)->AsElement(); }
    ChildElementIterator& operator++() {
      ++pos_;
      SkipText();
      return *this;
    }
    friend bool operator==(const ChildElementIterator& a,
                           const ChildElementIterator& b) {
      return a.pos_ == b.pos_;
    }

   private:
    void SkipText() {
      while (pos_ != end_ && !(*pos_)->is_element()) ++pos_;
    }
    const std::unique_ptr<Node>* pos_;
    const std::unique_ptr<Node>* end_;
  };
  class ChildElementRange {
   public:
    ChildElementRange(const std::unique_ptr<Node>* begin,
                      const std::unique_ptr<Node>* end)
        : begin_(begin), end_(end) {}
    ChildElementIterator begin() const { return {begin_, end_}; }
    ChildElementIterator end() const { return {end_, end_}; }

   private:
    const std::unique_ptr<Node>* begin_;
    const std::unique_ptr<Node>* end_;
  };
  ChildElementRange child_elements() const {
    return {children_.data(), children_.data() + children_.size()};
  }

  /// The paper's function αβ: the *set* of tags of direct subelements.
  std::set<std::string> ChildTagSet() const;
  /// Tags of direct subelements in document order (with repetitions).
  std::vector<std::string> ChildTagSequence() const;

  /// True if this element has a text (non-blank) child.
  bool HasTextContent() const;
  /// Concatenation of all direct text children.
  std::string TextContent() const;

  /// Number of element nodes in this subtree, including this one.
  size_t SubtreeElementCount() const;
  /// Height of the element subtree (a leaf element has height 1).
  size_t SubtreeHeight() const;

  std::unique_ptr<Node> Clone() const override;
  /// Clone with the concrete Element type preserved.
  std::unique_ptr<Element> CloneElement() const;

 private:
  std::string tag_;
  int32_t tag_id_ = -1;
  std::vector<Attribute> attributes_;
  std::vector<std::unique_ptr<Node>> children_;
};

/// A parsed XML document: optional DOCTYPE information plus the root element.
class Document {
 public:
  Document() = default;
  explicit Document(std::unique_ptr<Element> root) : root_(std::move(root)) {}

  Document(Document&&) = default;
  Document& operator=(Document&&) = default;

  bool has_root() const { return root_ != nullptr; }
  const Element& root() const { return *root_; }
  Element& root() { return *root_; }
  void set_root(std::unique_ptr<Element> root) { root_ = std::move(root); }

  /// Name declared in <!DOCTYPE name ...>, empty when absent.
  const std::string& doctype_name() const { return doctype_name_; }
  void set_doctype_name(std::string name) { doctype_name_ = std::move(name); }

  /// Raw text of the DOCTYPE internal subset (between '[' and ']'),
  /// empty when absent; parse it with dtd::ParseDtd if needed.
  const std::string& internal_subset() const { return internal_subset_; }
  void set_internal_subset(std::string text) {
    internal_subset_ = std::move(text);
  }

  Document Clone() const;

 private:
  std::string doctype_name_;
  std::string internal_subset_;
  std::unique_ptr<Element> root_;
};

/// Structural equality of two element subtrees: same tags, same ordered
/// children, same attributes, same (stripped) text content.
bool StructurallyEqual(const Element& a, const Element& b);

}  // namespace dtdevolve::xml

#endif  // DTDEVOLVE_XML_DOCUMENT_H_
