#ifndef DTDEVOLVE_VALIDATE_VALIDATOR_H_
#define DTDEVOLVE_VALIDATE_VALIDATOR_H_

#include <map>
#include <string>
#include <vector>

#include "dtd/dtd.h"
#include "dtd/glushkov.h"
#include "xml/document.h"

namespace dtdevolve::validate {

/// One validity violation, located by a slash path from the root.
struct ValidationError {
  std::string path;
  std::string message;
};

/// Outcome of validating a document (or subtree) against a DTD.
struct ValidationResult {
  bool valid = true;
  std::vector<ValidationError> errors;
  /// Elements visited / elements whose own content violated their
  /// declaration. `invalid_elements / total_elements` is the per-document
  /// ratio the evolution trigger condition aggregates.
  size_t total_elements = 0;
  size_t invalid_elements = 0;

  double InvalidFraction() const {
    return total_elements == 0
               ? 0.0
               : static_cast<double>(invalid_elements) / total_elements;
  }
};

/// Boolean validator — the "rigid classifier" of the paper's introduction.
/// Caches one Glushkov automaton per element declaration, so repeated
/// validations against the same DTD are cheap.
class Validator {
 public:
  explicit Validator(const dtd::Dtd& dtd);

  Validator(const Validator&) = delete;
  Validator& operator=(const Validator&) = delete;

  /// Full-document validation: the root tag must equal the DTD root name
  /// and every element must locally satisfy its declaration.
  ValidationResult Validate(const xml::Document& doc) const;

  /// Validates an element subtree without the root-name requirement.
  ValidationResult ValidateSubtree(const xml::Element& root) const;

  /// Local check: does this one element's direct content satisfy its
  /// declaration? (Descendants are not inspected — the boolean analogue
  /// of the paper's *local* similarity.)
  bool ElementLocallyValid(const xml::Element& element) const;

  const dtd::Dtd& dtd() const { return *dtd_; }

 private:
  void ValidateRec(const xml::Element& element, const std::string& path,
                   ValidationResult& result) const;
  const dtd::Automaton* FindAutomaton(const std::string& name) const;
  void CheckAttributes(const xml::Element& element, const std::string& path,
                       ValidationResult& result) const;

  const dtd::Dtd* dtd_;
  std::map<std::string, dtd::Automaton> automata_;
};

/// Convenience: symbol sequence of an element's direct content — child
/// element tags in order, with non-blank text runs as `kPcdataSymbol`.
std::vector<std::string> ContentSymbols(const xml::Element& element);

/// Interned-id twin of `ContentSymbols`: the same sequence as interned
/// symbol ids (`dtd::PcdataSymbolId()` for text runs). The similarity hot
/// path uses this form to avoid string copies entirely.
std::vector<int32_t> ContentSymbolIds(const xml::Element& element);

}  // namespace dtdevolve::validate

#endif  // DTDEVOLVE_VALIDATE_VALIDATOR_H_
