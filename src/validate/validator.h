#ifndef DTDEVOLVE_VALIDATE_VALIDATOR_H_
#define DTDEVOLVE_VALIDATE_VALIDATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dtd/dtd.h"
#include "dtd/glushkov.h"
#include "xml/arena.h"
#include "xml/document.h"

namespace dtdevolve::validate {

/// One validity violation, located by a slash path from the root.
struct ValidationError {
  std::string path;
  std::string message;
};

/// Outcome of validating a document (or subtree) against a DTD.
struct ValidationResult {
  bool valid = true;
  std::vector<ValidationError> errors;
  /// Elements visited / elements whose own content violated their
  /// declaration. `invalid_elements / total_elements` is the per-document
  /// ratio the evolution trigger condition aggregates.
  size_t total_elements = 0;
  size_t invalid_elements = 0;

  double InvalidFraction() const {
    return total_elements == 0
               ? 0.0
               : static_cast<double>(invalid_elements) / total_elements;
  }
};

/// Boolean validator — the "rigid classifier" of the paper's introduction.
/// Caches one Glushkov automaton per element declaration, so repeated
/// validations against the same DTD are cheap.
class Validator {
 public:
  explicit Validator(const dtd::Dtd& dtd);

  Validator(const Validator&) = delete;
  Validator& operator=(const Validator&) = delete;

  /// Full-document validation: the root tag must equal the DTD root name
  /// and every element must locally satisfy its declaration.
  ValidationResult Validate(const xml::Document& doc) const;

  /// Validates an element subtree without the root-name requirement.
  ValidationResult ValidateSubtree(const xml::Element& root) const;

  /// Local check: does this one element's direct content satisfy its
  /// declaration? (Descendants are not inspected — the boolean analogue
  /// of the paper's *local* similarity.)
  bool ElementLocallyValid(const xml::Element& element) const;

  /// Arena twin of the local check, used by the streaming parse path.
  /// Runs the id-side subset simulation (`Automaton::AcceptsIds`) over
  /// the arena's interned child tags, falling back to the string-side
  /// test when any child tag failed bounded interning (an unresolved
  /// `util::kNoSymbol` id must not be mistaken for "label absent" —
  /// the declared label always carries a real id). Decision-equivalent
  /// to the DOM overload on structurally equal trees.
  bool ElementLocallyValid(const xml::ArenaElement& element) const;

  /// Pre-resolved twins: the caller already holds the element's content
  /// automaton (from `AutomatonFor`), so the per-element name lookup is
  /// skipped. Same decision as the name-resolving overloads.
  bool ElementLocallyValid(const xml::Element& element,
                           const dtd::Automaton& automaton) const;
  bool ElementLocallyValid(const xml::ArenaElement& element,
                           const dtd::Automaton& automaton) const;

  /// Content automaton of a declared element, or null when the element
  /// has no declaration (or no content model). Stable for the
  /// validator's lifetime — callers may cache the pointer.
  const dtd::Automaton* AutomatonFor(std::string_view name) const {
    return FindAutomaton(name);
  }

  const dtd::Dtd& dtd() const { return *dtd_; }

 private:
  void ValidateRec(const xml::Element& element, const std::string& path,
                   ValidationResult& result) const;
  const dtd::Automaton* FindAutomaton(std::string_view name) const;
  void CheckAttributes(const xml::Element& element, const std::string& path,
                       ValidationResult& result) const;

  const dtd::Dtd* dtd_;
  /// Transparent comparator so the arena path looks up by string_view
  /// without materializing a key.
  std::map<std::string, dtd::Automaton, std::less<>> automata_;
};

/// Convenience: symbol sequence of an element's direct content — child
/// element tags in order, with non-blank text runs as `kPcdataSymbol`.
std::vector<std::string> ContentSymbols(const xml::Element& element);

/// Interned-id twin of `ContentSymbols`: the same sequence as interned
/// symbol ids (`dtd::PcdataSymbolId()` for text runs). The similarity hot
/// path uses this form to avoid string copies entirely.
std::vector<int32_t> ContentSymbolIds(const xml::Element& element);

/// Arena overloads. Arena trees store only non-blank text with
/// consecutive runs pre-merged at parse time, so every text child emits
/// exactly one `kPcdataSymbol` — the same collapsed sequence the DOM
/// overloads produce on the equivalent tree.
std::vector<std::string> ContentSymbols(const xml::ArenaElement& element);
std::vector<int32_t> ContentSymbolIds(const xml::ArenaElement& element);

}  // namespace dtdevolve::validate

#endif  // DTDEVOLVE_VALIDATE_VALIDATOR_H_
