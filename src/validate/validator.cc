#include "validate/validator.h"

#include "util/string_util.h"
#include "util/symbol_table.h"

namespace dtdevolve::validate {

std::vector<std::string> ContentSymbols(const xml::Element& element) {
  std::vector<std::string> symbols;
  bool last_was_text = false;
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      symbols.push_back(child->AsElement().tag());
      last_was_text = false;
    } else {
      const auto& text = static_cast<const xml::Text&>(*child);
      if (IsBlank(text.value())) continue;
      if (!last_was_text) {
        symbols.emplace_back(dtd::kPcdataSymbol);
      }
      last_was_text = true;
    }
  }
  return symbols;
}

std::vector<int32_t> ContentSymbolIds(const xml::Element& element) {
  std::vector<int32_t> ids;
  const int32_t pcdata = dtd::PcdataSymbolId();
  bool last_was_text = false;
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      ids.push_back(child->AsElement().tag_id());
      last_was_text = false;
    } else {
      const auto& text = static_cast<const xml::Text&>(*child);
      if (IsBlank(text.value())) continue;
      if (!last_was_text) ids.push_back(pcdata);
      last_was_text = true;
    }
  }
  return ids;
}

std::vector<std::string> ContentSymbols(const xml::ArenaElement& element) {
  std::vector<std::string> symbols;
  symbols.reserve(element.child_count);
  for (const xml::ArenaChild& child : element.child_nodes()) {
    if (child.is_element()) {
      symbols.emplace_back(child.element->tag);
    } else {
      symbols.emplace_back(dtd::kPcdataSymbol);
    }
  }
  return symbols;
}

std::vector<int32_t> ContentSymbolIds(const xml::ArenaElement& element) {
  std::vector<int32_t> ids;
  ids.reserve(element.child_count);
  const int32_t pcdata = dtd::PcdataSymbolId();
  for (const xml::ArenaChild& child : element.child_nodes()) {
    ids.push_back(child.is_element() ? child.element->tag_id : pcdata);
  }
  return ids;
}

Validator::Validator(const dtd::Dtd& dtd) : dtd_(&dtd) {
  for (const std::string& name : dtd.ElementNames()) {
    const dtd::ElementDecl* decl = dtd.FindElement(name);
    if (decl->content) {
      automata_.emplace(name, dtd::Automaton::Build(*decl->content));
    }
  }
}

const dtd::Automaton* Validator::FindAutomaton(std::string_view name) const {
  auto it = automata_.find(name);
  return it == automata_.end() ? nullptr : &it->second;
}

namespace {

/// Reused per-call scratch for the id-side content sequence: local
/// validity is probed once per element of every recorded document, so
/// the hot path must not allocate.
thread_local std::vector<int32_t> content_ids_scratch;

}  // namespace

bool Validator::ElementLocallyValid(const xml::Element& element) const {
  const dtd::Automaton* automaton = FindAutomaton(element.tag());
  if (automaton == nullptr) return false;
  return ElementLocallyValid(element, *automaton);
}

bool Validator::ElementLocallyValid(const xml::Element& element,
                                    const dtd::Automaton& automaton) const {
  std::vector<int32_t>& ids = content_ids_scratch;
  ids.clear();
  const int32_t pcdata = dtd::PcdataSymbolId();
  bool last_was_text = false;
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      const int32_t id = child->AsElement().tag_id();
      if (id == util::SymbolTable::kNoSymbol) {
        // A child tag overflowed the bounded interning table: the
        // id-side simulation cannot see it, but the declared label
        // still has a real id, so only the string-side test decides
        // correctly.
        return automaton.Accepts(ContentSymbols(element));
      }
      ids.push_back(id);
      last_was_text = false;
    } else {
      const auto& text = static_cast<const xml::Text&>(*child);
      if (IsBlank(text.value())) continue;
      if (!last_was_text) ids.push_back(pcdata);
      last_was_text = true;
    }
  }
  return automaton.AcceptsIds(ids.data(), ids.size());
}

bool Validator::ElementLocallyValid(const xml::ArenaElement& element) const {
  const dtd::Automaton* automaton = FindAutomaton(element.tag);
  if (automaton == nullptr) return false;
  return ElementLocallyValid(element, *automaton);
}

bool Validator::ElementLocallyValid(const xml::ArenaElement& element,
                                    const dtd::Automaton& automaton) const {
  std::vector<int32_t>& ids = content_ids_scratch;
  ids.clear();
  const int32_t pcdata = dtd::PcdataSymbolId();
  for (const xml::ArenaChild& child : element.child_nodes()) {
    if (!child.is_element()) {
      ids.push_back(pcdata);
      continue;
    }
    if (child.element->tag_id == util::SymbolTable::kNoSymbol) {
      // Same overflow fallback as the DOM side.
      return automaton.Accepts(ContentSymbols(element));
    }
    ids.push_back(child.element->tag_id);
  }
  return automaton.AcceptsIds(ids.data(), ids.size());
}

void Validator::CheckAttributes(const xml::Element& element,
                                const std::string& path,
                                ValidationResult& result) const {
  const dtd::ElementDecl* decl = dtd_->FindElement(element.tag());
  if (decl == nullptr) return;
  for (const dtd::AttributeDecl& attr : decl->attributes) {
    const std::string* value = element.FindAttribute(attr.name);
    if (attr.default_kind == dtd::AttributeDecl::DefaultKind::kRequired &&
        value == nullptr) {
      result.valid = false;
      result.errors.push_back(
          {path, "missing required attribute '" + attr.name + "'"});
    }
    if (attr.default_kind == dtd::AttributeDecl::DefaultKind::kFixed &&
        value != nullptr && *value != attr.default_value) {
      result.valid = false;
      result.errors.push_back(
          {path, "attribute '" + attr.name + "' must be fixed to \"" +
                     attr.default_value + "\""});
    }
    if (!attr.type.empty() && attr.type.front() == '(' && value != nullptr) {
      // Enumerated type `(a|b|c)`.
      std::vector<std::string> allowed =
          Split(attr.type.substr(1, attr.type.size() - 2), '|');
      bool found = false;
      for (const std::string& candidate : allowed) {
        if (candidate == *value) {
          found = true;
          break;
        }
      }
      if (!found) {
        result.valid = false;
        result.errors.push_back(
            {path, "attribute '" + attr.name + "' value \"" + *value +
                       "\" not in enumeration " + attr.type});
      }
    }
  }
}

void Validator::ValidateRec(const xml::Element& element,
                            const std::string& path,
                            ValidationResult& result) const {
  ++result.total_elements;
  const dtd::Automaton* automaton = FindAutomaton(element.tag());
  if (automaton == nullptr) {
    result.valid = false;
    ++result.invalid_elements;
    result.errors.push_back({path, "element '" + element.tag() +
                                       "' is not declared in the DTD"});
  } else if (!automaton->Accepts(ContentSymbols(element))) {
    result.valid = false;
    ++result.invalid_elements;
    const dtd::ElementDecl* decl = dtd_->FindElement(element.tag());
    result.errors.push_back(
        {path, "content does not match declaration " +
                   (decl->content ? decl->content->ToString() : "ANY")});
  }
  CheckAttributes(element, path, result);
  size_t child_index = 0;
  for (const xml::Element& child : element.child_elements()) {
    ValidateRec(child,
                path + "/" + child.tag() + "[" +
                    std::to_string(child_index++) + "]",
                result);
  }
}

ValidationResult Validator::ValidateSubtree(const xml::Element& root) const {
  ValidationResult result;
  ValidateRec(root, root.tag(), result);
  return result;
}

ValidationResult Validator::Validate(const xml::Document& doc) const {
  ValidationResult result;
  if (!doc.has_root()) {
    result.valid = false;
    result.errors.push_back({"", "document has no root element"});
    return result;
  }
  if (doc.root().tag() != dtd_->root_name()) {
    result.valid = false;
    result.errors.push_back(
        {doc.root().tag(), "root element '" + doc.root().tag() +
                               "' does not match DTD root '" +
                               dtd_->root_name() + "'"});
  }
  ValidateRec(doc.root(), doc.root().tag(), result);
  return result;
}

}  // namespace dtdevolve::validate
