#ifndef DTDEVOLVE_STORE_CHECKPOINT_H_
#define DTDEVOLVE_STORE_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/source.h"
#include "store/wal.h"
#include "util/status.h"

namespace dtdevolve::store {

/// Checkpoints bound WAL replay: a checkpoint at LSN `L` captures the
/// full pipeline state after applying every record with `lsn <= L`, so
/// recovery loads the checkpoint and replays only the tail. The on-disk
/// protocol is atomic-by-meta:
///
///   1. `ckpt-<L>-<i>.dtdstate` — one atomic snapshot per extended DTD;
///   2. `ckpt-<L>.source`       — counters + repository documents;
///   3. `checkpoint.meta`       — written (atomically) LAST; it names the
///      LSN and the DTDs, so a crash anywhere before this rename leaves
///      the previous complete checkpoint in charge;
///   4. stale `ckpt-*` files from older (or aborted) checkpoints are
///      unlinked, and the WAL is truncated through `L`.
///
/// "Full pipeline state" is deliberate: counters feed event indices and
/// the min-documents gate, and repository ids feed the ascending-id
/// re-classification order, so a checkpoint of the extended DTDs alone
/// would not be replay-equivalent.

/// One checkpoint's payload, independent of its on-disk layout.
struct CheckpointData {
  /// Every record with `lsn <= lsn` is folded into this state.
  uint64_t lsn = 0;
  /// name → SerializeExtendedDtd text, one per registered DTD.
  std::vector<std::pair<std::string, std::string>> dtds;
  /// SerializeSourceState text (counters + repository).
  std::string source_state;
};

/// Counters + repository of `source` in the line-oriented source-state
/// format (`dtdevolve-source 1` header; repository documents embedded as
/// length-prefixed XML).
std::string SerializeSourceState(const core::XmlSource& source);

/// Applies a `SerializeSourceState` text onto `source` (which must still
/// hold its freshly registered seed DTDs).
Status RestoreSourceState(core::XmlSource& source, std::string_view data);

/// Captures `source` as checkpoint payload at `lsn`.
CheckpointData CaptureCheckpoint(const core::XmlSource& source, uint64_t lsn);

/// Runs steps 1–3 plus the stale-file cleanup in `dir` (the WAL
/// directory). The WAL truncation is the caller's — it owns the `Wal`.
Status WriteCheckpoint(const std::string& dir, const CheckpointData& data);

/// Loads the checkpoint `checkpoint.meta` points at. A missing meta is
/// not an error — an empty `CheckpointData` with `lsn == 0` comes back.
/// A meta that references missing or unparseable files is a hard error:
/// the WAL below that LSN is gone, so acked history would be lost.
StatusOr<CheckpointData> ReadCheckpoint(const std::string& dir);

/// Packs a checkpoint into one self-describing blob — the body of the
/// primary's `GET /replication/checkpoint` response, so a follower
/// bootstraps from a single transfer instead of the primary's file
/// layout.
std::string EncodeCheckpointBlob(const CheckpointData& data);
StatusOr<CheckpointData> DecodeCheckpointBlob(std::string_view blob);

/// Restores a decoded checkpoint onto `source` (which must hold exactly
/// its freshly registered seed DTDs): extended-DTD snapshots first —
/// names the seed set does not know are registered as induced DTDs, as
/// boot recovery does — then counters + repository. The follower
/// bootstrap and `RecoverSource` share this path, which is what makes
/// "follower state" and "replay of the primary" the same function.
Status ApplyCheckpointToSource(const CheckpointData& data,
                               core::XmlSource& source);

/// Applies one WAL record payload — an ingested document's raw XML or an
/// induce-accept record — onto `source`: the single replay dispatch
/// shared by boot recovery and the replication follower.
Status ApplyWalRecordToSource(uint64_t lsn, std::string_view payload,
                              core::XmlSource& source);

/// What recovery found; for logs and tests.
struct RecoveryReport {
  uint64_t checkpoint_lsn = 0;   // 0 ⇒ no checkpoint existed
  size_t checkpoint_dtds = 0;
  size_t replayed_records = 0;   // WAL records applied on top
  uint64_t last_applied_lsn = 0;
  bool wal_tail_truncated = false;
  std::string warning;           // non-empty when a torn tail was cut
};

/// Boot-time recovery: loads the checkpoint (if any) into `source`,
/// opens the WAL, replays every record with `lsn > checkpoint_lsn`
/// through `source.ProcessText`, and returns the opened WAL positioned
/// for new appends. Records at or below the checkpoint LSN are skipped,
/// so recovering twice (or crashing mid-recovery before the next
/// checkpoint) is idempotent. `source` must already hold the seed DTDs
/// the checkpoint's snapshots restore over.
StatusOr<std::unique_ptr<Wal>> RecoverSource(core::XmlSource& source,
                                             const WalOptions& options,
                                             RecoveryReport* report);

}  // namespace dtdevolve::store

#endif  // DTDEVOLVE_STORE_CHECKPOINT_H_
