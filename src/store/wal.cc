#include "store/wal.h"

#include <dirent.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/crc32.h"

namespace dtdevolve::store {

namespace {

constexpr size_t kRecordHeaderBytes = 16;  // u32 len, u32 crc, u64 lsn
/// Framing sanity bound: a length beyond this cannot be a real record
/// (ingest bodies are capped far below) and is treated as corruption.
constexpr uint32_t kMaxPayloadBytes = 64 * 1024 * 1024;

void PutU32(uint32_t value, std::string& out) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void PutU64(uint64_t value, std::string& out) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

uint32_t GetU32(const char* data) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(data[i]);
  }
  return value;
}

uint64_t GetU64(const char* data) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(data[i]);
  }
  return value;
}

std::string EncodeRecord(uint64_t lsn, std::string_view payload) {
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutU32(static_cast<uint32_t>(payload.size()), record);
  std::string checked;
  checked.reserve(8 + payload.size());
  PutU64(lsn, checked);
  checked.append(payload);
  PutU32(util::Crc32(checked.data(), checked.size()), record);
  record.append(checked);
  return record;
}

}  // namespace

bool ParseFsyncPolicy(std::string_view text, FsyncPolicy* out) {
  if (text == "always") {
    *out = FsyncPolicy::kAlways;
  } else if (text == "interval") {
    *out = FsyncPolicy::kInterval;
  } else if (text == "none") {
    *out = FsyncPolicy::kNone;
  } else {
    return false;
  }
  return true;
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kInterval: return "interval";
    case FsyncPolicy::kNone: return "none";
  }
  return "?";
}

std::string Wal::SegmentPath(uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%010llu.log",
                static_cast<unsigned long long>(seq));
  return options_.dir + "/" + name;
}

StatusOr<std::unique_ptr<Wal>> Wal::Open(WalOptions options,
                                         uint64_t min_next_lsn,
                                         WalReplay* replay) {
  DTDEVOLVE_RETURN_IF_ERROR(io::CreateDir(options.dir));
  std::unique_ptr<Wal> wal(new Wal(std::move(options)));

  // Collect wal-<seq>.log entries.
  std::vector<uint64_t> seqs;
  DIR* dir = ::opendir(wal->options_.dir.c_str());
  if (dir == nullptr) {
    return Status::Internal("cannot list " + wal->options_.dir + ": " +
                            std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(dir)) {
    unsigned long long seq = 0;
    char tail = 0;
    if (std::sscanf(entry->d_name, "wal-%llu.lo%c", &seq, &tail) == 2 &&
        tail == 'g') {
      seqs.push_back(seq);
    }
  }
  ::closedir(dir);
  std::sort(seqs.begin(), seqs.end());

  uint64_t max_lsn = 0;
  // Nonzero after a torn tail was cut from a *non-final* segment: the
  // next record anywhere in the log must carry exactly this LSN. A
  // failed append never consumes an LSN, so contiguity proves the torn
  // bytes were never acked; a gap means acked history is missing.
  uint64_t require_lsn = 0;
  for (size_t s = 0; s < seqs.size(); ++s) {
    const bool final_segment = s + 1 == seqs.size();
    Segment segment;
    segment.seq = seqs[s];
    segment.path = wal->SegmentPath(seqs[s]);
    StatusOr<std::string> bytes = io::ReadFile(segment.path);
    if (!bytes.ok()) return bytes.status();
    const std::string& data = *bytes;

    size_t offset = 0;
    while (offset < data.size()) {
      const size_t remaining = data.size() - offset;
      bool torn = false;        // cut the tail here
      bool corrupt = false;     // mid-log damage: refuse to continue
      std::string why;
      uint32_t len = 0;
      if (remaining < kRecordHeaderBytes) {
        torn = true;
        why = "truncated record header";
      } else {
        len = GetU32(data.data() + offset);
        if (len > kMaxPayloadBytes) {
          // The length itself is garbage, so the rest of the file cannot
          // be framed; at the end of a segment this is a torn tail.
          torn = true;
          why = "implausible record length";
        } else if (remaining < kRecordHeaderBytes + len) {
          torn = true;
          why = "truncated record payload";
        } else {
          const uint32_t stored_crc = GetU32(data.data() + offset + 4);
          const uint32_t actual_crc =
              util::Crc32(data.data() + offset + 8, 8 + len);
          if (stored_crc != actual_crc) {
            // A *complete* frame with a bad checksum can only be a torn
            // fsync of the in-flight final append; anywhere else it is
            // damage to a record that was fully written — acked history.
            if (final_segment &&
                offset + kRecordHeaderBytes + len == data.size()) {
              torn = true;
              why = "checksum mismatch on final record";
            } else {
              corrupt = true;
              why = "checksum mismatch on a complete record";
            }
          }
        }
      }
      if (!torn && !corrupt) {
        const uint64_t lsn = GetU64(data.data() + offset + 8);
        if (lsn <= max_lsn) {
          corrupt = true;
          why = "LSN went backwards";
        } else if (require_lsn != 0 && lsn != require_lsn) {
          corrupt = true;
          why = "LSN gap after a torn segment tail";
        } else {
          require_lsn = 0;
          max_lsn = lsn;
          if (segment.first_lsn == 0) segment.first_lsn = lsn;
          segment.last_lsn = lsn;
          if (replay != nullptr) {
            replay->records.push_back(
                {lsn, data.substr(offset + kRecordHeaderBytes, len)});
          }
          offset += kRecordHeaderBytes + len;
          continue;
        }
      }
      if (corrupt) {
        return Status::ParseError(
            "corrupt WAL record in " + segment.path + " at offset " +
            std::to_string(offset) + " (" + why +
            "): refusing to drop acked history");
      }
      // Torn tail: that append never returned OK, so cutting it loses
      // nothing acked. Truncate physically so later appends land on a
      // clean frame boundary. In a non-final segment (a broken append
      // whose WAL self-healed by rotating) the claim still needs proof —
      // the next record must continue the LSN sequence without a gap.
      StatusOr<io::File> file = io::File::OpenExisting(segment.path);
      if (!file.ok()) return file.status();
      DTDEVOLVE_RETURN_IF_ERROR(file->Truncate(offset));
      DTDEVOLVE_RETURN_IF_ERROR(file->Fsync());
      DTDEVOLVE_RETURN_IF_ERROR(file->Close());
      require_lsn = max_lsn + 1;
      if (replay != nullptr) {
        replay->tail_truncated = true;
        if (!replay->warning.empty()) replay->warning += "; ";
        replay->warning += "truncated torn WAL tail in " + segment.path +
                           " at offset " + std::to_string(offset) + " (" +
                           why + ")";
      }
      break;
    }
    segment.size = std::min<uint64_t>(offset, data.size());
    wal->segments_.push_back(std::move(segment));
  }

  wal->next_lsn_ = std::max(max_lsn + 1, std::max<uint64_t>(min_next_lsn, 1));
  DTDEVOLVE_RETURN_IF_ERROR(wal->OpenActive(/*truncate_to_size=*/false));
  return wal;
}

Status Wal::OpenActive(bool /*truncate_to_size*/) {
  if (segments_.empty()) {
    Segment segment;
    segment.seq = 1;
    segment.path = SegmentPath(1);
    StatusOr<io::File> file = io::File::OpenForAppend(segment.path);
    if (!file.ok()) return file.status();
    active_ = std::move(*file);
    segments_.push_back(std::move(segment));
    return io::FsyncDir(options_.dir);
  }
  StatusOr<io::File> file = io::File::OpenForAppend(segments_.back().path);
  if (!file.ok()) return file.status();
  active_ = std::move(*file);
  return Status::Ok();
}

Status Wal::RotateLocked() {
  if (options_.fsync_policy != FsyncPolicy::kNone && active_.is_open()) {
    // Best effort: the segment being retired should be on disk before
    // the directory gains its successor.
    (void)active_.Fsync();
  }
  (void)active_.Close();
  Segment segment;
  segment.seq = segments_.empty() ? 1 : segments_.back().seq + 1;
  segment.path = SegmentPath(segment.seq);
  StatusOr<io::File> file = io::File::OpenForAppend(segment.path);
  if (!file.ok()) return file.status();
  active_ = std::move(*file);
  segments_.push_back(std::move(segment));
  DTDEVOLVE_RETURN_IF_ERROR(io::FsyncDir(options_.dir));
  if (metrics_.rotations != nullptr) metrics_.rotations->Increment();
  broken_ = false;
  return Status::Ok();
}

Status Wal::MaybeFsyncLocked() {
  switch (options_.fsync_policy) {
    case FsyncPolicy::kNone:
      return Status::Ok();
    case FsyncPolicy::kAlways:
      break;
    case FsyncPolicy::kInterval: {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_fsync_ < options_.fsync_interval) return Status::Ok();
      break;
    }
  }
  DTDEVOLVE_RETURN_IF_ERROR(active_.Fsync());
  last_fsync_ = std::chrono::steady_clock::now();
  if (metrics_.fsyncs != nullptr) metrics_.fsyncs->Increment();
  return Status::Ok();
}

StatusOr<uint64_t> Wal::Append(std::string_view payload) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (broken_) {
    // Self-heal. First retry the cleanup that broke the WAL — cutting
    // the torn bytes restores the active segment in place. Failing
    // that, rotate: the fresh segment leaves the unframeable bytes
    // behind in the abandoned one, which replay treats as a torn tail
    // (and verifies against the LSN sequence).
    if (active_.is_open() && active_.Truncate(segments_.back().size).ok()) {
      broken_ = false;
    } else {
      Status rotated = RotateLocked();
      if (!rotated.ok()) {
        if (metrics_.append_errors != nullptr) {
          metrics_.append_errors->Increment();
        }
        return Status::Internal("wal broken and rotation failed: " +
                                rotated.message());
      }
    }
  }
  if (segments_.back().size >= options_.segment_bytes) {
    Status rotated = RotateLocked();
    if (!rotated.ok()) {
      if (metrics_.append_errors != nullptr) {
        metrics_.append_errors->Increment();
      }
      return rotated;
    }
  }

  Segment& segment = segments_.back();
  const uint64_t lsn = next_lsn_;
  const std::string record = EncodeRecord(lsn, payload);
  Status status = active_.Write(record);
  if (status.ok()) status = MaybeFsyncLocked();
  if (!status.ok()) {
    if (metrics_.append_errors != nullptr) metrics_.append_errors->Increment();
    // Cut any torn bytes back off so the next append stays framed. When
    // even that fails (crash simulation, dead disk) the WAL is broken
    // until a rotation succeeds — the torn tail stays for recovery.
    Status truncated = active_.Truncate(segment.size);
    if (!truncated.ok()) broken_ = true;
    return status;
  }
  segment.size += record.size();
  if (segment.first_lsn == 0) segment.first_lsn = lsn;
  segment.last_lsn = lsn;
  next_lsn_ = lsn + 1;
  if (metrics_.appends != nullptr) metrics_.appends->Increment();
  if (metrics_.append_bytes != nullptr) {
    metrics_.append_bytes->Increment(record.size());
  }
  return lsn;
}

Status Wal::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  DTDEVOLVE_RETURN_IF_ERROR(active_.Fsync());
  last_fsync_ = std::chrono::steady_clock::now();
  if (metrics_.fsyncs != nullptr) metrics_.fsyncs->Increment();
  return Status::Ok();
}

Status Wal::TruncateThrough(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  // The active segment rotates away first when fully covered, so the
  // unlink loop below can treat every covered segment uniformly.
  if (!segments_.empty() && segments_.back().last_lsn != 0 &&
      segments_.back().last_lsn <= lsn) {
    DTDEVOLVE_RETURN_IF_ERROR(RotateLocked());
  }
  bool removed = false;
  for (size_t i = 0; i + 1 < segments_.size();) {
    if (segments_[i].last_lsn != 0 && segments_[i].last_lsn <= lsn) {
      Status status = io::Unlink(segments_[i].path);
      if (!status.ok() && status.code() != Status::Code::kNotFound) {
        return status;
      }
      if (metrics_.truncated_segments != nullptr) {
        metrics_.truncated_segments->Increment();
      }
      segments_.erase(segments_.begin() + static_cast<long>(i));
      removed = true;
    } else {
      ++i;
    }
  }
  if (removed) return io::FsyncDir(options_.dir);
  return Status::Ok();
}

uint64_t Wal::next_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_lsn_;
}

size_t Wal::SegmentCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return segments_.size();
}

std::string EncodeWalRecord(uint64_t lsn, std::string_view payload) {
  return EncodeRecord(lsn, payload);
}

StatusOr<WalExport> ExportWalRecords(const std::string& dir,
                                     uint64_t from_lsn, uint64_t max_bytes) {
  std::vector<uint64_t> seqs;
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) {
    return Status::Internal("cannot list " + dir + ": " +
                            std::strerror(errno));
  }
  while (struct dirent* entry = ::readdir(handle)) {
    unsigned long long seq = 0;
    char tail = 0;
    if (std::sscanf(entry->d_name, "wal-%llu.lo%c", &seq, &tail) == 2 &&
        tail == 'g') {
      seqs.push_back(seq);
    }
  }
  ::closedir(handle);
  std::sort(seqs.begin(), seqs.end());

  WalExport page;
  page.next_lsn = from_lsn;
  uint64_t last_lsn = 0;
  bool full = false;
  for (size_t s = 0; s < seqs.size() && !full; ++s) {
    const bool final_segment = s + 1 == seqs.size();
    char name[32];
    std::snprintf(name, sizeof(name), "wal-%010llu.log",
                  static_cast<unsigned long long>(seqs[s]));
    StatusOr<std::string> bytes = io::ReadFile(dir + "/" + name);
    if (!bytes.ok()) return bytes.status();
    const std::string& data = *bytes;

    size_t offset = 0;
    while (offset < data.size()) {
      const size_t remaining = data.size() - offset;
      uint32_t len = 0;
      bool torn = remaining < kRecordHeaderBytes;
      if (!torn) {
        len = GetU32(data.data() + offset);
        torn = len > kMaxPayloadBytes ||
               remaining < kRecordHeaderBytes + len ||
               GetU32(data.data() + offset + 4) !=
                   util::Crc32(data.data() + offset + 8, 8 + len);
      }
      if (torn) {
        // The in-flight append of a live primary: the frame completes
        // (or is cut at recovery) later; the page simply ends here. Below
        // the final segment the same bytes mean real damage.
        if (final_segment) break;
        return Status::ParseError("corrupt WAL record in " + dir + "/" +
                                  name + " at offset " +
                                  std::to_string(offset));
      }
      const uint64_t lsn = GetU64(data.data() + offset + 8);
      if (lsn <= last_lsn) {
        return Status::ParseError("WAL LSN went backwards in " + dir + "/" +
                                  name);
      }
      last_lsn = lsn;
      if (page.oldest_lsn == 0) page.oldest_lsn = lsn;
      if (lsn >= from_lsn) {
        // At least one frame always ships, so a single record larger
        // than `max_bytes` cannot wedge the stream.
        if (!page.bytes.empty() &&
            page.bytes.size() + kRecordHeaderBytes + len > max_bytes) {
          full = true;
          break;
        }
        page.bytes.append(data, offset, kRecordHeaderBytes + len);
        page.next_lsn = lsn + 1;
      }
      offset += kRecordHeaderBytes + len;
    }
  }
  return page;
}

std::vector<WalRecord> DecodeWalStream(std::string_view bytes,
                                       size_t* consumed) {
  std::vector<WalRecord> records;
  size_t offset = 0;
  while (offset < bytes.size()) {
    const size_t remaining = bytes.size() - offset;
    if (remaining < kRecordHeaderBytes) break;
    const uint32_t len = GetU32(bytes.data() + offset);
    if (len > kMaxPayloadBytes || remaining < kRecordHeaderBytes + len) break;
    if (GetU32(bytes.data() + offset + 4) !=
        util::Crc32(bytes.data() + offset + 8, 8 + len)) {
      break;
    }
    WalRecord record;
    record.lsn = GetU64(bytes.data() + offset + 8);
    record.payload =
        std::string(bytes.substr(offset + kRecordHeaderBytes, len));
    records.push_back(std::move(record));
    offset += kRecordHeaderBytes + len;
  }
  if (consumed != nullptr) *consumed = offset;
  return records;
}

}  // namespace dtdevolve::store
