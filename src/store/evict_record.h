#ifndef DTDEVOLVE_STORE_EVICT_RECORD_H_
#define DTDEVOLVE_STORE_EVICT_RECORD_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace dtdevolve::store {

/// The repository-eviction WAL record: documents dropped from the
/// unclassified repository to enforce a per-shard quota. The evicted ids
/// are explicit — not "the N oldest at replay time" — so replay removes
/// exactly what the live shard removed even when the eviction raced
/// concurrently enqueued documents, and re-applying the record after a
/// checkpoint that already folded it in is a no-op (the ids are simply
/// gone). Like the induce-accept record, the header line doubles as the
/// record-type tag against the raw-XML document payloads.
///
/// Layout (line-oriented):
///   dtdevolve-evict 1
///   count <N>
///   <id>            (N lines, ascending repository ids)
inline constexpr std::string_view kEvictHeader = "dtdevolve-evict 1";

/// True when `payload` is an eviction record (header match only; a
/// corrupt body still decodes to an error).
bool IsEvictRecord(std::string_view payload);

std::string EncodeEvictRecord(const std::vector<int>& ids);

StatusOr<std::vector<int>> DecodeEvictRecord(std::string_view payload);

}  // namespace dtdevolve::store

#endif  // DTDEVOLVE_STORE_EVICT_RECORD_H_
