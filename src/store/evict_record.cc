#include "store/evict_record.h"

#include <limits>

namespace dtdevolve::store {

namespace {

bool NextLine(std::string_view data, size_t* offset, std::string_view* line) {
  if (*offset >= data.size()) return false;
  const size_t end = data.find('\n', *offset);
  if (end == std::string_view::npos) {
    *line = data.substr(*offset);
    *offset = data.size();
  } else {
    *line = data.substr(*offset, end - *offset);
    *offset = end + 1;
  }
  return true;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool TakeKeyword(std::string_view line, std::string_view keyword,
                 std::string_view* rest) {
  if (line.substr(0, keyword.size()) != keyword) return false;
  if (line.size() <= keyword.size() || line[keyword.size()] != ' ') {
    return false;
  }
  *rest = line.substr(keyword.size() + 1);
  return true;
}

}  // namespace

bool IsEvictRecord(std::string_view payload) {
  return payload.substr(0, kEvictHeader.size()) == kEvictHeader;
}

std::string EncodeEvictRecord(const std::vector<int>& ids) {
  std::string out(kEvictHeader);
  out.push_back('\n');
  out += "count " + std::to_string(ids.size()) + "\n";
  for (int id : ids) {
    out += std::to_string(id);
    out.push_back('\n');
  }
  return out;
}

StatusOr<std::vector<int>> DecodeEvictRecord(std::string_view payload) {
  size_t offset = 0;
  std::string_view line;
  std::string_view rest;
  if (!NextLine(payload, &offset, &line) || line != kEvictHeader) {
    return Status::ParseError("evict record: bad header");
  }
  uint64_t count = 0;
  if (!NextLine(payload, &offset, &line) ||
      !TakeKeyword(line, "count", &rest) || !ParseU64(rest, &count)) {
    return Status::ParseError("evict record: bad count line");
  }
  std::vector<int> ids;
  ids.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    if (!NextLine(payload, &offset, &line) || !ParseU64(line, &id) ||
        id > static_cast<uint64_t>(std::numeric_limits<int>::max())) {
      return Status::ParseError("evict record: bad id line");
    }
    ids.push_back(static_cast<int>(id));
  }
  return ids;
}

}  // namespace dtdevolve::store
