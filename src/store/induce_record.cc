#include "store/induce_record.h"

#include <utility>

#include "evolve/persist.h"

namespace dtdevolve::store {

namespace {

bool NextLine(std::string_view data, size_t* offset, std::string_view* line) {
  if (*offset >= data.size()) return false;
  const size_t end = data.find('\n', *offset);
  if (end == std::string_view::npos) {
    *line = data.substr(*offset);
    *offset = data.size();
  } else {
    *line = data.substr(*offset, end - *offset);
    *offset = end + 1;
  }
  return true;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

bool TakeKeyword(std::string_view line, std::string_view keyword,
                 std::string_view* rest) {
  if (line.substr(0, keyword.size()) != keyword) return false;
  if (line.size() <= keyword.size() || line[keyword.size()] != ' ') {
    return false;
  }
  *rest = line.substr(keyword.size() + 1);
  return true;
}

}  // namespace

bool IsInduceAcceptRecord(std::string_view payload) {
  return payload.substr(0, kInduceAcceptHeader.size()) == kInduceAcceptHeader;
}

std::string EncodeInduceAcceptRecord(const std::string& name,
                                     const evolve::ExtendedDtd& ext) {
  std::string serialized = evolve::SerializeExtendedDtd(ext);
  std::string out(kInduceAcceptHeader);
  out.push_back('\n');
  out += "name " + name + "\n";
  out += "dtd " + std::to_string(serialized.size()) + "\n";
  out += serialized;
  return out;
}

StatusOr<InduceAcceptRecord> DecodeInduceAcceptRecord(
    std::string_view payload) {
  size_t offset = 0;
  std::string_view line;
  std::string_view rest;
  if (!NextLine(payload, &offset, &line) || line != kInduceAcceptHeader) {
    return Status::ParseError("induce-accept record: bad header");
  }
  if (!NextLine(payload, &offset, &line) ||
      !TakeKeyword(line, "name", &rest) || rest.empty()) {
    return Status::ParseError("induce-accept record: bad name line");
  }
  InduceAcceptRecord record;
  record.name = std::string(rest);
  uint64_t nbytes = 0;
  if (!NextLine(payload, &offset, &line) || !TakeKeyword(line, "dtd", &rest) ||
      !ParseU64(rest, &nbytes)) {
    return Status::ParseError("induce-accept record: bad dtd line");
  }
  if (offset + nbytes > payload.size()) {
    return Status::ParseError("induce-accept record: dtd payload truncated");
  }
  StatusOr<evolve::ExtendedDtd> ext =
      evolve::DeserializeExtendedDtd(payload.substr(offset, nbytes));
  if (!ext.ok()) {
    return Status::ParseError("induce-accept record: " +
                              ext.status().message());
  }
  record.ext = std::move(*ext);
  return record;
}

}  // namespace dtdevolve::store
