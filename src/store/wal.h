#ifndef DTDEVOLVE_STORE_WAL_H_
#define DTDEVOLVE_STORE_WAL_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "io/file.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace dtdevolve::store {

/// Durability discipline of one append. `kAlways` fsyncs before the
/// append returns — an acked document survives power loss. `kInterval`
/// fsyncs when the last fsync is older than `fsync_interval` (bounded
/// loss window, much cheaper). `kNone` never fsyncs — the OS decides.
enum class FsyncPolicy { kAlways, kInterval, kNone };

/// "always" / "interval" / "none"; false on anything else.
bool ParseFsyncPolicy(std::string_view text, FsyncPolicy* out);
const char* FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  std::string dir;
  FsyncPolicy fsync_policy = FsyncPolicy::kAlways;
  std::chrono::milliseconds fsync_interval{100};
  /// A segment past this size is closed and a new one started; the
  /// checkpoint truncation then drops whole segments.
  uint64_t segment_bytes = 8 * 1024 * 1024;
};

struct WalRecord {
  uint64_t lsn = 0;
  std::string payload;
};

/// What `Wal::Open` found on disk.
struct WalReplay {
  std::vector<WalRecord> records;
  /// A torn final record (crash mid-append) was cut off — the log was
  /// physically truncated back to its last intact record.
  bool tail_truncated = false;
  std::string warning;
};

/// Instrumentation hooks; all pointers optional.
struct WalMetrics {
  obs::Counter* appends = nullptr;
  obs::Counter* append_bytes = nullptr;
  obs::Counter* append_errors = nullptr;
  obs::Counter* fsyncs = nullptr;
  obs::Counter* rotations = nullptr;
  obs::Counter* truncated_segments = nullptr;
};

/// Append-only, length-prefixed, CRC32-checksummed write-ahead log over
/// numbered segment files (`wal-<seq>.log`). Each record is
///
///   [u32 payload length][u32 crc32(lsn || payload)][u64 lsn][payload]
///
/// little-endian, with strictly increasing LSNs across segments. The ack
/// contract of the ingest server rests on `Append`: a document whose
/// append returned OK under `FsyncPolicy::kAlways` is recoverable after
/// any crash. `Open` replays what a previous process left behind:
///
///   * a torn final record (short bytes, or a checksum mismatch at the
///     very tail) is truncated away with a warning — that append never
///     returned OK, so nothing acked is lost and boot proceeds;
///   * an *incomplete* frame ending a non-final segment (a broken append
///     the WAL healed by rotating away from) is truncated too, but only
///     if the next record continues the LSN sequence without a gap — a
///     failed append never consumes an LSN, so contiguity proves the
///     torn bytes were never acked;
///   * anything else — a complete record with a bad checksum below more
///     data, an LSN gap — is a hard error: the log lies about history
///     and silently dropping records would lose acked documents.
///
/// A failed append truncates the segment back to its pre-append size so
/// a torn tail never sits below later records (if even the truncate
/// fails, the WAL turns `broken` and every later append fails until a
/// rotation succeeds). Thread-safe: appends from concurrent connection
/// threads serialize on an internal mutex, so LSN order is append order.
class Wal {
 public:
  /// Opens (creating `options.dir` when missing), scans existing
  /// segments into `*replay`, and positions for appending. LSNs continue
  /// above both what the log contains and `min_next_lsn` (the last
  /// checkpoint's LSN, so truncated history is never re-issued).
  static StatusOr<std::unique_ptr<Wal>> Open(WalOptions options,
                                             uint64_t min_next_lsn,
                                             WalReplay* replay);

  /// Appends one record, honoring the fsync policy; returns its LSN.
  StatusOr<uint64_t> Append(std::string_view payload);

  /// Explicit fsync of the active segment (checkpoints, shutdown).
  Status Sync();

  /// Drops every segment whose records all have `lsn <= lsn` — called
  /// after a checkpoint at `lsn` became durable. The active segment is
  /// rotated first when it is fully covered.
  Status TruncateThrough(uint64_t lsn);

  uint64_t next_lsn() const;
  const std::string& dir() const { return options_.dir; }
  /// Number of live segment files (tests; rotation behavior).
  size_t SegmentCount() const;

  void set_metrics(const WalMetrics& metrics) { metrics_ = metrics; }

 private:
  struct Segment {
    uint64_t seq = 0;
    std::string path;
    uint64_t first_lsn = 0;  // 0 when empty
    uint64_t last_lsn = 0;
    uint64_t size = 0;
  };

  explicit Wal(WalOptions options) : options_(std::move(options)) {}

  std::string SegmentPath(uint64_t seq) const;
  Status OpenActive(bool truncate_to_size);
  Status RotateLocked();
  Status MaybeFsyncLocked();

  WalOptions options_;
  WalMetrics metrics_;

  mutable std::mutex mutex_;
  std::vector<Segment> segments_;  // ascending seq; last one is active
  io::File active_;
  uint64_t next_lsn_ = 1;
  bool broken_ = false;
  std::chrono::steady_clock::time_point last_fsync_ =
      std::chrono::steady_clock::now();
};

/// Encodes one record exactly as `Append` lays it on disk (tests and the
/// replication oracle craft streams and torn tails with it).
std::string EncodeWalRecord(uint64_t lsn, std::string_view payload);

/// One page of a replication stream, served by the primary's
/// `GET /replication/wal?from_lsn=N` endpoint.
struct WalExport {
  /// Concatenated raw frames (the on-disk format, CRC framing included —
  /// the follower gets integrity checking for free), always cut at a
  /// frame boundary.
  std::string bytes;
  /// LSN the follower should request next after applying `bytes`.
  uint64_t next_lsn = 0;
  /// Smallest LSN still on disk (0 when the log holds no records) — the
  /// caller detects truncated history by comparing it to `from_lsn`.
  uint64_t oldest_lsn = 0;
};

/// Reads committed records with `lsn >= from_lsn` straight from the
/// segment files of `dir`, capped near `max_bytes` (but always at least
/// one frame when any qualifies). An undecodable tail on the *final*
/// segment is the in-flight append of a live primary and simply ends the
/// page; damage below that is an error. The caller must hold off
/// checkpoint truncation while exporting (segments must not vanish
/// mid-scan).
StatusOr<WalExport> ExportWalRecords(const std::string& dir,
                                     uint64_t from_lsn, uint64_t max_bytes);

/// Decodes framed records out of a replication stream. Stops cleanly at
/// the first torn or corrupt frame — a disconnect can cut a stream
/// anywhere, and the follower simply resumes from the last applied LSN —
/// reporting how many clean bytes were consumed via `*consumed`.
std::vector<WalRecord> DecodeWalStream(std::string_view bytes,
                                       size_t* consumed);

}  // namespace dtdevolve::store

#endif  // DTDEVOLVE_STORE_WAL_H_
