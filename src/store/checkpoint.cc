#include "store/checkpoint.h"

#include <dirent.h>

#include <cstring>
#include <string>
#include <utility>

#include "evolve/persist.h"
#include "io/file.h"
#include "store/evict_record.h"
#include "store/induce_record.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace dtdevolve::store {

namespace {

constexpr std::string_view kSourceHeader = "dtdevolve-source 1";
constexpr std::string_view kMetaHeader = "dtdevolve-checkpoint 1";
constexpr const char* kMetaName = "checkpoint.meta";

std::string DtdSnapshotPath(const std::string& dir, uint64_t lsn, size_t i) {
  return dir + "/ckpt-" + std::to_string(lsn) + "-" + std::to_string(i) +
         ".dtdstate";
}

std::string SourceStatePath(const std::string& dir, uint64_t lsn) {
  return dir + "/ckpt-" + std::to_string(lsn) + ".source";
}

/// Consumes the next '\n'-terminated line starting at `*offset`.
bool NextLine(std::string_view data, size_t* offset, std::string_view* line) {
  if (*offset >= data.size()) return false;
  const size_t end = data.find('\n', *offset);
  if (end == std::string_view::npos) {
    *line = data.substr(*offset);
    *offset = data.size();
  } else {
    *line = data.substr(*offset, end - *offset);
    *offset = end + 1;
  }
  return true;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

/// Splits "<keyword> <rest>" and checks the keyword.
bool TakeKeyword(std::string_view line, std::string_view keyword,
                 std::string_view* rest) {
  if (line.substr(0, keyword.size()) != keyword) return false;
  if (line.size() == keyword.size()) {
    *rest = {};
    return true;
  }
  if (line[keyword.size()] != ' ') return false;
  *rest = line.substr(keyword.size() + 1);
  return true;
}

/// Every ckpt-* entry in `dir` that does not belong to the checkpoint at
/// `keep_lsn` is removed, best effort — leftovers from an aborted
/// checkpoint are harmless (the meta never pointed at them), they just
/// waste space.
void CleanupStaleCheckpointFiles(const std::string& dir, uint64_t keep_lsn) {
  const std::string keep_prefix = "ckpt-" + std::to_string(keep_lsn) + "-";
  const std::string keep_source = "ckpt-" + std::to_string(keep_lsn) +
                                  ".source";
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return;
  std::vector<std::string> stale;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name.rfind("ckpt-", 0) != 0) continue;
    if (name.rfind(keep_prefix, 0) == 0 || name == keep_source) continue;
    stale.push_back(name);
  }
  ::closedir(handle);
  for (const std::string& name : stale) {
    (void)io::Unlink(dir + "/" + name);
  }
}

}  // namespace

std::string SerializeSourceState(const core::XmlSource& source) {
  std::string out(kSourceHeader);
  out.push_back('\n');
  out += "counters " + std::to_string(source.documents_processed()) + " " +
         std::to_string(source.documents_classified()) + " " +
         std::to_string(source.evolutions_performed()) + "\n";
  const classify::Repository& repo = source.repository();
  const std::vector<int> ids = repo.Ids();
  // The second field is the next id `Add` would assign — after an
  // eviction it is ahead of max(id)+1, and WAL eviction records name
  // explicit ids, so replay after restore must keep issuing the same
  // ids the live run did.
  out += "repository " + std::to_string(ids.size()) + " " +
         std::to_string(repo.next_id()) + "\n";
  xml::WriteOptions compact;
  compact.indent = false;
  for (int id : ids) {
    const std::string xml_text = xml::WriteDocument(repo.Get(id), compact);
    out += "doc " + std::to_string(id) + " " +
           std::to_string(xml_text.size()) + "\n";
    out += xml_text;
    out.push_back('\n');
  }
  return out;
}

Status RestoreSourceState(core::XmlSource& source, std::string_view data) {
  size_t offset = 0;
  std::string_view line;
  if (!NextLine(data, &offset, &line) || line != kSourceHeader) {
    return Status::ParseError("bad source-state header");
  }
  std::string_view rest;
  if (!NextLine(data, &offset, &line) ||
      !TakeKeyword(line, "counters", &rest)) {
    return Status::ParseError("source state: expected counters line");
  }
  uint64_t counters[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    const size_t space = rest.find(' ');
    const std::string_view token =
        i < 2 ? rest.substr(0, space) : rest;
    if ((i < 2 && space == std::string_view::npos) ||
        !ParseU64(token, &counters[i])) {
      return Status::ParseError("source state: bad counters line");
    }
    if (i < 2) rest = rest.substr(space + 1);
  }
  source.RestoreCounters(counters[0], counters[1], counters[2]);

  if (!NextLine(data, &offset, &line) ||
      !TakeKeyword(line, "repository", &rest)) {
    return Status::ParseError("source state: expected repository line");
  }
  uint64_t count = 0;
  uint64_t next_id = 0;
  const size_t count_space = rest.find(' ');
  if (count_space == std::string_view::npos) {
    // Checkpoints written before the id counter was persisted: the
    // restored docs alone decide the counter (max id + 1).
    if (!ParseU64(rest, &count)) {
      return Status::ParseError("source state: bad repository count");
    }
  } else if (!ParseU64(rest.substr(0, count_space), &count) ||
             !ParseU64(rest.substr(count_space + 1), &next_id)) {
    return Status::ParseError("source state: bad repository count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (!NextLine(data, &offset, &line) || !TakeKeyword(line, "doc", &rest)) {
      return Status::ParseError("source state: expected doc line");
    }
    const size_t space = rest.find(' ');
    uint64_t id = 0;
    uint64_t nbytes = 0;
    if (space == std::string_view::npos ||
        !ParseU64(rest.substr(0, space), &id) ||
        !ParseU64(rest.substr(space + 1), &nbytes)) {
      return Status::ParseError("source state: bad doc line");
    }
    if (offset + nbytes > data.size()) {
      return Status::ParseError("source state: doc payload truncated");
    }
    StatusOr<xml::Document> doc =
        xml::ParseDocument(data.substr(offset, nbytes));
    if (!doc.ok()) {
      return Status::ParseError("source state: doc " + std::to_string(id) +
                                ": " + doc.status().message());
    }
    offset += nbytes;
    if (offset < data.size() && data[offset] == '\n') ++offset;
    source.RestoreRepositoryDoc(static_cast<int>(id), std::move(*doc));
  }
  source.RestoreRepositoryNextId(static_cast<int>(next_id));
  return Status::Ok();
}

CheckpointData CaptureCheckpoint(const core::XmlSource& source, uint64_t lsn) {
  CheckpointData data;
  data.lsn = lsn;
  for (const std::string& name : source.DtdNames()) {
    const evolve::ExtendedDtd* ext = source.FindExtended(name);
    if (ext == nullptr) continue;
    data.dtds.emplace_back(name, evolve::SerializeExtendedDtd(*ext));
  }
  data.source_state = SerializeSourceState(source);
  return data;
}

Status WriteCheckpoint(const std::string& dir, const CheckpointData& data) {
  for (size_t i = 0; i < data.dtds.size(); ++i) {
    DTDEVOLVE_RETURN_IF_ERROR(io::WriteFileAtomic(
        DtdSnapshotPath(dir, data.lsn, i), data.dtds[i].second));
  }
  DTDEVOLVE_RETURN_IF_ERROR(io::WriteFileAtomic(
      SourceStatePath(dir, data.lsn), data.source_state));

  std::string meta(kMetaHeader);
  meta.push_back('\n');
  meta += "lsn " + std::to_string(data.lsn) + "\n";
  meta += "dtds " + std::to_string(data.dtds.size()) + "\n";
  for (size_t i = 0; i < data.dtds.size(); ++i) {
    meta += "dtd " + std::to_string(i) + " " + data.dtds[i].first + "\n";
  }
  // The meta rename is the commit point: everything it references is
  // already durable, so a crash on either side leaves a complete
  // checkpoint (the old one before, the new one after).
  DTDEVOLVE_RETURN_IF_ERROR(io::WriteFileAtomic(dir + "/" + kMetaName, meta));

  CleanupStaleCheckpointFiles(dir, data.lsn);
  return Status::Ok();
}

StatusOr<CheckpointData> ReadCheckpoint(const std::string& dir) {
  StatusOr<std::string> meta = io::ReadFile(dir + "/" + kMetaName);
  if (!meta.ok()) {
    if (meta.status().code() == Status::Code::kNotFound) {
      return CheckpointData{};
    }
    return meta.status();
  }
  size_t offset = 0;
  std::string_view line;
  std::string_view rest;
  const std::string_view text = *meta;
  if (!NextLine(text, &offset, &line) || line != kMetaHeader) {
    return Status::ParseError("bad checkpoint.meta header in " + dir);
  }
  CheckpointData data;
  if (!NextLine(text, &offset, &line) || !TakeKeyword(line, "lsn", &rest) ||
      !ParseU64(rest, &data.lsn)) {
    return Status::ParseError("checkpoint.meta: bad lsn line");
  }
  uint64_t count = 0;
  if (!NextLine(text, &offset, &line) || !TakeKeyword(line, "dtds", &rest) ||
      !ParseU64(rest, &count)) {
    return Status::ParseError("checkpoint.meta: bad dtds line");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (!NextLine(text, &offset, &line) || !TakeKeyword(line, "dtd", &rest)) {
      return Status::ParseError("checkpoint.meta: expected dtd line");
    }
    const size_t space = rest.find(' ');
    uint64_t index = 0;
    if (space == std::string_view::npos ||
        !ParseU64(rest.substr(0, space), &index) || index != i) {
      return Status::ParseError("checkpoint.meta: bad dtd line");
    }
    const std::string name(rest.substr(space + 1));
    StatusOr<std::string> snapshot =
        io::ReadFile(DtdSnapshotPath(dir, data.lsn, i));
    if (!snapshot.ok()) {
      return Status::Internal(
          "checkpoint at lsn " + std::to_string(data.lsn) +
          " references a missing DTD snapshot for '" + name +
          "': " + snapshot.status().message());
    }
    data.dtds.emplace_back(name, std::move(*snapshot));
  }
  StatusOr<std::string> source_state =
      io::ReadFile(SourceStatePath(dir, data.lsn));
  if (!source_state.ok()) {
    return Status::Internal("checkpoint at lsn " + std::to_string(data.lsn) +
                            " references a missing source state: " +
                            source_state.status().message());
  }
  data.source_state = std::move(*source_state);
  return data;
}

std::string EncodeCheckpointBlob(const CheckpointData& data) {
  std::string out = "dtdevolve-checkpoint-blob 1\n";
  out += "lsn " + std::to_string(data.lsn) + "\n";
  out += "dtds " + std::to_string(data.dtds.size()) + "\n";
  for (const auto& [name, serialized] : data.dtds) {
    // Length-prefixed name and payload: DTD names are operator input and
    // snapshots embed newlines, so nothing here may be delimiter-framed.
    out += "dtd " + std::to_string(name.size()) + " " +
           std::to_string(serialized.size()) + "\n";
    out += name;
    out += serialized;
    out.push_back('\n');
  }
  out += "source " + std::to_string(data.source_state.size()) + "\n";
  out += data.source_state;
  return out;
}

StatusOr<CheckpointData> DecodeCheckpointBlob(std::string_view blob) {
  size_t offset = 0;
  std::string_view line;
  std::string_view rest;
  if (!NextLine(blob, &offset, &line) ||
      line != "dtdevolve-checkpoint-blob 1") {
    return Status::ParseError("bad checkpoint-blob header");
  }
  CheckpointData data;
  if (!NextLine(blob, &offset, &line) || !TakeKeyword(line, "lsn", &rest) ||
      !ParseU64(rest, &data.lsn)) {
    return Status::ParseError("checkpoint blob: bad lsn line");
  }
  uint64_t count = 0;
  if (!NextLine(blob, &offset, &line) || !TakeKeyword(line, "dtds", &rest) ||
      !ParseU64(rest, &count)) {
    return Status::ParseError("checkpoint blob: bad dtds line");
  }
  for (uint64_t i = 0; i < count; ++i) {
    if (!NextLine(blob, &offset, &line) || !TakeKeyword(line, "dtd", &rest)) {
      return Status::ParseError("checkpoint blob: expected dtd line");
    }
    const size_t space = rest.find(' ');
    uint64_t name_bytes = 0;
    uint64_t payload_bytes = 0;
    if (space == std::string_view::npos ||
        !ParseU64(rest.substr(0, space), &name_bytes) ||
        !ParseU64(rest.substr(space + 1), &payload_bytes)) {
      return Status::ParseError("checkpoint blob: bad dtd line");
    }
    if (offset + name_bytes + payload_bytes > blob.size()) {
      return Status::ParseError("checkpoint blob: dtd payload truncated");
    }
    std::string name(blob.substr(offset, name_bytes));
    offset += name_bytes;
    std::string payload(blob.substr(offset, payload_bytes));
    offset += payload_bytes;
    if (offset < blob.size() && blob[offset] == '\n') ++offset;
    data.dtds.emplace_back(std::move(name), std::move(payload));
  }
  uint64_t source_bytes = 0;
  if (!NextLine(blob, &offset, &line) ||
      !TakeKeyword(line, "source", &rest) ||
      !ParseU64(rest, &source_bytes)) {
    return Status::ParseError("checkpoint blob: bad source line");
  }
  if (offset + source_bytes > blob.size()) {
    return Status::ParseError("checkpoint blob: source state truncated");
  }
  data.source_state = std::string(blob.substr(offset, source_bytes));
  return data;
}

Status ApplyCheckpointToSource(const CheckpointData& data,
                               core::XmlSource& source) {
  for (const auto& [name, serialized] : data.dtds) {
    StatusOr<evolve::ExtendedDtd> ext =
        evolve::DeserializeExtendedDtd(serialized);
    if (!ext.ok()) {
      return Status::Internal("checkpoint snapshot for '" + name +
                              "' is corrupt: " + ext.status().message());
    }
    Status restored = source.RestoreExtended(name, std::move(*ext));
    if (restored.code() == Status::Code::kNotFound) {
      // A DTD the seed set does not know — an induced candidate accepted
      // before the checkpoint. Register it fresh; the repository and
      // counters of the same checkpoint already reflect its adoption.
      // The first deserialization was moved into the failed call, so
      // deserialize again.
      StatusOr<evolve::ExtendedDtd> again =
          evolve::DeserializeExtendedDtd(serialized);
      if (!again.ok()) return again.status();
      restored = source.RegisterInducedDtd(name, std::move(*again));
    }
    DTDEVOLVE_RETURN_IF_ERROR(restored);
  }
  if (data.lsn > 0) {
    DTDEVOLVE_RETURN_IF_ERROR(RestoreSourceState(source, data.source_state));
  }
  return Status::Ok();
}

Status ApplyWalRecordToSource(uint64_t lsn, std::string_view payload,
                              core::XmlSource& source) {
  if (IsInduceAcceptRecord(payload)) {
    StatusOr<InduceAcceptRecord> accept = DecodeInduceAcceptRecord(payload);
    if (!accept.ok()) {
      return Status::Internal("WAL record " + std::to_string(lsn) +
                              " no longer applies: " +
                              accept.status().message());
    }
    Status adopted =
        source.AdoptInducedDtd(accept->name, std::move(accept->ext));
    if (!adopted.ok()) {
      return Status::Internal("WAL record " + std::to_string(lsn) +
                              " no longer applies: " + adopted.message());
    }
    return Status::Ok();
  }
  if (IsEvictRecord(payload)) {
    StatusOr<std::vector<int>> ids = DecodeEvictRecord(payload);
    if (!ids.ok()) {
      return Status::Internal("WAL record " + std::to_string(lsn) +
                              " no longer applies: " + ids.status().message());
    }
    // Ids already gone (a checkpoint below this LSN folded the eviction
    // in) are skipped — re-applying an eviction is a no-op.
    source.EvictRepositoryDocs(*ids);
    return Status::Ok();
  }
  StatusOr<core::XmlSource::ProcessOutcome> outcome =
      source.ProcessText(payload);
  if (!outcome.ok()) {
    return Status::Internal("WAL record " + std::to_string(lsn) +
                            " no longer applies: " +
                            outcome.status().message());
  }
  return Status::Ok();
}

StatusOr<std::unique_ptr<Wal>> RecoverSource(core::XmlSource& source,
                                             const WalOptions& options,
                                             RecoveryReport* report) {
  DTDEVOLVE_RETURN_IF_ERROR(io::CreateDir(options.dir));
  StatusOr<CheckpointData> checkpoint = ReadCheckpoint(options.dir);
  if (!checkpoint.ok()) return checkpoint.status();

  DTDEVOLVE_RETURN_IF_ERROR(ApplyCheckpointToSource(*checkpoint, source));

  WalReplay replay;
  StatusOr<std::unique_ptr<Wal>> wal =
      Wal::Open(options, checkpoint->lsn + 1, &replay);
  if (!wal.ok()) return wal.status();

  if (report != nullptr) {
    report->checkpoint_lsn = checkpoint->lsn;
    report->checkpoint_dtds = checkpoint->dtds.size();
    report->last_applied_lsn = checkpoint->lsn;
    report->wal_tail_truncated = replay.tail_truncated;
    report->warning = replay.warning;
  }
  for (const WalRecord& record : replay.records) {
    // Records at or below the checkpoint are already folded into the
    // snapshot; replaying them would double-apply. Skipping makes a
    // second recovery over the same files (crash before the next
    // checkpoint) a no-op for this prefix.
    if (record.lsn <= checkpoint->lsn) continue;
    DTDEVOLVE_RETURN_IF_ERROR(
        ApplyWalRecordToSource(record.lsn, record.payload, source));
    if (report != nullptr) {
      ++report->replayed_records;
      report->last_applied_lsn = record.lsn;
    }
  }
  // Tidy fully-covered segments left behind by a crash between the
  // checkpoint commit and its truncation.
  DTDEVOLVE_RETURN_IF_ERROR((*wal)->TruncateThrough(checkpoint->lsn));
  return wal;
}

}  // namespace dtdevolve::store
