#ifndef DTDEVOLVE_STORE_INDUCE_RECORD_H_
#define DTDEVOLVE_STORE_INDUCE_RECORD_H_

#include <string>
#include <string_view>

#include "evolve/extended_dtd.h"
#include "util/status.h"

namespace dtdevolve::store {

/// The induce-accept WAL record: a candidate DTD promoted into the live
/// set. Every other WAL payload is the raw XML of an ingested document —
/// which always starts with '<' — so the header line doubles as the
/// record-type tag and old logs remain readable unchanged. Replay
/// (`RecoverSource`) dispatches on it and calls
/// `XmlSource::AdoptInducedDtd`, reproducing exactly what the live
/// accept did: registration, the `induced` event, and the repository
/// re-classification that drains recovered members.
///
/// Layout (line-oriented, like the checkpoint source state):
///   dtdevolve-induce-accept 1
///   name <dtd name>
///   dtd <byte count>
///   <SerializeExtendedDtd payload>
inline constexpr std::string_view kInduceAcceptHeader =
    "dtdevolve-induce-accept 1";

/// True when `payload` is an induce-accept record (header match only;
/// a corrupt body still decodes to an error).
bool IsInduceAcceptRecord(std::string_view payload);

std::string EncodeInduceAcceptRecord(const std::string& name,
                                     const evolve::ExtendedDtd& ext);

struct InduceAcceptRecord {
  std::string name;
  evolve::ExtendedDtd ext = evolve::ExtendedDtd(dtd::Dtd());
};

StatusOr<InduceAcceptRecord> DecodeInduceAcceptRecord(
    std::string_view payload);

}  // namespace dtdevolve::store

#endif  // DTDEVOLVE_STORE_INDUCE_RECORD_H_
