#include "adapt/adapter.h"

#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "similarity/matcher.h"
#include "validate/validator.h"

namespace dtdevolve::adapt {

namespace {

using Kind = dtd::ContentModel::Kind;

/// Minimum number of required element leaves to satisfy a model.
size_t MinSize(const dtd::ContentModel& model) {
  switch (model.kind()) {
    case Kind::kName:
      return 1;
    case Kind::kPcdata:
    case Kind::kAny:
    case Kind::kEmpty:
      return 0;
    case Kind::kAnd: {
      size_t total = 0;
      for (const auto& child : model.children()) total += MinSize(*child);
      return total;
    }
    case Kind::kOr: {
      size_t best = std::numeric_limits<size_t>::max();
      for (const auto& child : model.children()) {
        best = std::min(best, MinSize(*child));
      }
      return best;
    }
    case Kind::kOptional:
    case Kind::kStar:
      return 0;
    case Kind::kPlus:
      return MinSize(model.child());
  }
  return 0;
}

void EmitMinimal(const dtd::ContentModel& model, const dtd::Dtd& dtd,
                 const AdaptOptions& options, int depth,
                 xml::Element& parent);

std::unique_ptr<xml::Element> MinimalElementRec(const dtd::Dtd& dtd,
                                                const std::string& name,
                                                const AdaptOptions& options,
                                                int depth) {
  auto element = std::make_unique<xml::Element>(name);
  const dtd::ElementDecl* decl = dtd.FindElement(name);
  if (decl != nullptr && decl->content != nullptr && depth < 32) {
    EmitMinimal(*decl->content, dtd, options, depth + 1, *element);
  }
  return element;
}

void EmitMinimal(const dtd::ContentModel& model, const dtd::Dtd& dtd,
                 const AdaptOptions& options, int depth,
                 xml::Element& parent) {
  switch (model.kind()) {
    case Kind::kName:
      parent.AddChild(MinimalElementRec(dtd, model.name(), options, depth));
      return;
    case Kind::kPcdata:
      if (!options.placeholder_text.empty()) {
        parent.AddText(options.placeholder_text);
      }
      return;
    case Kind::kAny:
    case Kind::kEmpty:
      return;
    case Kind::kAnd:
      for (const auto& child : model.children()) {
        EmitMinimal(*child, dtd, options, depth, parent);
      }
      return;
    case Kind::kOr: {
      const dtd::ContentModel* best = model.children().front().get();
      size_t best_size = MinSize(*best);
      for (const auto& child : model.children()) {
        size_t size = MinSize(*child);
        if (size < best_size) {
          best = child.get();
          best_size = size;
        }
      }
      EmitMinimal(*best, dtd, options, depth, parent);
      return;
    }
    case Kind::kOptional:
    case Kind::kStar:
      return;  // minimal: skip optional content
    case Kind::kPlus:
      EmitMinimal(model.child(), dtd, options, depth, parent);
      return;
  }
}

/// Adapts one element's direct content to its declaration (no recursion):
/// replays the optimal alignment path — matches keep their nodes, minus
/// events are satisfied by moving a misplaced (plus) child of the same
/// tag or by synthesizing a minimal element, plus events drop the child.
void AdaptOneLevel(xml::Element& element, const dtd::Dtd& dtd,
                   const dtd::Automaton& automaton,
                   const AdaptOptions& options, AdaptReport& report) {
  if (automaton.is_any()) return;

  std::vector<std::string> symbols = validate::ContentSymbols(element);
  similarity::MatchResult aligned = similarity::AlignChildren(
      automaton, symbols, [&](size_t i, const std::string& label) {
        return symbols[i] == label ? 1.0 : -1.0;
      });

  auto& children = element.children();
  std::vector<std::unique_ptr<xml::Node>> old_children = std::move(children);
  children.clear();

  // Node indices per symbol (one #PCDATA symbol spans consecutive text
  // nodes; blank text nodes are dropped silently).
  std::vector<std::vector<size_t>> symbol_nodes;
  {
    bool in_text = false;
    for (size_t n = 0; n < old_children.size(); ++n) {
      const xml::Node& node = *old_children[n];
      if (node.is_element()) {
        symbol_nodes.push_back({n});
        in_text = false;
      } else {
        const auto& text = static_cast<const xml::Text&>(node);
        if (text.value().find_first_not_of(" \t\r\n") == std::string::npos) {
          continue;
        }
        if (in_text) {
          symbol_nodes.back().push_back(n);
        } else {
          symbol_nodes.push_back({n});
          in_text = true;
        }
      }
    }
  }

  // Plus children by tag, available for moves.
  std::map<std::string, std::vector<size_t>> misplaced;
  for (const similarity::PathEvent& event : aligned.events) {
    if (event.kind != similarity::PathEvent::Kind::kPlus) continue;
    size_t node = symbol_nodes[event.child_index].front();
    if (old_children[node]->is_element()) {
      misplaced[old_children[node]->AsElement().tag()].push_back(node);
    }
  }

  std::vector<bool> consumed(old_children.size(), false);
  for (const similarity::PathEvent& event : aligned.events) {
    switch (event.kind) {
      case similarity::PathEvent::Kind::kMatch:
        for (size_t node : symbol_nodes[event.child_index]) {
          consumed[node] = true;
          children.push_back(std::move(old_children[node]));
        }
        break;
      case similarity::PathEvent::Kind::kPlus:
        break;  // resolved below (dropped, kept, or moved)
      case similarity::PathEvent::Kind::kMinus: {
        const std::string& label = automaton.LabelOfPosition(event.position);
        if (label == dtd::kPcdataSymbol) {
          if (!options.placeholder_text.empty()) {
            element.AddText(options.placeholder_text);
          }
          break;
        }
        bool moved = false;
        if (options.move_misplaced) {
          auto it = misplaced.find(label);
          if (it != misplaced.end()) {
            while (!it->second.empty() && !moved) {
              size_t node = it->second.front();
              it->second.erase(it->second.begin());
              if (!consumed[node]) {
                consumed[node] = true;
                children.push_back(std::move(old_children[node]));
                ++report.children_moved;
                moved = true;
              }
            }
          }
        }
        if (!moved && options.insert_missing) {
          children.push_back(MinimalElementRec(dtd, label, options, 0));
          ++report.children_inserted;
        }
        break;
      }
    }
  }

  // Whatever was neither matched nor moved: drop, or keep at the end.
  for (size_t n = 0; n < old_children.size(); ++n) {
    if (consumed[n] || old_children[n] == nullptr) continue;
    if (!old_children[n]->is_element()) continue;  // stray text dropped
    if (options.drop_unknown) {
      ++report.children_dropped;
    } else {
      children.push_back(std::move(old_children[n]));
    }
  }
}

}  // namespace

std::unique_ptr<xml::Element> MinimalElement(const dtd::Dtd& dtd,
                                             const std::string& name,
                                             const AdaptOptions& options) {
  return MinimalElementRec(dtd, name, options, 0);
}

Status AdaptElement(xml::Element& element, const dtd::Dtd& dtd,
                    const AdaptOptions& options, AdaptReport* report) {
  AdaptReport local;
  AdaptReport& r = report != nullptr ? *report : local;

  const dtd::ElementDecl* decl = dtd.FindElement(element.tag());
  if (decl == nullptr || decl->content == nullptr) {
    return Status::NotFound("element '" + element.tag() +
                            "' has no declaration");
  }
  ++r.elements_visited;
  dtd::Automaton automaton = dtd::Automaton::Build(*decl->content);
  AdaptOneLevel(element, dtd, automaton, options, r);
  for (xml::Element* child : element.ChildElements()) {
    if (dtd.HasElement(child->tag())) {
      DTDEVOLVE_RETURN_IF_ERROR(AdaptElement(*child, dtd, options, &r));
    }
  }
  return Status::Ok();
}

Status AdaptDocument(xml::Document& doc, const dtd::Dtd& dtd,
                     const AdaptOptions& options, AdaptReport* report) {
  if (!doc.has_root()) {
    return Status::FailedPrecondition("document has no root element");
  }
  if (!dtd.HasElement(doc.root().tag())) {
    return Status::NotFound("root element '" + doc.root().tag() +
                            "' has no declaration");
  }
  return AdaptElement(doc.root(), dtd, options, report);
}

}  // namespace dtdevolve::adapt
