#ifndef DTDEVOLVE_ADAPT_ADAPTER_H_
#define DTDEVOLVE_ADAPT_ADAPTER_H_

#include <cstdint>
#include <string>

#include "dtd/dtd.h"
#include "util/status.h"
#include "xml/document.h"

namespace dtdevolve::adapt {

/// Options of the document adapter.
struct AdaptOptions {
  /// Remove child elements the declaration does not admit (*plus*
  /// components). When false, unknown children are kept and the adapted
  /// document may stay invalid.
  bool drop_unknown = true;
  /// Create elements the declaration requires but the document misses
  /// (*minus* components), with minimal valid content.
  bool insert_missing = true;
  /// Reuse a dropped child of tag `l` to satisfy a required `l` elsewhere
  /// in the content — turning an order violation into a move instead of a
  /// delete + synthesize.
  bool move_misplaced = true;
  /// Text content given to synthesized #PCDATA elements.
  std::string placeholder_text;
};

/// What the adapter did, for reporting and tests.
struct AdaptReport {
  uint64_t elements_visited = 0;
  uint64_t children_dropped = 0;
  uint64_t children_moved = 0;
  uint64_t children_inserted = 0;
  bool changed() const {
    return children_dropped + children_moved + children_inserted > 0;
  }
};

/// The §6 open problem made concrete: "how to adapt documents, already
/// stored in the source, to the new structure prescribed by the evolved
/// set of DTDs". Each element's children are aligned against its
/// (evolved) declaration with the similarity matcher; matched children
/// stay, plus children are dropped (or moved to satisfy a missing
/// occurrence of the same tag), minus components are synthesized with
/// minimal valid content. With all options on, the adapted document is
/// valid for `dtd` (asserted by property tests).
Status AdaptElement(xml::Element& element, const dtd::Dtd& dtd,
                    const AdaptOptions& options, AdaptReport* report);

/// Whole-document variant; fails with NotFound when the root element has
/// no declaration.
Status AdaptDocument(xml::Document& doc, const dtd::Dtd& dtd,
                     const AdaptOptions& options = {},
                     AdaptReport* report = nullptr);

/// Builds a minimal valid instance of `name` per its declaration in
/// `dtd`: optional particles are skipped, the smallest alternative of
/// every choice is taken, `+` emits one occurrence. Used by the adapter
/// for minus components; exposed for tests and tooling.
std::unique_ptr<xml::Element> MinimalElement(const dtd::Dtd& dtd,
                                             const std::string& name,
                                             const AdaptOptions& options = {});

}  // namespace dtdevolve::adapt

#endif  // DTDEVOLVE_ADAPT_ADAPTER_H_
