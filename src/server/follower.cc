#include "server/follower.h"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "store/checkpoint.h"
#include "store/wal.h"

namespace dtdevolve::server {

namespace {

/// Percent-encodes a tenant name for a query value.
std::string UrlEncode(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.' || c == '~';
    if (safe) {
      out += c;
    } else {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "%%%02X",
                    static_cast<unsigned char>(c));
      out += buffer;
    }
  }
  return out;
}

Status ParseBaseUrl(const std::string& url, std::string* host,
                    uint16_t* port) {
  std::string rest = url;
  if (rest.rfind("http://", 0) == 0) rest = rest.substr(7);
  if (rest.rfind("https://", 0) == 0) {
    return Status::InvalidArgument("https primaries are not supported: " +
                                   url);
  }
  const size_t slash = rest.find('/');
  if (slash != std::string::npos) rest = rest.substr(0, slash);
  const size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    *host = rest;
    *port = 80;
  } else {
    *host = rest.substr(0, colon);
    char* end = nullptr;
    const unsigned long value = std::strtoul(rest.c_str() + colon + 1, &end,
                                             10);
    if (end == nullptr || *end != '\0' || value == 0 || value > 65535) {
      return Status::InvalidArgument("bad port in primary URL: " + url);
    }
    *port = static_cast<uint16_t>(value);
  }
  if (host->empty()) {
    return Status::InvalidArgument("no host in primary URL: " + url);
  }
  return Status::Ok();
}

StatusOr<int> ConnectTo(const std::string& host, uint16_t port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &results);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }
  int fd = -1;
  int saved_errno = 0;
  for (struct addrinfo* it = results; it != nullptr; it = it->ai_next) {
    fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
    if (fd < 0) {
      saved_errno = errno;
      continue;
    }
    if (::connect(fd, it->ai_addr, it->ai_addrlen) == 0) break;
    saved_errno = errno;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(saved_errno));
  }
  return fd;
}

bool SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Follower::Follower(FollowerConfig config, SourceManager* manager,
                   obs::Registry* registry)
    : config_(std::move(config)), manager_(manager), registry_(registry) {}

Follower::~Follower() { Stop(); }

Status Follower::Start() {
  DTDEVOLVE_RETURN_IF_ERROR(ParseBaseUrl(config_.url, &host_, &port_));
  for (const std::string& tenant : config_.tenants) {
    TenantState& state = tenants_[tenant];
    // Backward-compatible single-"default" replicas keep unlabeled
    // series, like every other shard metric.
    const obs::Labels labels = manager_->single_default()
                                   ? obs::Labels{}
                                   : obs::Labels{{"tenant", tenant}};
    state.lag = &registry_->GetGauge(
        "dtdevolve_replication_lag_lsn",
        "Primary WAL head LSN minus the replica's applied LSN", labels);
    state.applied = &registry_->GetCounter(
        "dtdevolve_replication_records_applied_total",
        "Replicated WAL records applied", labels);
    state.bootstraps = &registry_->GetCounter(
        "dtdevolve_replication_bootstraps_total",
        "Checkpoint bootstraps (initial and after 410 Gone)", labels);
    state.errors = &registry_->GetCounter(
        "dtdevolve_replication_errors_total",
        "Failed replication polls (transport, decode or apply)", labels);
    state.backoff_gauge = &registry_->GetGauge(
        "dtdevolve_replication_backoff_ms",
        "Current error backoff before this tenant's next poll (0 = healthy)",
        labels);
  }
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void Follower::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  Disconnect();
}

void Follower::Disconnect() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

StatusOr<HttpClientResponse> Follower::Get(const std::string& target) {
  // Keep-alive with one reconnect: a primary restart (or its idle
  // timeout) closes the cached connection, which surfaces as a failed
  // send or read on the next poll — retry once on a fresh socket.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) {
      StatusOr<int> fd = ConnectTo(host_, port_);
      if (!fd.ok()) return fd.status();
      fd_ = *fd;
    }
    const std::string request = "GET " + target +
                                " HTTP/1.1\r\n"
                                "Host: " +
                                host_ +
                                "\r\n"
                                "Connection: keep-alive\r\n"
                                "\r\n";
    if (!SendAll(fd_, request)) {
      Disconnect();
      continue;
    }
    StatusOr<HttpClientResponse> response = ReadHttpResponse(fd_);
    if (!response.ok()) {
      Disconnect();
      continue;
    }
    return response;
  }
  return Status::Unavailable("primary unreachable: " + host_ + ":" +
                             std::to_string(port_));
}

void Follower::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    lock.unlock();
    bool busy = false;
    for (const std::string& tenant : config_.tenants) {
      {
        std::lock_guard<std::mutex> check(mutex_);
        if (stop_) break;
      }
      TenantState& state = tenants_[tenant];
      // A tenant inside its error backoff window is skipped — an
      // unreachable or corrupted primary is retried on the doubling
      // schedule, not hammered at the poll cadence.
      if (state.backoff.count() > 0 &&
          std::chrono::steady_clock::now() < state.next_attempt) {
        continue;
      }
      busy = SyncTenant(tenant, state) || busy;
    }
    lock.lock();
    if (stop_) return;
    // Catch-up mode: a tenant that filled its page probably has more
    // waiting — poll again without sleeping.
    if (busy) continue;
    cv_.wait_for(lock, config_.poll_interval, [this] { return stop_; });
  }
}

void Follower::NoteSyncError(TenantState& state) {
  state.errors->Increment();
  // Double from the poll cadence up to the cap, then jitter ±25% so
  // replicas that failed together do not retry together.
  const auto base = state.backoff.count() == 0
                        ? config_.poll_interval
                        : std::min(state.backoff * 2, config_.max_backoff);
  const long jitter_span = std::max<long>(1, base.count() / 2);
  const long jittered =
      base.count() - base.count() / 4 +
      static_cast<long>(rng_() % static_cast<unsigned long>(jitter_span));
  state.backoff = std::chrono::milliseconds(jittered);
  state.next_attempt = std::chrono::steady_clock::now() + state.backoff;
  if (state.backoff_gauge != nullptr) {
    state.backoff_gauge->Set(static_cast<double>(state.backoff.count()));
  }
}

void Follower::NoteSyncOk(TenantState& state) {
  if (state.backoff.count() == 0) return;
  state.backoff = std::chrono::milliseconds(0);
  if (state.backoff_gauge != nullptr) state.backoff_gauge->Set(0.0);
}

bool Follower::SyncTenant(const std::string& tenant, TenantState& state) {
  const std::string tenant_query = "tenant=" + UrlEncode(tenant);

  if (!state.bootstrapped) {
    StatusOr<HttpClientResponse> response =
        Get("/replication/checkpoint?" + tenant_query);
    if (!response.ok() || response->status != 200) {
      NoteSyncError(state);
      return false;
    }
    StatusOr<store::CheckpointData> data =
        store::DecodeCheckpointBlob(response->body);
    if (!data.ok()) {
      NoteSyncError(state);
      return false;
    }
    if (!manager_->BootstrapFromCheckpoint(tenant, *data).ok()) {
      NoteSyncError(state);
      return false;
    }
    state.bootstrapped = true;
    state.bootstraps->Increment();
  }

  const uint64_t applied = manager_->AppliedLsnFor(tenant);
  StatusOr<HttpClientResponse> response = Get(
      "/replication/wal?" + tenant_query +
      "&from_lsn=" + std::to_string(applied + 1) +
      "&max_bytes=" + std::to_string(config_.page_bytes));
  if (!response.ok()) {
    NoteSyncError(state);
    return false;
  }
  if (response->status == 410) {
    // The LSN we need was checkpoint-truncated on the primary — the only
    // way forward is the newer checkpoint. The primary did answer, so
    // this is progress, not an error.
    NoteSyncOk(state);
    state.bootstrapped = false;
    return true;
  }
  if (response->status != 200) {
    NoteSyncError(state);
    return false;
  }

  // A disconnect can cut the stream anywhere; DecodeWalStream stops at
  // the first torn frame and the next poll resumes from applied+1.
  size_t consumed = 0;
  const std::vector<store::WalRecord> records =
      store::DecodeWalStream(response->body, &consumed);
  for (const store::WalRecord& record : records) {
    StatusOr<bool> ok =
        manager_->ApplyReplicated(tenant, record.lsn, record.payload);
    if (!ok.ok()) {
      NoteSyncError(state);
      if (ok.status().code() == Status::Code::kFailedPrecondition) {
        // An LSN gap means this lineage can't be extended — start over
        // from the primary's checkpoint.
        state.bootstrapped = false;
      }
      return false;
    }
    if (*ok) state.applied->Increment();
  }

  NoteSyncOk(state);

  // Lag against the primary's live head, from the page header.
  const std::string* next_header = response->FindHeader("x-dtdevolve-next-lsn");
  if (next_header != nullptr && !next_header->empty()) {
    const uint64_t next = std::strtoull(next_header->c_str(), nullptr, 10);
    const uint64_t now_applied = manager_->AppliedLsnFor(tenant);
    const uint64_t head = next > 0 ? next - 1 : 0;
    state.lag->Set(head > now_applied
                       ? static_cast<double>(head - now_applied)
                       : 0.0);
  }
  return !response->body.empty();
}

}  // namespace dtdevolve::server
