#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "xml/parser.h"

namespace dtdevolve::server {

namespace {

/// Minimal JSON string escaping (DTD names and error messages).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n";  break;
      case '\r': out += "\\r";  break;
      case '\t': out += "\\t";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

void SetSocketTimeouts(int fd, int recv_seconds, int send_seconds) {
  struct timeval tv;
  tv.tv_usec = 0;
  if (recv_seconds > 0) {
    tv.tv_sec = recv_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (send_seconds > 0) {
    tv.tv_sec = send_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

SourceManagerOptions ManagerOptions(const ServerOptions& options) {
  SourceManagerOptions manager_options;
  manager_options.tenants = options.tenants;
  manager_options.jobs = options.jobs;
  manager_options.queue_capacity = options.queue_capacity;
  manager_options.batch_max = options.batch_max;
  manager_options.snapshot_dir = options.snapshot_dir;
  manager_options.wal_dir = options.wal_dir;
  manager_options.fsync_policy = options.fsync_policy;
  manager_options.fsync_interval = options.fsync_interval;
  manager_options.wal_segment_bytes = options.wal_segment_bytes;
  manager_options.checkpoint_interval = options.checkpoint_interval;
  manager_options.checkpoint_on_shutdown = options.checkpoint_on_shutdown;
  manager_options.auto_induce_threshold = options.auto_induce_threshold;
  return manager_options;
}

/// Serializes one tenant's stats as the flat JSON object `/stats` has
/// always served (without the surrounding braces' final newline).
std::string StatsJson(const SourceManager::TenantStats& stats,
                      bool include_tenant) {
  std::string body = "{";
  if (include_tenant) {
    body += "\"tenant\":\"" + JsonEscape(stats.tenant) + "\",";
  }
  body += "\"documents_processed\":" + std::to_string(stats.documents_processed);
  body += ",\"documents_classified\":" +
          std::to_string(stats.documents_classified);
  body += ",\"repository_size\":" + std::to_string(stats.repository_size);
  body += ",\"evolutions_performed\":" +
          std::to_string(stats.evolutions_performed);
  // Added after the historical fields, so the original shape (PR 6
  // contract) survives prefix-wise and existing consumers keep parsing.
  body += ",\"repository\":{";
  body += "\"size\":" + std::to_string(stats.repository_size);
  body += ",\"clusters\":" + std::to_string(stats.cluster_count);
  body += ",\"largest_cluster\":" + std::to_string(stats.largest_cluster);
  body += ",\"candidates_pending\":" + std::to_string(stats.candidates_pending);
  body += ",\"candidates_proposed\":" +
          std::to_string(stats.candidates_proposed);
  body += ",\"candidates_accepted\":" +
          std::to_string(stats.candidates_accepted);
  body += ",\"candidates_rejected\":" +
          std::to_string(stats.candidates_rejected);
  body += "}";
  body += ",\"dtds\":{";
  bool first = true;
  for (const SourceManager::TenantDtdStats& dtd : stats.dtds) {
    if (!first) body += ',';
    first = false;
    body += "\"" + JsonEscape(dtd.name) + "\":{";
    body += "\"documents_recorded\":" + std::to_string(dtd.documents_recorded);
    body += ",\"mean_divergence\":" + FormatDouble(dtd.mean_divergence);
    body += ",\"documents_ingested\":" + std::to_string(dtd.documents_ingested);
    body += ",\"evolutions\":" + std::to_string(dtd.evolutions);
    body += "}";
  }
  body += "}}";
  return body;
}

}  // namespace

IngestServer::IngestServer(core::SourceOptions source_options,
                           ServerOptions options)
    : options_(std::move(options)),
      manager_(std::move(source_options), ManagerOptions(options_)) {}

IngestServer::~IngestServer() {
  Shutdown();
  Wait();
}

Status IngestServer::AddDtdText(const std::string& name,
                                std::string_view dtd_text) {
  return manager_.AddDtdText(name, dtd_text);
}

Status IngestServer::AddTenantDtdText(const std::string& tenant,
                                      const std::string& name,
                                      std::string_view dtd_text) {
  return manager_.AddTenantDtdText(tenant, name, dtd_text);
}

Status IngestServer::SnapshotNow() { return manager_.SnapshotNow(); }

Status IngestServer::CheckpointNow(uint64_t* captured_lsn) {
  return manager_.CheckpointAll(captured_lsn);
}

void IngestServer::CloseSockets() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

Status IngestServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }

  // Socket setup first: it is the step most likely to fail on
  // operator error (port already bound), and failing before recovery
  // keeps a failed Start trivially retryable. Every error path unwinds
  // the fds acquired so far — a failed Start used to leak the wake pipe
  // and the listener because Wait() early-returns when never started.
  if (::pipe(wake_pipe_) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return Status::Internal(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    const int saved_errno = errno;
    CloseSockets();
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(saved_errno));
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved_errno = errno;
    CloseSockets();
    return Status::Internal(std::string("bind failed: ") +
                            std::strerror(saved_errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int saved_errno = errno;
    CloseSockets();
    return Status::Internal(std::string("listen failed: ") +
                            std::strerror(saved_errno));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  // Shard lifecycle — metrics wiring, storage directories, recovery,
  // workers, checkpoint thread — lives in the manager. A shard that
  // recovered during a failed Start is not replayed again on retry.
  Status manager_started = manager_.Start(&registry_);
  if (!manager_started.ok()) {
    CloseSockets();
    return manager_started;
  }

  // A Shutdown raced against (or issued after) an earlier failed Start
  // must not make the fresh run unstoppable: the flag guards the
  // one-shot wake write, so it has to rearm with the new pipe.
  shutdown_requested_.store(false);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::Ok();
}

void IngestServer::Shutdown() {
  if (shutdown_requested_.exchange(true)) return;
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    // write() is async-signal-safe; this is the whole signal path.
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void IngestServer::Wait() {
  if (!started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();

  // Graceful order: (1) no new connections (listener is down), (2) the
  // workers keep running un-paused so in-flight wait=1 requests finish,
  // (3) once connections are gone, drain every queue, (4) final
  // checkpoint/sync + snapshot (inside Drain).
  manager_.ResumeIngest();
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    conn_done_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  manager_.Drain();

  CloseSockets();
  started_ = false;
}

void IngestServer::PauseIngest() { manager_.PauseIngest(); }

void IngestServer::ResumeIngest() { manager_.ResumeIngest(); }

void IngestServer::AcceptLoop() {
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    SetSocketTimeouts(fd, options_.recv_timeout_seconds,
                      options_.send_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      ++active_connections_;
    }
    // Detached: Wait() blocks on active_connections_ reaching zero, and
    // the decrement is the thread's final touch of server state.
    std::thread([this, fd] { HandleConnection(fd); }).detach();
  }
}

void IngestServer::HandleConnection(int fd) {
  StatusOr<HttpRequest> request = ReadHttpRequest(fd, options_.max_body_bytes);
  if (request.ok()) {
    HttpResponse response = Route(*request);
    // Label cardinality stays bounded: arbitrary 404 targets all fold
    // into "other".
    std::string path_label = "other";
    for (const char* known :
         {"/ingest", "/dtds", "/stats", "/metrics", "/healthz", "/tenants",
          "/dtds/induce", "/dtds/candidates"}) {
      if (request->path == known) path_label = known;
    }
    if (request->path.rfind("/dtds/", 0) == 0) path_label = "/dtds/{name}";
    if (request->path == "/dtds/induce") path_label = "/dtds/induce";
    if (request->path == "/dtds/candidates") path_label = "/dtds/candidates";
    if (request->path.rfind("/dtds/candidates/", 0) == 0) {
      path_label = "/dtds/candidates/{id}";
    }
    if (request->path.rfind("/ingest/", 0) == 0) {
      path_label = "/ingest/{tenant}";
    }
    registry_
        .GetCounter("dtdevolve_http_requests_total", "HTTP requests served",
                    {{"path", path_label},
                     {"code", std::to_string(response.status)}})
        .Increment();
    WriteHttpResponse(fd, response);
  } else {
    HttpResponse response;
    response.status = 400;
    response.body = request.status().ToString() + "\n";
    WriteHttpResponse(fd, response);
  }
  ::close(fd);
  {
    // Notify under the lock: these threads are detached, so a notify
    // after unlocking would race with `Wait` returning and the server
    // (and this condition variable) being destroyed.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    --active_connections_;
    conn_done_cv_.notify_all();
  }
}

HttpResponse IngestServer::Route(const HttpRequest& request) {
  if (request.path == "/healthz") {
    return {200, "text/plain; charset=utf-8", {}, "ok\n"};
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    return {200, "text/plain; version=0.0.4; charset=utf-8", {},
            registry_.RenderPrometheus()};
  }
  if (request.path == "/ingest" || request.path.rfind("/ingest/", 0) == 0) {
    if (request.method != "POST") return {405, "text/plain", {}, ""};
    return HandleIngest(request);
  }
  if (request.path == "/tenants") {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    return HandleTenants();
  }
  if (request.path == "/dtds/induce") {
    if (request.method != "POST") return {405, "text/plain", {}, ""};
    return HandleInduce(request);
  }
  if (request.path == "/dtds/candidates" ||
      request.path.rfind("/dtds/candidates/", 0) == 0) {
    return HandleCandidates(request);
  }
  if (request.path == "/dtds" || request.path.rfind("/dtds/", 0) == 0) {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    return HandleDtds(request);
  }
  if (request.path == "/stats") {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    return HandleStats(request);
  }
  return {404, "text/plain; charset=utf-8", {}, "not found\n"};
}

HttpResponse IngestServer::HandleIngest(const HttpRequest& request) {
  StatusOr<xml::Document> doc = xml::ParseDocument(request.body);
  if (!doc.ok()) {
    return {400, "application/json", {},
            "{\"error\":\"" + JsonEscape(doc.status().ToString()) + "\"}\n"};
  }

  // `/ingest/{tenant}` wins over `?tenant=`; both empty means anonymous
  // traffic, which the manager routes (single shard / "default" shard /
  // consistent hash of the root tag).
  std::string tenant;
  if (request.path.rfind("/ingest/", 0) == 0) {
    tenant = request.path.substr(std::strlen("/ingest/"));
  }
  if (tenant.empty()) tenant = request.QueryValue("tenant");

  const bool wait = request.QueryFlag("wait");
  SourceManager::EnqueueResult enqueued =
      manager_.Enqueue(tenant, std::move(*doc), request.body, wait);
  switch (enqueued.code) {
    case SourceManager::EnqueueCode::kUnknownTenant:
      return {404, "application/json", {},
              "{\"error\":\"unknown tenant '" + JsonEscape(tenant) + "'\"}\n"};
    case SourceManager::EnqueueCode::kQueueFull:
      return {503,
              "application/json",
              {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
              "{\"error\":\"ingest queue full\"}\n"};
    case SourceManager::EnqueueCode::kWalError:
      return {503,
              "application/json",
              {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
              "{\"error\":\"write-ahead log append failed: " +
                  JsonEscape(enqueued.error) + "\"}\n"};
    case SourceManager::EnqueueCode::kOk:
      break;
  }

  if (!wait) {
    return {202, "application/json", {},
            "{\"queued\":true,\"tenant\":\"" + JsonEscape(enqueued.tenant) +
                "\"}\n"};
  }
  std::shared_ptr<SourceManager::IngestWaiter> waiter = enqueued.waiter;
  std::unique_lock<std::mutex> lock(waiter->mutex);
  waiter->cv.wait(lock, [&] { return waiter->done; });
  const core::XmlSource::ProcessOutcome& outcome = waiter->outcome;
  std::string body = "{\"classified\":";
  body += outcome.classified ? "true" : "false";
  body += ",\"dtd\":\"" + JsonEscape(outcome.dtd_name) + "\"";
  body += ",\"similarity\":" + FormatDouble(outcome.similarity);
  body += ",\"evolved\":";
  body += outcome.evolved ? "true" : "false";
  body += ",\"reclassified\":" + std::to_string(outcome.reclassified);
  body += ",\"tenant\":\"" + JsonEscape(enqueued.tenant) + "\"";
  body += "}\n";
  return {200, "application/json", {}, body};
}

HttpResponse IngestServer::HandleTenants() {
  std::string body = "{\"tenants\":[";
  bool first = true;
  for (const std::string& name : manager_.TenantNames()) {
    if (!first) body += ',';
    first = false;
    body += "\"" + JsonEscape(name) + "\"";
  }
  body += "]}\n";
  return {200, "application/json", {}, body};
}

HttpResponse IngestServer::HandleDtds(const HttpRequest& request) {
  const std::string tenant = request.QueryValue("tenant");
  if (request.path == "/dtds") {
    if (tenant.empty() && !manager_.single_default()) {
      // Aggregate rollup: every tenant's DTD list keyed by tenant name.
      std::string body = "{\"tenants\":{";
      bool first_tenant = true;
      for (const std::string& name : manager_.TenantNames()) {
        StatusOr<std::vector<std::string>> names = manager_.DtdNamesFor(name);
        if (!names.ok()) continue;
        if (!first_tenant) body += ',';
        first_tenant = false;
        body += "\"" + JsonEscape(name) + "\":[";
        bool first = true;
        for (const std::string& dtd : *names) {
          if (!first) body += ',';
          first = false;
          body += "\"" + JsonEscape(dtd) + "\"";
        }
        body += "]";
      }
      body += "}}\n";
      return {200, "application/json", {}, body};
    }
    StatusOr<std::vector<std::string>> names = manager_.DtdNamesFor(tenant);
    if (!names.ok()) {
      return {404, "application/json", {},
              "{\"error\":\"" + JsonEscape(names.status().message()) +
                  "\"}\n"};
    }
    std::string body = "{\"dtds\":[";
    bool first = true;
    for (const std::string& name : *names) {
      if (!first) body += ',';
      first = false;
      body += "\"" + JsonEscape(name) + "\"";
    }
    body += "]}\n";
    return {200, "application/json", {}, body};
  }

  const std::string name = request.path.substr(std::strlen("/dtds/"));
  StatusOr<std::string> text = manager_.DtdTextFor(tenant, name);
  if (!text.ok()) {
    const int status =
        text.status().code() == Status::Code::kInvalidArgument ? 400 : 404;
    return {status, "application/json", {},
            "{\"error\":\"" + JsonEscape(text.status().message()) + "\"}\n"};
  }
  return {200, "application/xml-dtd; charset=utf-8", {}, std::move(*text)};
}

namespace {

/// HTTP status for the shared tenant/candidate error statuses.
int ErrorStatusCode(const Status& status) {
  switch (status.code()) {
    case Status::Code::kInvalidArgument:
      return 400;
    case Status::Code::kNotFound:
      return 404;
    default:
      return 500;
  }
}

HttpResponse JsonError(const Status& status) {
  return {ErrorStatusCode(status), "application/json", {},
          "{\"error\":\"" + JsonEscape(status.message()) + "\"}\n"};
}

}  // namespace

HttpResponse IngestServer::HandleInduce(const HttpRequest& request) {
  const std::string tenant = request.QueryValue("tenant");
  StatusOr<size_t> pending = manager_.InduceTenant(tenant);
  if (!pending.ok()) return JsonError(pending.status());
  return {200, "application/json", {},
          "{\"candidates\":" + std::to_string(*pending) + "}\n"};
}

HttpResponse IngestServer::HandleCandidates(const HttpRequest& request) {
  const std::string tenant = request.QueryValue("tenant");

  if (request.path == "/dtds/candidates") {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    StatusOr<std::vector<SourceManager::CandidateInfo>> candidates =
        manager_.CandidatesFor(tenant);
    if (!candidates.ok()) return JsonError(candidates.status());
    std::string body = "{\"candidates\":[";
    bool first = true;
    for (const SourceManager::CandidateInfo& info : *candidates) {
      if (!first) body += ',';
      first = false;
      body += "{\"id\":" + std::to_string(info.id);
      body += ",\"name\":\"" + JsonEscape(info.name) + "\"";
      body += ",\"members\":" + std::to_string(info.members);
      body += ",\"validated\":" + std::to_string(info.validated);
      body += ",\"coverage\":" + FormatDouble(info.coverage);
      body += ",\"margin\":" + FormatDouble(info.margin);
      body += ",\"dtd\":\"" + JsonEscape(info.dtd_text) + "\"}";
    }
    body += "]}\n";
    return {200, "application/json", {}, body};
  }

  // /dtds/candidates/{id}/accept | /dtds/candidates/{id}/reject
  if (request.method != "POST") return {405, "text/plain", {}, ""};
  std::string rest = request.path.substr(std::strlen("/dtds/candidates/"));
  const size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    return {404, "text/plain; charset=utf-8", {}, "not found\n"};
  }
  const std::string id_text = rest.substr(0, slash);
  const std::string verb = rest.substr(slash + 1);
  char* end = nullptr;
  const uint64_t id = std::strtoull(id_text.c_str(), &end, 10);
  if (id_text.empty() || end == nullptr || *end != '\0') {
    return {400, "application/json", {},
            "{\"error\":\"candidate id must be a number\"}\n"};
  }

  if (verb == "accept") {
    StatusOr<core::XmlSource::AcceptOutcome> outcome =
        manager_.AcceptCandidate(tenant, id);
    if (!outcome.ok()) return JsonError(outcome.status());
    std::string body = "{\"accepted\":true";
    body += ",\"dtd\":\"" + JsonEscape(outcome->dtd_name) + "\"";
    body += ",\"members\":" + std::to_string(outcome->members);
    body += ",\"validated\":" + std::to_string(outcome->validated);
    body += ",\"reclassified\":" + std::to_string(outcome->reclassified);
    body += "}\n";
    return {200, "application/json", {}, body};
  }
  if (verb == "reject") {
    Status rejected = manager_.RejectCandidate(tenant, id);
    if (!rejected.ok()) return JsonError(rejected);
    return {200, "application/json", {},
            "{\"rejected\":true,\"id\":" + std::to_string(id) + "}\n"};
  }
  return {404, "text/plain; charset=utf-8", {}, "not found\n"};
}

HttpResponse IngestServer::HandleStats(const HttpRequest& request) {
  const std::string tenant = request.QueryValue("tenant");
  if (!tenant.empty() || manager_.single_default()) {
    StatusOr<SourceManager::TenantStats> stats = manager_.StatsFor(tenant);
    if (!stats.ok()) {
      return {404, "application/json", {},
              "{\"error\":\"" + JsonEscape(stats.status().message()) +
                  "\"}\n"};
    }
    // Single-"default" mode serves the exact historical shape (no
    // tenant key); an explicit ?tenant= adds the tenant name.
    return {200, "application/json", {},
            StatsJson(*stats, /*include_tenant=*/!tenant.empty()) + "\n"};
  }

  // Multi-tenant aggregate: process-wide totals plus a per-tenant
  // rollup.
  std::vector<SourceManager::TenantStats> all = manager_.AllStats();
  uint64_t processed = 0;
  uint64_t classified = 0;
  size_t repository = 0;
  uint64_t evolutions = 0;
  for (const SourceManager::TenantStats& stats : all) {
    processed += stats.documents_processed;
    classified += stats.documents_classified;
    repository += stats.repository_size;
    evolutions += stats.evolutions_performed;
  }
  std::string body = "{";
  body += "\"documents_processed\":" + std::to_string(processed);
  body += ",\"documents_classified\":" + std::to_string(classified);
  body += ",\"repository_size\":" + std::to_string(repository);
  body += ",\"evolutions_performed\":" + std::to_string(evolutions);
  body += ",\"tenants\":{";
  bool first = true;
  for (const SourceManager::TenantStats& stats : all) {
    if (!first) body += ',';
    first = false;
    body += "\"" + JsonEscape(stats.tenant) +
            "\":" + StatsJson(stats, /*include_tenant=*/false);
  }
  body += "}}\n";
  return {200, "application/json", {}, body};
}

}  // namespace dtdevolve::server
