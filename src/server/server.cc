#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "xml/parser.h"
#include "xml/stream_reader.h"

namespace dtdevolve::server {

namespace {

/// Minimal JSON string escaping (DTD names and error messages).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n";  break;
      case '\r': out += "\\r";  break;
      case '\t': out += "\\t";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

/// Response bytes buffered per connection before the loop stops reading
/// new requests from it (re-armed once the client drains its side) —
/// a pipelining client cannot balloon the server.
constexpr size_t kMaxBufferedOut = 1 << 20;
/// Unparsed request bytes buffered before reads pause for the same
/// reason (pipelined requests parked behind a `?wait=1` head).
constexpr size_t kMaxBufferedIn = 1 << 20;

SourceManagerOptions ManagerOptions(const ServerOptions& options) {
  SourceManagerOptions manager_options;
  manager_options.tenants = options.tenants;
  manager_options.jobs = options.jobs;
  manager_options.queue_capacity = options.queue_capacity;
  manager_options.batch_max = options.batch_max;
  manager_options.snapshot_dir = options.snapshot_dir;
  manager_options.wal_dir = options.wal_dir;
  manager_options.fsync_policy = options.fsync_policy;
  manager_options.fsync_interval = options.fsync_interval;
  manager_options.wal_segment_bytes = options.wal_segment_bytes;
  manager_options.checkpoint_interval = options.checkpoint_interval;
  manager_options.checkpoint_on_shutdown = options.checkpoint_on_shutdown;
  manager_options.auto_induce_threshold = options.auto_induce_threshold;
  manager_options.tenant_rate = options.tenant_rate;
  manager_options.tenant_burst = options.tenant_burst;
  manager_options.max_doc_bytes = options.max_doc_bytes;
  manager_options.max_repository_docs = options.max_repository_docs;
  manager_options.repository_policy = options.repository_policy;
  manager_options.tenant_quotas = options.tenant_quotas;
  manager_options.health_probe_interval = options.health_probe_interval;
  if (!options.follow_url.empty()) {
    // A replica owns no durable state — the primary does. Its shards
    // run WAL-less and snapshot-less, fed only by replicated records.
    manager_options.wal_dir.clear();
    manager_options.snapshot_dir.clear();
  }
  return manager_options;
}

/// Serializes one tenant's stats as the flat JSON object `/stats` has
/// always served (without the surrounding braces' final newline).
std::string StatsJson(const SourceManager::TenantStats& stats,
                      bool include_tenant) {
  std::string body = "{";
  if (include_tenant) {
    body += "\"tenant\":\"" + JsonEscape(stats.tenant) + "\",";
  }
  body += "\"documents_processed\":" + std::to_string(stats.documents_processed);
  body += ",\"documents_classified\":" +
          std::to_string(stats.documents_classified);
  body += ",\"repository_size\":" + std::to_string(stats.repository_size);
  body += ",\"evolutions_performed\":" +
          std::to_string(stats.evolutions_performed);
  // Added after the historical fields, so the original shape (PR 6
  // contract) survives prefix-wise and existing consumers keep parsing.
  body += ",\"repository\":{";
  body += "\"size\":" + std::to_string(stats.repository_size);
  body += ",\"clusters\":" + std::to_string(stats.cluster_count);
  body += ",\"largest_cluster\":" + std::to_string(stats.largest_cluster);
  body += ",\"candidates_pending\":" + std::to_string(stats.candidates_pending);
  body += ",\"candidates_proposed\":" +
          std::to_string(stats.candidates_proposed);
  body += ",\"candidates_accepted\":" +
          std::to_string(stats.candidates_accepted);
  body += ",\"candidates_rejected\":" +
          std::to_string(stats.candidates_rejected);
  body += "}";
  body += ",\"dtds\":{";
  bool first = true;
  for (const SourceManager::TenantDtdStats& dtd : stats.dtds) {
    if (!first) body += ',';
    first = false;
    body += "\"" + JsonEscape(dtd.name) + "\":{";
    body += "\"documents_recorded\":" + std::to_string(dtd.documents_recorded);
    body += ",\"mean_divergence\":" + FormatDouble(dtd.mean_divergence);
    body += ",\"documents_ingested\":" + std::to_string(dtd.documents_ingested);
    body += ",\"evolutions\":" + std::to_string(dtd.evolutions);
    body += "}";
  }
  body += "}}";
  return body;
}

/// HTTP status for the shared tenant/candidate error statuses.
int ErrorStatusCode(const Status& status) {
  switch (status.code()) {
    case Status::Code::kInvalidArgument:
      return 400;
    case Status::Code::kNotFound:
      return 404;
    case Status::Code::kFailedPrecondition:
      return 503;
    default:
      return 500;
  }
}

HttpResponse JsonError(const Status& status) {
  return {ErrorStatusCode(status), "application/json", {},
          "{\"error\":\"" + JsonEscape(status.message()) + "\"}\n"};
}

/// Bounded-cardinality path label: arbitrary 404 targets fold into
/// "other".
std::string PathLabel(const std::string& path) {
  for (const char* known :
       {"/ingest", "/dtds", "/stats", "/metrics", "/healthz", "/tenants",
        "/dtds/induce", "/dtds/candidates", "/replication/checkpoint",
        "/replication/wal"}) {
    if (path == known) return known;
  }
  if (path.rfind("/dtds/candidates/", 0) == 0) {
    return "/dtds/candidates/{id}";
  }
  if (path.rfind("/dtds/", 0) == 0) return "/dtds/{name}";
  if (path.rfind("/ingest/", 0) == 0) return "/ingest/{tenant}";
  return "other";
}

/// The JSON body of a completed `?wait=1` ingest — shared by the
/// synchronous fallback and the worker-side completion callback.
HttpResponse WaitOutcomeResponse(const core::XmlSource::ProcessOutcome& outcome,
                                 const std::string& tenant) {
  std::string body = "{\"classified\":";
  body += outcome.classified ? "true" : "false";
  body += ",\"dtd\":\"" + JsonEscape(outcome.dtd_name) + "\"";
  body += ",\"similarity\":" + FormatDouble(outcome.similarity);
  body += ",\"evolved\":";
  body += outcome.evolved ? "true" : "false";
  body += ",\"reclassified\":" + std::to_string(outcome.reclassified);
  body += ",\"tenant\":\"" + JsonEscape(tenant) + "\"";
  body += "}\n";
  return {200, "application/json", {}, body};
}

}  // namespace

IngestServer::IngestServer(core::SourceOptions source_options,
                           ServerOptions options)
    : options_(std::move(options)),
      manager_(std::move(source_options), ManagerOptions(options_)) {}

IngestServer::~IngestServer() {
  Shutdown();
  Wait();
}

Status IngestServer::AddDtdText(const std::string& name,
                                std::string_view dtd_text) {
  return manager_.AddDtdText(name, dtd_text);
}

Status IngestServer::AddTenantDtdText(const std::string& tenant,
                                      const std::string& name,
                                      std::string_view dtd_text) {
  return manager_.AddTenantDtdText(tenant, name, dtd_text);
}

Status IngestServer::SnapshotNow() { return manager_.SnapshotNow(); }

Status IngestServer::CheckpointNow(uint64_t* captured_lsn) {
  return manager_.CheckpointAll(captured_lsn);
}

void IngestServer::CloseSockets() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  epoll_fd_ = -1;
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

Status IngestServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }

  // Socket setup first: it is the step most likely to fail on
  // operator error (port already bound), and failing before recovery
  // keeps a failed Start trivially retryable. Every error path unwinds
  // the fds acquired so far — a failed Start used to leak the wake pipe
  // and the listener because Wait() early-returns when never started.
  if (::pipe(wake_pipe_) != 0) {
    wake_pipe_[0] = wake_pipe_[1] = -1;
    return Status::Internal(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  // The event thread must never block on the wake pipe's read side.
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    const int saved_errno = errno;
    CloseSockets();
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(saved_errno));
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int saved_errno = errno;
    CloseSockets();
    return Status::Internal(std::string("bind failed: ") +
                            std::strerror(saved_errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    const int saved_errno = errno;
    CloseSockets();
    return Status::Internal(std::string("listen failed: ") +
                            std::strerror(saved_errno));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const int saved_errno = errno;
    CloseSockets();
    return Status::Internal(std::string("epoll_create1 failed: ") +
                            std::strerror(saved_errno));
  }
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) != 0 ||
      (event.data.fd = wake_pipe_[0],
       ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_pipe_[0], &event) != 0)) {
    const int saved_errno = errno;
    CloseSockets();
    return Status::Internal(std::string("epoll_ctl failed: ") +
                            std::strerror(saved_errno));
  }

  // Shard lifecycle — metrics wiring, storage directories, recovery,
  // workers, checkpoint thread — lives in the manager. A shard that
  // recovered during a failed Start is not replayed again on retry.
  Status manager_started = manager_.Start(&registry_);
  if (!manager_started.ok()) {
    CloseSockets();
    return manager_started;
  }

  if (!options_.follow_url.empty()) {
    FollowerConfig config;
    config.url = options_.follow_url;
    config.tenants = manager_.TenantNames();
    config.poll_interval = options_.follow_poll_interval;
    follower_ = std::make_unique<Follower>(config, &manager_, &registry_);
    Status follower_started = follower_->Start();
    if (!follower_started.ok()) {
      follower_.reset();
      manager_.Drain();
      CloseSockets();
      return follower_started;
    }
  }

  conns_accepted_ = &registry_.GetCounter("dtdevolve_http_connections_total",
                                          "Connections accepted");
  conns_timed_out_ = &registry_.GetCounter(
      "dtdevolve_http_connection_timeouts_total",
      "Connections closed on an idle, read-stall or write-stall deadline");
  conns_rejected_ = &registry_.GetCounter(
      "dtdevolve_http_connections_rejected_total",
      "Accepts answered 503-and-close at the connection cap");
  accept_stalls_ = &registry_.GetCounter(
      "dtdevolve_http_accept_stalls_total",
      "Listener backoffs after accept failed on fd exhaustion");
  conns_open_ = &registry_.GetGauge("dtdevolve_http_connections_open",
                                    "Connections currently multiplexed");

  // A Shutdown raced against (or issued after) an earlier failed Start
  // must not make the fresh run unstoppable: the flag guards the
  // one-shot wake write, so it has to rearm with the new pipe.
  shutdown_requested_.store(false);
  draining_ = false;
  listener_armed_ = true;
  conns_.clear();
  completions_.clear();
  event_thread_ = std::thread([this] { EventLoop(); });
  started_ = true;
  return Status::Ok();
}

void IngestServer::Shutdown() {
  if (shutdown_requested_.exchange(true)) return;
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    // write() is async-signal-safe; this is the whole signal path.
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void IngestServer::Wait() {
  if (!started_) return;
  // Graceful order: (1) make sure the workers run un-paused, so parked
  // `?wait=1` requests complete and their callbacks land; (2) the event
  // thread drains — listener down, idle connections dropped, in-flight
  // responses (keep-alive included) flushed; (3) the replication thread
  // stops; (4) the workers drain and join — after this no completion
  // callback can fire — then the final checkpoint/sync + snapshot;
  // (5) the fds close, which is safe exactly because nothing above can
  // touch the wake pipe anymore.
  manager_.ResumeIngest();
  if (event_thread_.joinable()) event_thread_.join();
  if (follower_ != nullptr) {
    follower_->Stop();
    follower_.reset();
  }
  manager_.Drain();
  CloseSockets();
  started_ = false;
}

void IngestServer::PauseIngest() { manager_.PauseIngest(); }

void IngestServer::ResumeIngest() { manager_.ResumeIngest(); }

// --- Event loop -----------------------------------------------------------

void IngestServer::EventLoop() {
  struct epoll_event events[64];
  for (;;) {
    const int budget = TimeoutBudgetMs();
    const int ready =
        ::epoll_wait(epoll_fd_, events, 64, budget);
    if (ready < 0 && errno != EINTR) break;
    const int count = ready < 0 ? 0 : ready;

    // Connection I/O first, accepts last: a connection closed in this
    // batch frees its fd, and accepting first could re-issue that fd
    // while a stale event for the old connection is still in `events`.
    bool accept_ready = false;
    for (int i = 0; i < count; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_pipe_[0]) {
        char drain[256];
        while (::read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        accept_ready = true;
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;  // closed earlier in this batch
      Connection* conn = it->second.get();
      if ((events[i].events & EPOLLOUT) != 0) {
        if (!FlushOut(conn)) continue;
        UpdateInterest(conn);
      }
      if ((events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
        HandleReadable(conn);
      }
    }

    DrainCompletions();

    if (shutdown_requested_.load() && !draining_) StartDrain();
    if (accept_ready && !draining_) AcceptReady();
    if (!draining_) RearmListenerIfDue();

    CloseExpiredConns();

    if (draining_ && conns_.empty()) return;
  }
}

void IngestServer::AcceptReady() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOMEM ||
          errno == ENOBUFS) {
        // Out of fds (or kernel memory): the pending connection stays in
        // the backlog, so a level-triggered listener would wake the loop
        // on every epoll_wait without ever making progress. Park the
        // listener on a timed backoff instead; by the re-arm an
        // established connection has usually closed and freed an fd.
        DisarmListener();
        break;
      }
      break;
    }
    if (options_.max_connections > 0 &&
        conns_.size() >= options_.max_connections) {
      RejectConnection(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = ++next_conn_id_;
    conn->events = EPOLLIN;
    conn->last_activity = std::chrono::steady_clock::now();
    struct epoll_event event;
    std::memset(&event, 0, sizeof(event));
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      continue;
    }
    conns_[fd] = std::move(conn);
    conns_accepted_->Increment();
    conns_open_->Set(static_cast<double>(conns_.size()));
  }
}

void IngestServer::RejectConnection(int fd) {
  // The socket never joins the event loop: one best-effort synchronous
  // write of the 503 (a fresh connection's send buffer is empty, so a
  // response this small does not block), then close. Truncation under a
  // SYN flood is acceptable — the close itself is the backoff signal.
  HttpResponse response{
      503,
      "application/json",
      {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
      "{\"error\":\"connection limit reached\"}\n"};
  const std::string bytes =
      SerializeHttpResponse(response, /*keep_alive=*/false);
  [[maybe_unused]] ssize_t n =
      ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
  ::close(fd);
  conns_rejected_->Increment();
}

/// Listener backoff after fd exhaustion, folded into the epoll budget.
constexpr int kListenerRearmMs = 100;

void IngestServer::DisarmListener() {
  if (!listener_armed_ || listen_fd_ < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
  listener_armed_ = false;
  listener_rearm_at_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(kListenerRearmMs);
  accept_stalls_->Increment();
}

void IngestServer::RearmListenerIfDue() {
  if (listener_armed_ || listen_fd_ < 0) return;
  if (std::chrono::steady_clock::now() < listener_rearm_at_) return;
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = EPOLLIN;
  event.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &event) == 0) {
    listener_armed_ = true;
    // The backlog accumulated during the stall; drain it now instead of
    // waiting for the next epoll wake.
    AcceptReady();
  } else {
    // Still starved (epoll_ctl itself can fail on ENOMEM) — back off
    // again.
    listener_rearm_at_ = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(kListenerRearmMs);
  }
}

void IngestServer::StartDrain() {
  draining_ = true;
  // No new connections: the listener goes down first, so clients fail
  // fast to another replica instead of queueing behind a dying server.
  if (listen_fd_ >= 0) {
    if (listener_armed_) {
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    }
    listener_armed_ = false;
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<Connection*> idle;
  for (auto& entry : conns_) {
    Connection* conn = entry.second.get();
    if (conn->waiting_apply) {
      // A parked `?wait=1` request — plus whatever is pipelined behind
      // it — finishes before the close; only new reads stop.
      UpdateInterest(conn);
      continue;
    }
    if (!conn->out.empty()) {
      // In-flight response: flush, then close (the keep-alive drain
      // guarantee).
      conn->close_after_flush = true;
      UpdateInterest(conn);
      continue;
    }
    // Idle keep-alive connections (and half-sent requests that can now
    // never complete) close immediately.
    idle.push_back(conn);
  }
  for (Connection* conn : idle) CloseConn(conn);
}

void IngestServer::HandleReadable(Connection* conn) {
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      if (conn->in.size() >= kMaxBufferedIn) break;
      continue;
    }
    if (n == 0) {
      // Half-close: nothing more arrives, but responses already earned
      // (parsed requests, parked waits) still go out before the close.
      conn->saw_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConn(conn);
    return;
  }
  if (!conn->waiting_apply) ProcessInput(conn);
  if (!FlushOut(conn)) return;
  UpdateInterest(conn);
}

void IngestServer::ProcessInput(Connection* conn) {
  size_t served_this_pass = 0;
  while (!conn->close_after_flush && !conn->waiting_apply) {
    if (conn->in.empty()) break;
    HttpRequest request;
    const HttpParse parsed =
        ParseHttpRequest(conn->in, options_.max_body_bytes, &request);
    if (parsed.result == HttpParseResult::kNeedMore) break;
    if (parsed.result == HttpParseResult::kError) {
      // Malformed framing: answer, then close — the byte stream can no
      // longer be trusted to find the next request boundary.
      HttpResponse response;
      response.status = parsed.error_status;
      response.content_type = "text/plain; charset=utf-8";
      response.body = parsed.error + "\n";
      CountRequest("other", response.status);
      conn->out += SerializeHttpResponse(response, /*keep_alive=*/false);
      conn->last_activity = std::chrono::steady_clock::now();
      conn->close_after_flush = true;
      break;
    }
    conn->in.erase(0, parsed.consumed);
    const bool keep_alive = parsed.keep_alive && !draining_ && !conn->saw_eof;

    if (options_.max_pipeline_depth > 0 &&
        served_this_pass >= options_.max_pipeline_depth) {
      // The client stuffed more requests into one burst than the server
      // is willing to keep in flight. The overflow request gets a 503
      // (its predecessors' responses are already buffered, in order)
      // and the connection closes after the flush.
      HttpResponse response{
          503,
          "application/json",
          {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
          "{\"error\":\"pipeline depth limit reached\"}\n"};
      CountRequest(PathLabel(request.path), response.status);
      conn->out += SerializeHttpResponse(response, /*keep_alive=*/false);
      conn->last_activity = std::chrono::steady_clock::now();
      conn->close_after_flush = true;
      break;
    }
    ++served_this_pass;

    RouteResult routed = Route(request, conn->fd, conn->id, keep_alive);
    if (routed.async) {
      // The response arrives via the completion queue; stop parsing so
      // pipelined successors are answered in order behind it.
      conn->waiting_apply = true;
      break;
    }
    CountRequest(PathLabel(request.path), routed.response.status);
    conn->out += SerializeHttpResponse(routed.response, keep_alive);
    conn->last_activity = std::chrono::steady_clock::now();
    if (!keep_alive) {
      conn->close_after_flush = true;
      break;
    }
  }
  if (draining_ && !conn->waiting_apply) conn->close_after_flush = true;
}

bool IngestServer::FlushOut(Connection* conn) {
  while (!conn->out.empty()) {
    const ssize_t n =
        ::send(conn->fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      conn->last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConn(conn);
    return false;
  }
  if (conn->out.empty() &&
      (conn->close_after_flush || (conn->saw_eof && !conn->waiting_apply))) {
    CloseConn(conn);
    return false;
  }
  return true;
}

void IngestServer::UpdateInterest(Connection* conn) {
  uint32_t want = 0;
  // Reads stay armed while the connection can make progress: not during
  // drain, not after EOF, and not while either buffer is at its
  // backpressure cap.
  if (!draining_ && !conn->saw_eof && conn->out.size() < kMaxBufferedOut &&
      conn->in.size() < kMaxBufferedIn) {
    want |= EPOLLIN;
  }
  if (!conn->out.empty()) want |= EPOLLOUT;
  if (want == conn->events) return;
  struct epoll_event event;
  std::memset(&event, 0, sizeof(event));
  event.events = want;
  event.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &event) == 0) {
    conn->events = want;
  }
}

void IngestServer::CloseConn(Connection* conn) {
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  conns_open_->Set(static_cast<double>(conns_.size()));
}

void IngestServer::PushCompletion(WaitCompletion completion) {
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    completions_.push_back(std::move(completion));
  }
  // Wake the event loop; one byte per completion is fine — the reader
  // drains the pipe wholesale.
  if (wake_pipe_[1] >= 0) {
    const char byte = 'c';
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void IngestServer::DrainCompletions() {
  std::vector<WaitCompletion> ready;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    ready.swap(completions_);
  }
  for (WaitCompletion& completion : ready) {
    auto it = conns_.find(completion.fd);
    if (it == conns_.end() || it->second->id != completion.conn_id) {
      // The connection died while its document was applied (the apply
      // itself is durable and acked by the WAL, not by this socket).
      continue;
    }
    Connection* conn = it->second.get();
    conn->waiting_apply = false;
    const bool keep_alive =
        completion.keep_alive && !draining_ && !conn->saw_eof;
    conn->out += SerializeHttpResponse(completion.response, keep_alive);
    conn->last_activity = std::chrono::steady_clock::now();
    if (!keep_alive) {
      conn->close_after_flush = true;
    } else {
      // Requests pipelined behind the parked one resume, still in
      // order.
      ProcessInput(conn);
    }
    if (!FlushOut(conn)) continue;
    UpdateInterest(conn);
  }
}

int IngestServer::TimeoutBudgetMs() const {
  using std::chrono::steady_clock;
  using std::chrono::milliseconds;
  const steady_clock::time_point now = steady_clock::now();
  long best = 1000;  // periodic tick: cheap, bounds every deadline check
  if (!listener_armed_ && listen_fd_ >= 0) {
    // A parked listener re-arms on a deadline, not on an epoll event —
    // the wait budget must not sleep past it.
    const long remaining =
        std::chrono::duration_cast<milliseconds>(listener_rearm_at_ - now)
            .count();
    if (remaining < best) best = remaining;
  }
  for (const auto& entry : conns_) {
    const Connection* conn = entry.second.get();
    int seconds = 0;
    if (conn->waiting_apply) {
      continue;  // the server's own latency; never a client deadline
    } else if (!conn->out.empty()) {
      seconds = options_.send_timeout_seconds;
    } else if (!conn->in.empty()) {
      seconds = options_.recv_timeout_seconds;
    } else {
      seconds = options_.idle_timeout_seconds;
    }
    if (seconds <= 0) continue;
    const auto deadline = conn->last_activity + std::chrono::seconds(seconds);
    const long remaining =
        std::chrono::duration_cast<milliseconds>(deadline - now).count();
    if (remaining < best) best = remaining;
  }
  if (best < 10) best = 10;
  return static_cast<int>(best);
}

void IngestServer::CloseExpiredConns() {
  const auto now = std::chrono::steady_clock::now();
  std::vector<Connection*> expired;
  for (const auto& entry : conns_) {
    Connection* conn = entry.second.get();
    int seconds = 0;
    if (conn->waiting_apply) {
      continue;
    } else if (!conn->out.empty()) {
      // Write stall: the peer stopped reading its response.
      seconds = options_.send_timeout_seconds;
    } else if (!conn->in.empty()) {
      // Read stall mid-request — the slow-loris guard.
      seconds = options_.recv_timeout_seconds;
    } else {
      seconds = options_.idle_timeout_seconds;
    }
    if (seconds <= 0) continue;
    if (now - conn->last_activity >= std::chrono::seconds(seconds)) {
      expired.push_back(conn);
    }
  }
  for (Connection* conn : expired) {
    conns_timed_out_->Increment();
    CloseConn(conn);
  }
}

void IngestServer::CountRequest(const std::string& path, int status) {
  registry_
      .GetCounter("dtdevolve_http_requests_total", "HTTP requests served",
                  {{"path", path}, {"code", std::to_string(status)}})
      .Increment();
}

// --- Routing --------------------------------------------------------------

IngestServer::RouteResult IngestServer::Route(const HttpRequest& request,
                                              int fd, uint64_t conn_id,
                                              bool keep_alive) {
  if (request.path == "/healthz") {
    // Liveness (bare) answers 200 while the event loop turns at all;
    // readiness (?ready=1) also vouches that the server can do useful
    // work right now.
    if (request.QueryFlag("ready")) return {false, HandleReady()};
    return {false, {200, "text/plain; charset=utf-8", {}, "ok\n"}};
  }
  if (follower_ != nullptr && request.method == "POST") {
    // A replica's state is a function of the primary's WAL; local
    // writes would fork it.
    return {false,
            {403, "application/json", {},
             "{\"error\":\"read-only replica (following " +
                 JsonEscape(options_.follow_url) + ")\"}\n"}};
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") return {false, {405, "text/plain", {}, ""}};
    return {false,
            {200, "text/plain; version=0.0.4; charset=utf-8", {},
             registry_.RenderPrometheus()}};
  }
  if (request.path == "/ingest" || request.path.rfind("/ingest/", 0) == 0) {
    if (request.method != "POST") return {false, {405, "text/plain", {}, ""}};
    return HandleIngest(request, fd, conn_id, keep_alive);
  }
  if (request.path == "/tenants") {
    if (request.method != "GET") return {false, {405, "text/plain", {}, ""}};
    return {false, HandleTenants()};
  }
  if (request.path == "/dtds/induce") {
    if (request.method != "POST") return {false, {405, "text/plain", {}, ""}};
    return {false, HandleInduce(request)};
  }
  if (request.path == "/dtds/candidates" ||
      request.path.rfind("/dtds/candidates/", 0) == 0) {
    return {false, HandleCandidates(request)};
  }
  if (request.path == "/dtds" || request.path.rfind("/dtds/", 0) == 0) {
    if (request.method != "GET") return {false, {405, "text/plain", {}, ""}};
    return {false, HandleDtds(request)};
  }
  if (request.path == "/stats") {
    if (request.method != "GET") return {false, {405, "text/plain", {}, ""}};
    return {false, HandleStats(request)};
  }
  if (request.path == "/replication/checkpoint") {
    if (request.method != "GET") return {false, {405, "text/plain", {}, ""}};
    return {false, HandleReplicationCheckpoint(request)};
  }
  if (request.path == "/replication/wal") {
    if (request.method != "GET") return {false, {405, "text/plain", {}, ""}};
    return {false, HandleReplicationWal(request)};
  }
  return {false, {404, "text/plain; charset=utf-8", {}, "not found\n"}};
}

IngestServer::RouteResult IngestServer::HandleIngest(
    const HttpRequest& request, int fd, uint64_t conn_id, bool keep_alive) {
  // `/ingest/{tenant}` wins over `?tenant=`; both empty means anonymous
  // traffic, which the manager routes (single shard / "default" shard /
  // consistent hash of the root tag).
  std::string tenant;
  if (request.path.rfind("/ingest/", 0) == 0) {
    tenant = request.path.substr(std::strlen("/ingest/"));
  }
  if (tenant.empty()) tenant = request.QueryValue("tenant");

  // The size quota runs before the parse: an over-quota body must not
  // cost the event thread parser time.
  if (!manager_.AdmitDocSize(tenant, request.body.size())) {
    return {false,
            {413, "application/json", {},
             "{\"error\":\"document exceeds the per-tenant size "
             "quota\"}\n"}};
  }

  const bool wait = request.QueryFlag("wait");
  SourceManager::EnqueueResult enqueued;
  if (manager_.streaming_ingest()) {
    // Single-pass streaming parse straight into an arena tree; the
    // reader accepts/rejects exactly what the DOM parser would, with
    // identical error messages.
    StatusOr<xml::ArenaDocument> doc = xml::ParseArenaDocument(request.body);
    if (!doc.ok()) {
      return {false,
              {400, "application/json", {},
               "{\"error\":\"" + JsonEscape(doc.status().ToString()) +
                   "\"}\n"}};
    }
    enqueued = manager_.Enqueue(tenant, std::move(*doc), request.body, wait);
  } else {
    StatusOr<xml::Document> doc = xml::ParseDocument(request.body);
    if (!doc.ok()) {
      return {false,
              {400, "application/json", {},
               "{\"error\":\"" + JsonEscape(doc.status().ToString()) +
                   "\"}\n"}};
    }
    enqueued = manager_.Enqueue(tenant, std::move(*doc), request.body, wait);
  }
  switch (enqueued.code) {
    case SourceManager::EnqueueCode::kUnknownTenant:
      return {false,
              {404, "application/json", {},
               "{\"error\":\"unknown tenant '" + JsonEscape(tenant) +
                   "'\"}\n"}};
    case SourceManager::EnqueueCode::kQueueFull:
      return {false,
              {503,
               "application/json",
               {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
               "{\"error\":\"ingest queue full\"}\n"}};
    case SourceManager::EnqueueCode::kWalError:
      return {false,
              {503,
               "application/json",
               {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
               "{\"error\":\"write-ahead log append failed: " +
                   JsonEscape(enqueued.error) + "\"}\n"}};
    case SourceManager::EnqueueCode::kRateLimited:
      return {false,
              {429,
               "application/json",
               {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
               "{\"error\":\"tenant ingest rate limit exceeded\"}\n"}};
    case SourceManager::EnqueueCode::kReadOnly:
      return {false,
              {503,
               "application/json",
               {{"Retry-After", std::to_string(options_.retry_after_seconds)}},
               "{\"error\":\"shard is read-only (write-ahead log "
               "unavailable)\"}\n"}};
    case SourceManager::EnqueueCode::kOk:
      break;
  }

  if (!wait) {
    return {false,
            {202, "application/json", {},
             "{\"queued\":true,\"tenant\":\"" + JsonEscape(enqueued.tenant) +
                 "\"}\n"}};
  }

  // `?wait=1` without blocking the event thread: register a completion
  // callback under the waiter's mutex. If the worker already finished
  // (it can outrun us), answer synchronously instead.
  std::shared_ptr<SourceManager::IngestWaiter> waiter = enqueued.waiter;
  const std::string path_label = PathLabel(request.path);
  {
    std::lock_guard<std::mutex> lock(waiter->mutex);
    if (!waiter->done) {
      waiter->on_done = [this, fd, conn_id, keep_alive, waiter,
                         tenant_name = enqueued.tenant, path_label] {
        HttpResponse response =
            WaitOutcomeResponse(waiter->outcome, tenant_name);
        CountRequest(path_label, response.status);
        WaitCompletion completion;
        completion.fd = fd;
        completion.conn_id = conn_id;
        completion.keep_alive = keep_alive;
        completion.response = std::move(response);
        PushCompletion(std::move(completion));
      };
      return {true, {}};
    }
  }
  return {false, WaitOutcomeResponse(waiter->outcome, enqueued.tenant)};
}

HttpResponse IngestServer::HandleTenants() {
  std::string body = "{\"tenants\":[";
  bool first = true;
  for (const std::string& name : manager_.TenantNames()) {
    if (!first) body += ',';
    first = false;
    body += "\"" + JsonEscape(name) + "\"";
  }
  body += "]}\n";
  return {200, "application/json", {}, body};
}

HttpResponse IngestServer::HandleDtds(const HttpRequest& request) {
  const std::string tenant = request.QueryValue("tenant");
  if (request.path == "/dtds") {
    if (tenant.empty() && !manager_.single_default()) {
      // Aggregate rollup: every tenant's DTD list keyed by tenant name.
      std::string body = "{\"tenants\":{";
      bool first_tenant = true;
      for (const std::string& name : manager_.TenantNames()) {
        StatusOr<std::vector<std::string>> names = manager_.DtdNamesFor(name);
        if (!names.ok()) continue;
        if (!first_tenant) body += ',';
        first_tenant = false;
        body += "\"" + JsonEscape(name) + "\":[";
        bool first = true;
        for (const std::string& dtd : *names) {
          if (!first) body += ',';
          first = false;
          body += "\"" + JsonEscape(dtd) + "\"";
        }
        body += "]";
      }
      body += "}}\n";
      return {200, "application/json", {}, body};
    }
    StatusOr<std::vector<std::string>> names = manager_.DtdNamesFor(tenant);
    if (!names.ok()) {
      return {404, "application/json", {},
              "{\"error\":\"" + JsonEscape(names.status().message()) +
                  "\"}\n"};
    }
    std::string body = "{\"dtds\":[";
    bool first = true;
    for (const std::string& name : *names) {
      if (!first) body += ',';
      first = false;
      body += "\"" + JsonEscape(name) + "\"";
    }
    body += "]}\n";
    return {200, "application/json", {}, body};
  }

  const std::string name = request.path.substr(std::strlen("/dtds/"));
  StatusOr<std::string> text = manager_.DtdTextFor(tenant, name);
  if (!text.ok()) {
    const int status =
        text.status().code() == Status::Code::kInvalidArgument ? 400 : 404;
    return {status, "application/json", {},
            "{\"error\":\"" + JsonEscape(text.status().message()) + "\"}\n"};
  }
  return {200, "application/xml-dtd; charset=utf-8", {}, std::move(*text)};
}

HttpResponse IngestServer::HandleInduce(const HttpRequest& request) {
  const std::string tenant = request.QueryValue("tenant");
  StatusOr<size_t> pending = manager_.InduceTenant(tenant);
  if (!pending.ok()) return JsonError(pending.status());
  return {200, "application/json", {},
          "{\"candidates\":" + std::to_string(*pending) + "}\n"};
}

HttpResponse IngestServer::HandleCandidates(const HttpRequest& request) {
  const std::string tenant = request.QueryValue("tenant");

  if (request.path == "/dtds/candidates") {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    StatusOr<std::vector<SourceManager::CandidateInfo>> candidates =
        manager_.CandidatesFor(tenant);
    if (!candidates.ok()) return JsonError(candidates.status());
    std::string body = "{\"candidates\":[";
    bool first = true;
    for (const SourceManager::CandidateInfo& info : *candidates) {
      if (!first) body += ',';
      first = false;
      body += "{\"id\":" + std::to_string(info.id);
      body += ",\"name\":\"" + JsonEscape(info.name) + "\"";
      body += ",\"members\":" + std::to_string(info.members);
      body += ",\"validated\":" + std::to_string(info.validated);
      body += ",\"coverage\":" + FormatDouble(info.coverage);
      body += ",\"margin\":" + FormatDouble(info.margin);
      body += ",\"dtd\":\"" + JsonEscape(info.dtd_text) + "\"}";
    }
    body += "]}\n";
    return {200, "application/json", {}, body};
  }

  // /dtds/candidates/{id}/accept | /dtds/candidates/{id}/reject
  if (request.method != "POST") return {405, "text/plain", {}, ""};
  std::string rest = request.path.substr(std::strlen("/dtds/candidates/"));
  const size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    return {404, "text/plain; charset=utf-8", {}, "not found\n"};
  }
  const std::string id_text = rest.substr(0, slash);
  const std::string verb = rest.substr(slash + 1);
  char* end = nullptr;
  const uint64_t id = std::strtoull(id_text.c_str(), &end, 10);
  if (id_text.empty() || end == nullptr || *end != '\0') {
    return {400, "application/json", {},
            "{\"error\":\"candidate id must be a number\"}\n"};
  }

  if (verb == "accept") {
    StatusOr<core::XmlSource::AcceptOutcome> outcome =
        manager_.AcceptCandidate(tenant, id);
    if (!outcome.ok()) return JsonError(outcome.status());
    std::string body = "{\"accepted\":true";
    body += ",\"dtd\":\"" + JsonEscape(outcome->dtd_name) + "\"";
    body += ",\"members\":" + std::to_string(outcome->members);
    body += ",\"validated\":" + std::to_string(outcome->validated);
    body += ",\"reclassified\":" + std::to_string(outcome->reclassified);
    body += "}\n";
    return {200, "application/json", {}, body};
  }
  if (verb == "reject") {
    Status rejected = manager_.RejectCandidate(tenant, id);
    if (!rejected.ok()) return JsonError(rejected);
    return {200, "application/json", {},
            "{\"rejected\":true,\"id\":" + std::to_string(id) + "}\n"};
  }
  return {404, "text/plain; charset=utf-8", {}, "not found\n"};
}

HttpResponse IngestServer::HandleStats(const HttpRequest& request) {
  const std::string tenant = request.QueryValue("tenant");
  if (!tenant.empty() || manager_.single_default()) {
    StatusOr<SourceManager::TenantStats> stats = manager_.StatsFor(tenant);
    if (!stats.ok()) {
      return {404, "application/json", {},
              "{\"error\":\"" + JsonEscape(stats.status().message()) +
                  "\"}\n"};
    }
    // Single-"default" mode serves the exact historical shape (no
    // tenant key); an explicit ?tenant= adds the tenant name.
    return {200, "application/json", {},
            StatsJson(*stats, /*include_tenant=*/!tenant.empty()) + "\n"};
  }

  // Multi-tenant aggregate: process-wide totals plus a per-tenant
  // rollup.
  std::vector<SourceManager::TenantStats> all = manager_.AllStats();
  uint64_t processed = 0;
  uint64_t classified = 0;
  size_t repository = 0;
  uint64_t evolutions = 0;
  for (const SourceManager::TenantStats& stats : all) {
    processed += stats.documents_processed;
    classified += stats.documents_classified;
    repository += stats.repository_size;
    evolutions += stats.evolutions_performed;
  }
  std::string body = "{";
  body += "\"documents_processed\":" + std::to_string(processed);
  body += ",\"documents_classified\":" + std::to_string(classified);
  body += ",\"repository_size\":" + std::to_string(repository);
  body += ",\"evolutions_performed\":" + std::to_string(evolutions);
  body += ",\"tenants\":{";
  bool first = true;
  for (const SourceManager::TenantStats& stats : all) {
    if (!first) body += ',';
    first = false;
    body += "\"" + JsonEscape(stats.tenant) +
            "\":" + StatsJson(stats, /*include_tenant=*/false);
  }
  body += "}}\n";
  return {200, "application/json", {}, body};
}

HttpResponse IngestServer::HandleReady() {
  // Runs on the event thread, so conns_ is safe to read without a lock.
  const bool saturated = options_.max_connections > 0 &&
                         conns_.size() >= options_.max_connections;
  bool shards_ok = true;
  std::string shards = "{";
  bool first = true;
  for (const SourceManager::ShardHealthInfo& info : manager_.HealthReport()) {
    if (info.health != ShardHealth::kOk) shards_ok = false;
    if (!first) shards += ',';
    first = false;
    shards += "\"" + JsonEscape(info.tenant) + "\":\"" +
              ShardHealthName(info.health) + "\"";
  }
  shards += "}";
  const bool ready = shards_ok && !saturated;
  std::string body = "{\"ready\":";
  body += ready ? "true" : "false";
  body += ",\"connections\":{\"open\":" + std::to_string(conns_.size());
  body += ",\"limit\":" + std::to_string(options_.max_connections);
  body += ",\"saturated\":";
  body += saturated ? "true" : "false";
  body += "},\"shards\":" + shards + "}\n";
  return {ready ? 200 : 503, "application/json", {}, std::move(body)};
}

// --- Replication endpoints ------------------------------------------------

namespace {

/// `?tenant=` resolution for the replication endpoints: explicit name,
/// or the single shard when there is exactly one.
StatusOr<std::string> ReplicationTenant(const SourceManager& manager,
                                        const HttpRequest& request) {
  std::string tenant = request.QueryValue("tenant");
  if (tenant.empty()) {
    std::vector<std::string> names = manager.TenantNames();
    if (names.size() != 1) {
      return Status::InvalidArgument("tenant required (multi-tenant server)");
    }
    tenant = names[0];
  }
  return tenant;
}

}  // namespace

HttpResponse IngestServer::HandleReplicationCheckpoint(
    const HttpRequest& request) {
  StatusOr<std::string> tenant = ReplicationTenant(manager_, request);
  if (!tenant.ok()) return JsonError(tenant.status());
  StatusOr<std::string> blob = manager_.ExportCheckpointFor(*tenant);
  if (!blob.ok()) return JsonError(blob.status());
  return {200, "application/octet-stream", {}, std::move(*blob)};
}

HttpResponse IngestServer::HandleReplicationWal(const HttpRequest& request) {
  StatusOr<std::string> tenant = ReplicationTenant(manager_, request);
  if (!tenant.ok()) return JsonError(tenant.status());

  const std::string from_text = request.QueryValue("from_lsn");
  const uint64_t from_lsn =
      from_text.empty() ? 1 : std::strtoull(from_text.c_str(), nullptr, 10);
  const std::string max_text = request.QueryValue("max_bytes");
  uint64_t max_bytes =
      max_text.empty() ? (1 << 20)
                       : std::strtoull(max_text.c_str(), nullptr, 10);
  if (max_bytes == 0 || max_bytes > (4u << 20)) max_bytes = 4u << 20;

  uint64_t wal_next_lsn = 0;
  StatusOr<store::WalExport> page =
      manager_.ExportWalFor(*tenant, from_lsn, max_bytes, &wal_next_lsn);
  if (!page.ok()) return JsonError(page.status());

  // Gap detection: records below `from_lsn` may have been checkpoint-
  // truncated. Either the log's oldest surviving LSN is already above
  // the request, or the log is empty while the live head says records
  // existed — both mean this follower can only restart from the
  // checkpoint.
  const bool truncated_gap =
      (page->oldest_lsn != 0 && page->oldest_lsn > from_lsn) ||
      (page->oldest_lsn == 0 && wal_next_lsn > 0 && from_lsn < wal_next_lsn);
  if (truncated_gap) {
    return {410, "application/json", {},
            "{\"error\":\"LSN " + std::to_string(from_lsn) +
                " was checkpoint-truncated; re-bootstrap from "
                "/replication/checkpoint\"}\n"};
  }

  return {200,
          "application/octet-stream",
          {{"X-Dtdevolve-Next-Lsn", std::to_string(wal_next_lsn)},
           {"X-Dtdevolve-Page-Next-Lsn", std::to_string(page->next_lsn)}},
          std::move(page->bytes)};
}

}  // namespace dtdevolve::server
