#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "dtd/dtd_writer.h"
#include "evolve/persist.h"
#include "io/file.h"
#include "xml/parser.h"

namespace dtdevolve::server {

namespace {

/// Minimal JSON string escaping (DTD names and error messages).
std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n";  break;
      case '\r': out += "\\r";  break;
      case '\t': out += "\\t";  break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  return buffer;
}

/// Snapshot file names come from user-supplied DTD names; anything that
/// could traverse directories is flattened.
std::string SanitizeFileComponent(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool safe = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_' ||
                      c == '.';
    out += safe ? c : '_';
  }
  return out.empty() ? "_" : out;
}

void SetSocketTimeouts(int fd, int recv_seconds, int send_seconds) {
  struct timeval tv;
  tv.tv_usec = 0;
  if (recv_seconds > 0) {
    tv.tv_sec = recv_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  if (send_seconds > 0) {
    tv.tv_sec = send_seconds;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  }
}

}  // namespace

IngestServer::IngestServer(core::SourceOptions source_options,
                           ServerOptions options)
    : source_(std::move(source_options)), options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = util::ThreadPool::DefaultJobs();
  if (options_.batch_max == 0) options_.batch_max = 1;
}

IngestServer::~IngestServer() {
  Shutdown();
  Wait();
}

Status IngestServer::AddDtdText(const std::string& name,
                                std::string_view dtd_text) {
  return source_.AddDtdText(name, dtd_text);
}

std::string IngestServer::SnapshotPath(const std::string& name) const {
  return options_.snapshot_dir + "/" + SanitizeFileComponent(name) +
         ".dtdstate";
}

Status IngestServer::RestoreSnapshots() {
  if (options_.snapshot_dir.empty()) return Status::Ok();
  for (const std::string& name : source_.DtdNames()) {
    const std::string path = SnapshotPath(name);
    StatusOr<evolve::ExtendedDtd> restored =
        evolve::LoadExtendedDtdFile(path);
    if (!restored.ok()) {
      // A missing snapshot is the normal first boot.
      if (restored.status().code() == Status::Code::kNotFound) continue;
      // A truncated or corrupt snapshot must not take the whole server
      // down — one bad file would turn a partial failure into a total
      // one. Quarantine it aside (preserving the evidence), count it,
      // warn, and continue from the seed DTD.
      Status moved = io::Rename(path, path + ".corrupt");
      std::string warning = "quarantined corrupt snapshot " + path + " (" +
                            restored.status().message() + ")";
      if (!moved.ok()) warning += "; quarantine rename failed";
      boot_warnings_.push_back(std::move(warning));
      if (snapshots_quarantined_ != nullptr) {
        snapshots_quarantined_->Increment();
      }
      continue;
    }
    DTDEVOLVE_RETURN_IF_ERROR(
        source_.RestoreExtended(name, std::move(*restored)));
  }
  return Status::Ok();
}

Status IngestServer::SnapshotNow() {
  if (options_.snapshot_dir.empty()) return Status::Ok();
  std::lock_guard<std::mutex> lock(state_mutex_);
  for (const std::string& name : source_.DtdNames()) {
    DTDEVOLVE_RETURN_IF_ERROR(evolve::SaveExtendedDtdFile(
        *source_.FindExtended(name), SnapshotPath(name)));
  }
  return Status::Ok();
}

Status IngestServer::CheckpointNow() {
  if (wal_ == nullptr) return Status::Ok();
  // Capture under the state mutex (a consistent cut at applied_lsn_),
  // but do the disk writes outside it so ingest is not stalled for the
  // duration of the snapshot I/O.
  store::CheckpointData data;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    data = store::CaptureCheckpoint(source_, applied_lsn_);
  }
  Status written = store::WriteCheckpoint(options_.wal_dir, data);
  if (written.ok()) written = wal_->TruncateThrough(data.lsn);
  if (!written.ok()) {
    if (checkpoint_errors_ != nullptr) checkpoint_errors_->Increment();
    return written;
  }
  if (checkpoints_ != nullptr) checkpoints_->Increment();
  if (checkpoint_lsn_gauge_ != nullptr) {
    checkpoint_lsn_gauge_->Set(static_cast<double>(data.lsn));
  }
  return Status::Ok();
}

void IngestServer::CheckpointLoop() {
  std::unique_lock<std::mutex> lock(checkpoint_mutex_);
  for (;;) {
    checkpoint_cv_.wait_for(lock, options_.checkpoint_interval,
                            [this] { return checkpoint_stop_; });
    if (checkpoint_stop_) return;
    lock.unlock();
    uint64_t target = 0;
    {
      std::lock_guard<std::mutex> state(state_mutex_);
      target = applied_lsn_;
    }
    // Checkpoints are only worth their I/O when the state moved; a
    // failed attempt is counted and retried next round.
    if (target > last_checkpoint_lsn_ && CheckpointNow().ok()) {
      last_checkpoint_lsn_ = target;
    }
    lock.lock();
  }
}

Status IngestServer::Start() {
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }

  // Loop + hot-path instrumentation, all under the one registry that
  // GET /metrics renders. Wired before recovery so boot-time events
  // (quarantines, replays) land on registered series.
  core::SourceMetrics metrics;
  metrics.documents_processed = &registry_.GetCounter(
      "dtdevolve_documents_processed_total", "Documents fed into the loop");
  metrics.documents_classified = &registry_.GetCounter(
      "dtdevolve_documents_classified_total",
      "Documents classified into some DTD");
  metrics.documents_unclassified = &registry_.GetCounter(
      "dtdevolve_documents_unclassified_total",
      "Documents left to the repository");
  metrics.documents_reclassified = &registry_.GetCounter(
      "dtdevolve_documents_reclassified_total",
      "Repository documents recovered after evolutions");
  metrics.trigger_checks = &registry_.GetCounter(
      "dtdevolve_trigger_checks_total",
      "Evolution trigger (tau or rule) evaluations");
  metrics.evolutions = &registry_.GetCounter(
      "dtdevolve_evolutions_total", "DTD evolutions fired");
  metrics.documents_scored = &registry_.GetCounter(
      "dtdevolve_documents_scored_total",
      "Documents scored against the DTD set");
  metrics.similarity_evaluations = &registry_.GetCounter(
      "dtdevolve_similarity_evaluations_total",
      "Document x DTD similarity evaluations");
  metrics.evaluations_pruned = &registry_.GetCounter(
      "dtdevolve_classify_pruned_total",
      "Document x DTD evaluations skipped by the score upper bound");
  metrics.score_cache_hits = &registry_.GetCounter(
      "dtdevolve_score_cache_hits_total",
      "Shared subtree score cache hits");
  metrics.score_cache_misses = &registry_.GetCounter(
      "dtdevolve_score_cache_misses_total",
      "Shared subtree score cache misses");
  metrics.score_cache_evictions = &registry_.GetCounter(
      "dtdevolve_score_cache_evictions_total",
      "Shared subtree score cache LRU evictions");
  metrics.score_seconds = &registry_.GetHistogram(
      "dtdevolve_score_seconds",
      "Wall-clock seconds scoring one document against the full DTD set",
      obs::Histogram::DefaultLatencyBounds());
  metrics.documents_recorded = &registry_.GetCounter(
      "dtdevolve_documents_recorded_total",
      "Documents recorded into extended DTDs");
  metrics.elements_recorded = &registry_.GetCounter(
      "dtdevolve_elements_recorded_total",
      "Element instances recorded into extended DTDs");
  source_.set_metrics(metrics);

  requests_rejected_ = &registry_.GetCounter(
      "dtdevolve_ingest_rejected_total",
      "Ingest requests rejected with 503 (queue full)");
  queue_depth_ = &registry_.GetGauge("dtdevolve_ingest_queue_depth",
                                     "Documents waiting in the ingest queue");
  ingest_seconds_ = &registry_.GetHistogram(
      "dtdevolve_ingest_seconds",
      "Seconds from enqueue to applied, per document",
      obs::Histogram::DefaultLatencyBounds());
  batch_seconds_ = &registry_.GetHistogram(
      "dtdevolve_ingest_batch_seconds",
      "Seconds spent in one ProcessBatch round",
      obs::Histogram::DefaultLatencyBounds());
  registry_.GetGauge("dtdevolve_ingest_queue_capacity",
                     "Configured ingest queue bound")
      .Set(static_cast<double>(options_.queue_capacity));
  degraded_ = &registry_.GetGauge(
      "dtdevolve_degraded",
      "1 while ingest is rejected because the write-ahead log cannot be "
      "written (e.g. disk full), 0 otherwise");
  checkpoints_ = &registry_.GetCounter("dtdevolve_checkpoints_total",
                                       "Checkpoints written successfully");
  checkpoint_errors_ = &registry_.GetCounter(
      "dtdevolve_checkpoint_errors_total", "Checkpoint attempts that failed");
  checkpoint_lsn_gauge_ = &registry_.GetGauge(
      "dtdevolve_checkpoint_lsn", "LSN of the last durable checkpoint");
  snapshots_quarantined_ = &registry_.GetCounter(
      "dtdevolve_snapshots_quarantined_total",
      "Corrupt snapshots renamed aside at boot");

  if (!options_.snapshot_dir.empty()) {
    // Snapshots are written lazily (shutdown / SnapshotNow); create the
    // directory up front so a missing one fails the boot loudly instead
    // of the final snapshot silently.
    DTDEVOLVE_RETURN_IF_ERROR(io::CreateDir(options_.snapshot_dir));
  }

  if (!options_.wal_dir.empty()) {
    store::WalOptions wal_options;
    wal_options.dir = options_.wal_dir;
    wal_options.fsync_policy = options_.fsync_policy;
    wal_options.fsync_interval = options_.fsync_interval;
    wal_options.segment_bytes = options_.wal_segment_bytes;
    recovery_report_ = {};
    StatusOr<std::unique_ptr<store::Wal>> wal =
        store::RecoverSource(source_, wal_options, &recovery_report_);
    if (!wal.ok()) return wal.status();
    wal_ = std::move(*wal);
    store::WalMetrics wal_metrics;
    wal_metrics.appends = &registry_.GetCounter(
        "dtdevolve_wal_appends_total", "WAL records appended");
    wal_metrics.append_bytes = &registry_.GetCounter(
        "dtdevolve_wal_append_bytes_total", "WAL bytes appended");
    wal_metrics.append_errors = &registry_.GetCounter(
        "dtdevolve_wal_append_errors_total", "WAL appends that failed");
    wal_metrics.fsyncs = &registry_.GetCounter("dtdevolve_wal_fsyncs_total",
                                               "WAL fsync calls");
    wal_metrics.rotations = &registry_.GetCounter(
        "dtdevolve_wal_rotations_total", "WAL segment rotations");
    wal_metrics.truncated_segments = &registry_.GetCounter(
        "dtdevolve_wal_truncated_segments_total",
        "WAL segments dropped by checkpoint truncation");
    wal_->set_metrics(wal_metrics);
    registry_
        .GetCounter("dtdevolve_wal_replayed_records_total",
                    "WAL records replayed during boot recovery")
        .Increment(recovery_report_.replayed_records);
    applied_lsn_ = recovery_report_.last_applied_lsn;
    last_checkpoint_lsn_ = recovery_report_.checkpoint_lsn;
    checkpoint_lsn_gauge_->Set(
        static_cast<double>(recovery_report_.checkpoint_lsn));
    if (!recovery_report_.warning.empty()) {
      boot_warnings_.push_back(recovery_report_.warning);
    }
  } else {
    DTDEVOLVE_RETURN_IF_ERROR(RestoreSnapshots());
  }

  if (::pipe(wake_pipe_) != 0) {
    return Status::Internal(std::string("pipe failed: ") +
                            std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket failed: ") +
                            std::strerror(errno));
  }
  int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Status::Internal(std::string("bind failed: ") +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    return Status::Internal(std::string("listen failed: ") +
                            std::strerror(errno));
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                &addr_len);
  port_ = ntohs(addr.sin_port);

  pool_.emplace(options_.jobs);
  started_ = true;
  checkpoint_stop_ = false;
  worker_thread_ = std::thread([this] { IngestWorker(); });
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (wal_ != nullptr && options_.checkpoint_interval.count() > 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  return Status::Ok();
}

void IngestServer::Shutdown() {
  if (shutdown_requested_.exchange(true)) return;
  if (wake_pipe_[1] >= 0) {
    const char byte = 'q';
    // write() is async-signal-safe; this is the whole signal path.
    [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
}

void IngestServer::Wait() {
  if (!started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();

  // Graceful order: (1) no new connections (listener is down), (2) the
  // worker keeps running un-paused so in-flight wait=1 requests finish,
  // (3) once connections are gone, drain the queue, (4) snapshot.
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    conn_done_cv_.wait(lock, [this] { return active_connections_ == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    draining_ = true;
  }
  queue_cv_.notify_all();
  if (worker_thread_.joinable()) worker_thread_.join();

  {
    std::lock_guard<std::mutex> lock(checkpoint_mutex_);
    checkpoint_stop_ = true;
  }
  checkpoint_cv_.notify_all();
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();

  if (wal_ != nullptr) {
    if (options_.checkpoint_on_shutdown) {
      CheckpointNow();
    } else {
      // Crash-simulation mode: leave only the log behind, but make sure
      // everything acked under a lazy fsync policy reaches the disk.
      wal_->Sync();
    }
  }
  SnapshotNow();

  if (pool_) pool_->Shutdown();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (int& fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  listen_fd_ = -1;
  started_ = false;
}

void IngestServer::PauseIngest() {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  paused_ = true;
}

void IngestServer::ResumeIngest() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    paused_ = false;
  }
  queue_cv_.notify_all();
}

void IngestServer::AcceptLoop() {
  for (;;) {
    struct pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_pipe_[0], POLLIN, 0};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // shutdown requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    SetSocketTimeouts(fd, options_.recv_timeout_seconds,
                      options_.send_timeout_seconds);
    {
      std::lock_guard<std::mutex> lock(conn_mutex_);
      ++active_connections_;
    }
    // Detached: Wait() blocks on active_connections_ reaching zero, and
    // the decrement is the thread's final touch of server state.
    std::thread([this, fd] { HandleConnection(fd); }).detach();
  }
}

void IngestServer::HandleConnection(int fd) {
  StatusOr<HttpRequest> request = ReadHttpRequest(fd, options_.max_body_bytes);
  if (request.ok()) {
    HttpResponse response = Route(*request);
    // Label cardinality stays bounded: arbitrary 404 targets all fold
    // into "other".
    std::string path_label = "other";
    for (const char* known :
         {"/ingest", "/dtds", "/stats", "/metrics", "/healthz"}) {
      if (request->path == known) path_label = known;
    }
    if (request->path.rfind("/dtds/", 0) == 0) path_label = "/dtds/{name}";
    registry_
        .GetCounter("dtdevolve_http_requests_total", "HTTP requests served",
                    {{"path", path_label},
                     {"code", std::to_string(response.status)}})
        .Increment();
    WriteHttpResponse(fd, response);
  } else {
    HttpResponse response;
    response.status = 400;
    response.body = request.status().ToString() + "\n";
    WriteHttpResponse(fd, response);
  }
  ::close(fd);
  {
    // Notify under the lock: these threads are detached, so a notify
    // after unlocking would race with `Wait` returning and the server
    // (and this condition variable) being destroyed.
    std::lock_guard<std::mutex> lock(conn_mutex_);
    --active_connections_;
    conn_done_cv_.notify_all();
  }
}

HttpResponse IngestServer::Route(const HttpRequest& request) {
  if (request.path == "/healthz") {
    return {200, "text/plain; charset=utf-8", {}, "ok\n"};
  }
  if (request.path == "/metrics") {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    return {200, "text/plain; version=0.0.4; charset=utf-8", {},
            registry_.RenderPrometheus()};
  }
  if (request.path == "/ingest") {
    if (request.method != "POST") return {405, "text/plain", {}, ""};
    return HandleIngest(request);
  }
  if (request.path == "/dtds" || request.path.rfind("/dtds/", 0) == 0) {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    return HandleDtds(request);
  }
  if (request.path == "/stats") {
    if (request.method != "GET") return {405, "text/plain", {}, ""};
    return HandleStats();
  }
  return {404, "text/plain; charset=utf-8", {}, "not found\n"};
}

HttpResponse IngestServer::HandleIngest(const HttpRequest& request) {
  StatusOr<xml::Document> doc = xml::ParseDocument(request.body);
  if (!doc.ok()) {
    return {400, "application/json", {},
            "{\"error\":\"" + JsonEscape(doc.status().ToString()) + "\"}\n"};
  }

  PendingDoc pending;
  pending.doc = std::move(*doc);
  pending.enqueued = std::chrono::steady_clock::now();
  const bool wait = request.QueryFlag("wait");
  if (wait) pending.waiter = std::make_shared<IngestWaiter>();
  std::shared_ptr<IngestWaiter> waiter = pending.waiter;

  {
    // Spans capacity check → WAL append → enqueue: concurrent ingests
    // serialize here, so the queue (and therefore the apply order) is
    // exactly LSN order — the invariant WAL replay depends on.
    std::lock_guard<std::mutex> order(ingest_order_mutex_);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= options_.queue_capacity) {
        requests_rejected_->Increment();
        return {503,
                "application/json",
                {{"Retry-After",
                  std::to_string(options_.retry_after_seconds)}},
                "{\"error\":\"ingest queue full\"}\n"};
      }
    }
    if (wal_ != nullptr) {
      // The ack contract: the record is in the log (fsynced under the
      // `always` policy) before any 2xx leaves this function. When the
      // disk says no, the document is NOT acked — 503 so the client
      // retries once space returns, and the degraded gauge flags the
      // condition until an append succeeds again.
      StatusOr<uint64_t> lsn = wal_->Append(request.body);
      if (!lsn.ok()) {
        degraded_->Set(1);
        requests_rejected_->Increment();
        return {503,
                "application/json",
                {{"Retry-After",
                  std::to_string(options_.retry_after_seconds)}},
                "{\"error\":\"write-ahead log append failed: " +
                    JsonEscape(lsn.status().message()) + "\"}\n"};
      }
      degraded_->Set(0);
      pending.lsn = *lsn;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      queue_.push_back(std::move(pending));
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
  }
  queue_cv_.notify_all();

  if (!wait) {
    return {202, "application/json", {}, "{\"queued\":true}\n"};
  }
  std::unique_lock<std::mutex> lock(waiter->mutex);
  waiter->cv.wait(lock, [&] { return waiter->done; });
  const core::XmlSource::ProcessOutcome& outcome = waiter->outcome;
  std::string body = "{\"classified\":";
  body += outcome.classified ? "true" : "false";
  body += ",\"dtd\":\"" + JsonEscape(outcome.dtd_name) + "\"";
  body += ",\"similarity\":" + FormatDouble(outcome.similarity);
  body += ",\"evolved\":";
  body += outcome.evolved ? "true" : "false";
  body += ",\"reclassified\":" + std::to_string(outcome.reclassified);
  body += "}\n";
  return {200, "application/json", {}, body};
}

HttpResponse IngestServer::HandleDtds(const HttpRequest& request) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  if (request.path == "/dtds") {
    std::string body = "{\"dtds\":[";
    bool first = true;
    for (const std::string& name : source_.DtdNames()) {
      if (!first) body += ',';
      first = false;
      body += "\"" + JsonEscape(name) + "\"";
    }
    body += "]}\n";
    return {200, "application/json", {}, body};
  }
  const std::string name = request.path.substr(std::strlen("/dtds/"));
  const dtd::Dtd* dtd = source_.FindDtd(name);
  if (dtd == nullptr) {
    return {404, "application/json", {},
            "{\"error\":\"unknown DTD '" + JsonEscape(name) + "'\"}\n"};
  }
  return {200, "application/xml-dtd; charset=utf-8", {}, dtd::WriteDtd(*dtd)};
}

HttpResponse IngestServer::HandleStats() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  std::string body = "{";
  body += "\"documents_processed\":" +
          std::to_string(source_.documents_processed());
  body += ",\"documents_classified\":" +
          std::to_string(source_.documents_classified());
  body += ",\"repository_size\":" + std::to_string(source_.repository().size());
  body += ",\"evolutions_performed\":" +
          std::to_string(source_.evolutions_performed());
  body += ",\"dtds\":{";
  bool first = true;
  for (const std::string& name : source_.DtdNames()) {
    const evolve::ExtendedDtd* ext = source_.FindExtended(name);
    if (!first) body += ',';
    first = false;
    body += "\"" + JsonEscape(name) + "\":{";
    body += "\"documents_recorded\":" +
            std::to_string(ext->documents_recorded());
    body += ",\"mean_divergence\":" + FormatDouble(ext->MeanDivergence());
    auto ingested = ingested_per_dtd_.find(name);
    body += ",\"documents_ingested\":" +
            std::to_string(ingested == ingested_per_dtd_.end()
                               ? 0
                               : ingested->second);
    auto evolved = evolutions_per_dtd_.find(name);
    body += ",\"evolutions\":" +
            std::to_string(evolved == evolutions_per_dtd_.end()
                               ? 0
                               : evolved->second);
    body += "}";
  }
  body += "}}\n";
  return {200, "application/json", {}, body};
}

void IngestServer::IngestWorker() {
  for (;;) {
    std::vector<PendingDoc> pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return draining_ || (!paused_ && !queue_.empty());
      });
      if (queue_.empty() && draining_) return;
      const size_t take = std::min(queue_.size(), options_.batch_max);
      pending.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        pending.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_->Set(static_cast<double>(queue_.size()));
    }
    if (!pending.empty()) ProcessPending(std::move(pending));
  }
}

void IngestServer::ProcessPending(std::vector<PendingDoc> pending) {
  std::vector<xml::Document> docs;
  docs.reserve(pending.size());
  for (PendingDoc& item : pending) docs.push_back(std::move(item.doc));

  const auto batch_start = std::chrono::steady_clock::now();
  std::vector<core::XmlSource::ProcessOutcome> outcomes;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    outcomes = source_.ProcessBatch(std::move(docs), pool_ ? &*pool_ : nullptr);
    for (const core::XmlSource::ProcessOutcome& outcome : outcomes) {
      if (outcome.classified) ++ingested_per_dtd_[outcome.dtd_name];
      if (outcome.evolved) ++evolutions_per_dtd_[outcome.dtd_name];
    }
    for (const PendingDoc& item : pending) {
      if (item.lsn > applied_lsn_) applied_lsn_ = item.lsn;
    }
  }
  const auto now = std::chrono::steady_clock::now();
  batch_seconds_->Observe(
      std::chrono::duration<double>(now - batch_start).count());

  for (size_t i = 0; i < pending.size(); ++i) {
    ingest_seconds_->Observe(
        std::chrono::duration<double>(now - pending[i].enqueued).count());
    if (pending[i].waiter != nullptr) {
      std::lock_guard<std::mutex> lock(pending[i].waiter->mutex);
      pending[i].waiter->outcome = outcomes[i];
      pending[i].waiter->done = true;
      pending[i].waiter->cv.notify_all();
    }
  }
}

}  // namespace dtdevolve::server
