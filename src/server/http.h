#ifndef DTDEVOLVE_SERVER_HTTP_H_
#define DTDEVOLVE_SERVER_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dtdevolve::server {

/// Minimal HTTP/1.1 framing — request line, headers, Content-Length
/// bodies, persistent connections. No chunked encoding, no TLS. The
/// parser is incremental (a pure function of a byte buffer) so the
/// epoll event loop can cut pipelined requests out of one connection
/// buffer without ever blocking in recv().

struct HttpRequest {
  std::string method;   // e.g. "POST", upper-case as sent
  std::string target;   // raw request target, e.g. "/ingest?wait=1"
  std::string path;     // target up to the '?'
  std::string query;    // after the '?', possibly empty
  /// Header names are lower-cased; values are trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
  /// True when the query string contains `key` as `key`, `key=1` or
  /// `key=true`.
  bool QueryFlag(std::string_view key) const;
  /// Value of the first `key=value` pair in the query string, or empty
  /// when absent or valueless. No percent-decoding (tenant names and the
  /// other consumers are plain identifiers).
  std::string QueryValue(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  /// Extra headers beyond Content-Type/Content-Length/Connection.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

enum class HttpParseResult {
  kNeedMore,  // the buffer holds only a prefix of a request
  kDone,      // one complete request parsed; `consumed` bytes used
  kError,     // irrecoverable framing error; answer and close
};

struct HttpParse {
  HttpParseResult result = HttpParseResult::kNeedMore;
  /// Bytes of the buffer belonging to the parsed request (kDone only);
  /// anything after them is the next pipelined request.
  size_t consumed = 0;
  /// Whether the connection may serve another request afterwards:
  /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close, and an explicit
  /// `Connection: close` / `Connection: keep-alive` overrides either.
  bool keep_alive = true;
  int error_status = 400;  // kError only: 400, 413 or 431
  std::string error;       // kError only
};

/// Parses at most one request from the front of `buffer`. Never blocks
/// and never consumes bytes on kNeedMore/kError, so the caller can
/// accumulate more input and retry, or report `error_status` and close.
HttpParse ParseHttpRequest(std::string_view buffer, size_t max_body,
                           HttpRequest* out);

/// Serializes a response. `keep_alive` picks the Connection header; the
/// body is always Content-Length framed so pipelined responses
/// concatenate unambiguously.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

/// One response as a client (the replication follower, benchmarks) sees
/// it: status code, lower-cased headers, Content-Length body.
struct HttpClientResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
};

/// Reads exactly one Content-Length framed response from `fd`
/// (blocking), leaving the connection reusable for the next request.
StatusOr<HttpClientResponse> ReadHttpResponse(int fd);

/// The canonical reason phrase ("OK", "Not Found", …; "Unknown" when
/// unmapped).
const char* HttpReason(int status);

}  // namespace dtdevolve::server

#endif  // DTDEVOLVE_SERVER_HTTP_H_
