#ifndef DTDEVOLVE_SERVER_HTTP_H_
#define DTDEVOLVE_SERVER_HTTP_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace dtdevolve::server {

/// Minimal HTTP/1.1 framing over a connected POSIX socket — just enough
/// for the ingest server and its scrapers (curl, Prometheus): request
/// line, headers, Content-Length bodies. No chunked encoding, no
/// keep-alive (every response carries `Connection: close`), no TLS.

struct HttpRequest {
  std::string method;   // e.g. "POST", upper-case as sent
  std::string target;   // raw request target, e.g. "/ingest?wait=1"
  std::string path;     // target up to the '?'
  std::string query;    // after the '?', possibly empty
  /// Header names are lower-cased; values are trimmed.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* FindHeader(std::string_view name) const;
  /// True when the query string contains `key` as `key`, `key=1` or
  /// `key=true`.
  bool QueryFlag(std::string_view key) const;
  /// Value of the first `key=value` pair in the query string, or empty
  /// when absent or valueless. No percent-decoding (tenant names and the
  /// other consumers are plain identifiers).
  std::string QueryValue(std::string_view key) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  /// Extra headers beyond Content-Type/Content-Length/Connection.
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
};

/// Reads one request from `fd` (blocking; honors the socket's receive
/// timeout). Fails with `kInvalidArgument` on malformed framing, a body
/// beyond `max_body` bytes, or headers beyond an internal cap.
StatusOr<HttpRequest> ReadHttpRequest(int fd, size_t max_body);

/// Serializes and writes `response`, handling partial writes.
Status WriteHttpResponse(int fd, const HttpResponse& response);

/// The canonical reason phrase ("OK", "Not Found", …; "Unknown" when
/// unmapped).
const char* HttpReason(int status);

}  // namespace dtdevolve::server

#endif  // DTDEVOLVE_SERVER_HTTP_H_
