#ifndef DTDEVOLVE_SERVER_SOURCE_MANAGER_H_
#define DTDEVOLVE_SERVER_SOURCE_MANAGER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/source.h"
#include "obs/metrics.h"
#include "similarity/score_cache.h"
#include "store/checkpoint.h"
#include "store/wal.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "xml/document.h"

namespace dtdevolve::server {

/// Turns an arbitrary name (DTD or tenant, user-supplied) into a safe
/// single path component. Unsafe characters are flattened to '_', and —
/// because flattening is lossy — any name the sanitizer had to change
/// gets an 8-hex-digit CRC32 of the *original* name appended, so
/// distinct names can never collide on disk ("a/b" and "a_b" used to
/// map to the same snapshot file, silently overwriting each other).
/// Names that are already safe come back verbatim, which keeps every
/// pre-existing on-disk layout valid.
std::string SafeFileComponent(const std::string& name);

/// What to do when a shard's unclassified repository exceeds its quota:
/// drop the oldest documents (the default — a bounded sliding window of
/// recent structure) or the newest (reject-new semantics: the overflow
/// that pushed it past the bound is dropped). Either way the eviction is
/// WAL-logged with explicit ids (store/evict_record.h) so replay
/// reproduces the identical bounded state.
enum class RepositoryQuotaPolicy { kEvictOldest, kRejectNew };

/// Per-tenant quota overrides; negative values inherit the process-wide
/// defaults in `SourceManagerOptions`.
struct TenantQuota {
  double rate = -1.0;            // token-bucket refill, documents/second
  double burst = -1.0;           // token-bucket capacity
  long max_doc_bytes = -1;       // pre-parse document body cap
  long max_repository_docs = -1; // bounded unclassified repository
};

/// Per-shard health: `kOk` serves everything; `kDegraded` means the
/// last WAL append failed (writes are still attempted — one success
/// clears the state); `kReadOnly` means appends failed repeatedly and
/// writes are rejected outright until the recovery probe — a periodic
/// no-op WAL append — succeeds. Reads work in every state.
enum class ShardHealth { kOk = 0, kDegraded = 1, kReadOnly = 2 };

const char* ShardHealthName(ShardHealth health);

/// Configuration of a `SourceManager`. Mirrors the durability half of
/// `ServerOptions`; the HTTP half stays with `IngestServer`.
struct SourceManagerOptions {
  /// Tenant (shard) names. Empty means the single tenant "default",
  /// which runs in backward-compatible mode: unlabeled metrics and
  /// snapshots/WAL directly in `snapshot_dir` / `wal_dir`. Any other
  /// configuration labels every per-shard metric with {tenant="<name>"}
  /// and gives each shard its own `<dir>/<tenant>/` subdirectory, i.e.
  /// its own WAL + checkpoint lineage.
  std::vector<std::string> tenants;
  /// Scoring threads of the process-wide pool shared by every shard.
  size_t jobs = 1;
  /// Per-shard pending-document bound (backpressure).
  size_t queue_capacity = 256;
  /// Most documents drained into one `ProcessBatch` round per shard.
  size_t batch_max = 64;
  std::string snapshot_dir;
  std::string wal_dir;
  store::FsyncPolicy fsync_policy = store::FsyncPolicy::kAlways;
  std::chrono::milliseconds fsync_interval{100};
  uint64_t wal_segment_bytes = 8 * 1024 * 1024;
  /// Cadence of the (single, manager-wide) periodic checkpoint thread;
  /// zero disables it.
  std::chrono::milliseconds checkpoint_interval{30000};
  bool checkpoint_on_shutdown = true;
  /// When > 0, a shard whose repository reaches this many documents
  /// (and has no candidates pending) runs `InduceCandidates` after the
  /// batch that crossed the threshold — proposals only; accepting stays
  /// an explicit admin decision.
  size_t auto_induce_threshold = 0;

  // --- Per-tenant quota defaults (0 = unlimited) ---------------------------
  /// Token-bucket ingest rate limit, documents/second per shard.
  double tenant_rate = 0.0;
  /// Token-bucket capacity; 0 derives max(1, tenant_rate).
  double tenant_burst = 0.0;
  /// Largest accepted document body, checked before parsing.
  size_t max_doc_bytes = 0;
  /// Unclassified-repository bound per shard; enforcement per
  /// `repository_policy`, WAL-logged as eviction records.
  size_t max_repository_docs = 0;
  RepositoryQuotaPolicy repository_policy = RepositoryQuotaPolicy::kEvictOldest;
  /// Named overrides of the defaults above.
  std::map<std::string, TenantQuota> tenant_quotas;

  /// Cadence of the recovery probe that retries a WAL append on
  /// degraded/read-only shards; zero disables it.
  std::chrono::milliseconds health_probe_interval{200};
};

/// Owns N independent `XmlSource` shards — one per tenant — and runs
/// the full per-shard pipeline lifecycle that used to live inside
/// `IngestServer`: recovery on `Start`, a bounded ingest queue drained
/// by a dedicated worker per shard, periodic checkpointing, graceful
/// drain, and snapshot/checkpoint on shutdown.
///
/// What is per shard (fully independent between tenants):
///   * the `XmlSource` (DTD set, repository, counters),
///   * the WAL + checkpoint lineage (`wal_dir/<tenant>/`),
///   * the ingest queue, its worker thread, and the `ingest_order_mutex`
///     that makes LSN order equal apply order — so two tenants' writes
///     never serialize against each other,
///   * the per-DTD ingest/evolution tallies and recovery report.
///
/// What is shared process-wide:
///   * the scoring `ThreadPool` (`ParallelFor` tracks completion per
///     call, so concurrent shard batches don't starve each other),
///   * the `SymbolTable` label interner (process-global by design),
///   * one `SubtreeScoreCache` — safe across shards because entries are
///     keyed by evaluator epoch, and epochs are globally unique.
///
/// Thread-safety: `AddDtdText` / `AddTenantDtdText` before `Start`;
/// `Enqueue` and every read accessor afterwards from any thread;
/// `Drain` once, after the caller has stopped producing documents.
class SourceManager {
 public:
  /// Completion channel of a `wait`-mode enqueue. A caller may either
  /// block on `cv` or register `on_done` (under `mutex`, after checking
  /// `done` — the outcome may already have landed): the worker invokes
  /// it exactly once, outside the lock, after publishing the outcome.
  /// The event-loop server uses the callback so a wait-mode ingest never
  /// parks the loop thread.
  struct IngestWaiter {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    core::XmlSource::ProcessOutcome outcome;
    std::function<void()> on_done;
  };

  enum class EnqueueCode {
    kOk,
    kUnknownTenant,  // explicit tenant that no shard matches
    kQueueFull,      // shard at queue_capacity — back off and retry
    kWalError,       // WAL append failed — NOT acked, shard degraded
    kRateLimited,    // token bucket empty — retry after the advertised delay
    kReadOnly,       // shard in read-only health state — writes rejected
  };

  struct EnqueueResult {
    EnqueueCode code = EnqueueCode::kOk;
    /// The shard that accepted (or rejected) the document — for
    /// anonymous traffic, the routing decision.
    std::string tenant;
    /// Failure detail for `kWalError`.
    std::string error;
    /// Non-null iff `wait` was requested and the enqueue succeeded.
    std::shared_ptr<IngestWaiter> waiter;
  };

  struct TenantDtdStats {
    std::string name;
    uint64_t documents_recorded = 0;
    double mean_divergence = 0.0;
    uint64_t documents_ingested = 0;
    uint64_t evolutions = 0;
  };

  struct TenantStats {
    std::string tenant;
    uint64_t documents_processed = 0;
    uint64_t documents_classified = 0;
    size_t repository_size = 0;
    uint64_t evolutions_performed = 0;
    // Repository clustering / induction (zeros when clustering is off).
    size_t cluster_count = 0;
    size_t largest_cluster = 0;
    size_t candidates_pending = 0;
    uint64_t candidates_proposed = 0;
    uint64_t candidates_accepted = 0;
    uint64_t candidates_rejected = 0;
    std::vector<TenantDtdStats> dtds;
  };

  /// One pending candidate, as served by `GET /dtds/candidates`.
  struct CandidateInfo {
    uint64_t id = 0;
    std::string name;
    size_t members = 0;
    size_t validated = 0;
    double coverage = 0.0;
    double margin = 0.0;
    /// The proposed declarations, as DTD text.
    std::string dtd_text;
  };

  SourceManager(core::SourceOptions source_options,
                SourceManagerOptions options);
  ~SourceManager();

  SourceManager(const SourceManager&) = delete;
  SourceManager& operator=(const SourceManager&) = delete;

  /// Registers a seed DTD on *every* shard. Call before `Start`.
  Status AddDtdText(const std::string& name, std::string_view dtd_text);
  /// Registers a seed DTD on one shard only.
  Status AddTenantDtdText(const std::string& tenant, const std::string& name,
                          std::string_view dtd_text);

  /// Wires metrics into `registry`, creates the storage directories,
  /// recovers every shard (checkpoint + WAL tail, or snapshot restore),
  /// and spawns the per-shard workers plus the checkpoint thread.
  /// Idempotent per shard across a failed-then-retried `Start`: a shard
  /// that already recovered is never replayed a second time.
  Status Start(obs::Registry* registry);

  /// Graceful stop: drains every queue through the loop, joins the
  /// workers and the checkpoint thread, takes the final checkpoint (or
  /// WAL sync) and snapshots, and shuts the pool down. Safe to call
  /// when `Start` never ran or already failed.
  void Drain();

  bool started() const { return started_; }

  /// Pauses / resumes every shard worker between batches.
  void PauseIngest();
  void ResumeIngest();

  /// Routes and enqueues one parsed document. `tenant` empty means
  /// anonymous traffic: with a single shard it goes there; with a shard
  /// literally named "default" it goes there; otherwise the root
  /// element tag picks a shard on a consistent-hash ring (stable under
  /// tenant-set growth for most keys). `raw_body` is what the WAL
  /// records (replay re-parses it).
  EnqueueResult Enqueue(const std::string& tenant, xml::Document doc,
                        const std::string& raw_body, bool wait);
  /// Streaming twin: enqueues an arena-parsed document. The worker
  /// drains all-arena batches through the memo-first arena
  /// `ProcessBatch`, so repeated structures never materialize a DOM.
  EnqueueResult Enqueue(const std::string& tenant, xml::ArenaDocument doc,
                        const std::string& raw_body, bool wait);

  /// True when ingest should parse through the streaming reader
  /// (`SourceOptions::streaming_parse`) — the HTTP layer picks its
  /// parser off this.
  bool streaming_ingest() const { return source_options_.streaming_parse; }

  /// Pre-parse admission check for one document body: true when `bytes`
  /// fits the resolved tenant's document-size quota. A rejection counts
  /// on the tenant's too-large counter. Anonymous traffic that cannot be
  /// resolved to a shard before parsing is checked against the
  /// process-wide default.
  bool AdmitDocSize(const std::string& tenant, size_t bytes);

  /// One tenant's health state with its shard name.
  struct ShardHealthInfo {
    std::string tenant;
    ShardHealth health = ShardHealth::kOk;
  };

  /// Health of every shard, in tenant order.
  std::vector<ShardHealthInfo> HealthReport() const;
  /// True when every shard is `kOk` — the write-path readiness signal.
  bool AllShardsOk() const;

  /// True when running in backward-compatible single-"default" mode
  /// (unlabeled metrics, root-level storage directories).
  bool single_default() const { return backcompat_; }

  std::vector<std::string> TenantNames() const;
  bool HasTenant(const std::string& tenant) const;

  /// DTD names of one tenant. Empty `tenant` resolves like anonymous
  /// reads: the single shard, else the shard named "default", else
  /// `kInvalidArgument` ("tenant required"). Unknown tenants are
  /// `kNotFound`.
  StatusOr<std::vector<std::string>> DtdNamesFor(
      const std::string& tenant) const;
  /// Current (possibly evolved) declarations of one DTD, as DTD text.
  StatusOr<std::string> DtdTextFor(const std::string& tenant,
                                   const std::string& name) const;
  /// Stats of one tenant (same resolution rules as `DtdNamesFor`).
  StatusOr<TenantStats> StatsFor(const std::string& tenant) const;
  /// Stats of every tenant, in tenant order.
  std::vector<TenantStats> AllStats() const;

  // --- Candidate-DTD induction (admin lifecycle) ---------------------------

  /// Runs `XmlSource::InduceCandidates` on one tenant (same resolution
  /// rules as `DtdNamesFor`); returns how many candidates are pending.
  StatusOr<size_t> InduceTenant(const std::string& tenant);

  /// The pending candidates of one tenant, ascending id.
  StatusOr<std::vector<CandidateInfo>> CandidatesFor(
      const std::string& tenant) const;

  /// Promotes a pending candidate into the tenant's live DTD set. The
  /// accept is WAL-logged (store/induce_record.h) *in LSN order*: new
  /// ingest into the shard is held off while every already-acked
  /// document is applied, then the record is appended and applied — so
  /// crash replay reproduces exactly the live sequence. Every other
  /// pending candidate of the tenant is retired (the set changed under
  /// them); re-run `InduceTenant` for fresh proposals.
  StatusOr<core::XmlSource::AcceptOutcome> AcceptCandidate(
      const std::string& tenant, uint64_t id);

  /// Drops one pending candidate. Not WAL-logged — candidates are
  /// in-memory proposals, recomputable from the repository; only
  /// accepts are durable.
  Status RejectCandidate(const std::string& tenant, uint64_t id);

  /// Writes one atomic snapshot per DTD per shard. No-op without a
  /// snapshot dir.
  Status SnapshotNow();

  /// Checkpoints one tenant and truncates its WAL through the captured
  /// LSN. `captured_lsn` (optional) receives the LSN the checkpoint
  /// actually captured — the caller must track *that*, not the LSN it
  /// sampled before calling, because ingest can race the capture.
  Status CheckpointTenant(const std::string& tenant,
                          uint64_t* captured_lsn = nullptr);
  /// Checkpoints every shard; returns the first error. With several
  /// shards `captured_lsn` is the last shard's (it is only meaningful
  /// in single-tenant mode).
  Status CheckpointAll(uint64_t* captured_lsn = nullptr);

  /// Boot recovery findings of one tenant (empty = first shard).
  const store::RecoveryReport& recovery_report(
      const std::string& tenant = "") const;
  /// Aggregated non-fatal boot findings across every shard.
  const std::vector<std::string>& boot_warnings() const {
    return boot_warnings_;
  }

  /// A shard's source, for quiesced inspection (before `Start` or after
  /// `Drain`); nullptr for unknown tenants. Empty = first shard.
  const core::XmlSource* source(const std::string& tenant = "") const;

  /// Storage locations, mainly for tests asserting the on-disk layout.
  std::string WalDirFor(const std::string& tenant) const;
  std::string SnapshotDirFor(const std::string& tenant) const;

  // --- Replication (primary side) ------------------------------------------

  /// The tenant's latest durable checkpoint as a single transfer blob
  /// (`EncodeCheckpointBlob`), read under the checkpoint mutex so a
  /// concurrent checkpoint can never swap files mid-read. A tenant that
  /// has never checkpointed yields a blob with `lsn == 0` — the follower
  /// then streams the WAL from LSN 1. `kFailedPrecondition` without a
  /// WAL dir.
  StatusOr<std::string> ExportCheckpointFor(const std::string& tenant);

  /// One page of the tenant's WAL from `from_lsn`, read under the
  /// checkpoint mutex (which holds off truncation, so segments cannot
  /// vanish mid-scan; concurrent appends at the tail are fine — a torn
  /// final frame just ends the page). `*wal_next_lsn` (optional)
  /// receives the live log head, for lag math and gap detection.
  StatusOr<store::WalExport> ExportWalFor(const std::string& tenant,
                                          uint64_t from_lsn,
                                          uint64_t max_bytes,
                                          uint64_t* wal_next_lsn = nullptr);

  // --- Replication (follower side) -----------------------------------------

  /// Replaces the tenant's pipeline state with a decoded primary
  /// checkpoint: a fresh source is rebuilt from the shard's seed DTDs,
  /// the checkpoint is applied onto it (`ApplyCheckpointToSource` — the
  /// same function boot recovery uses), and it is swapped in under the
  /// state mutex with `applied_lsn = data.lsn`. Works mid-life too (a
  /// follower that fell behind a truncated primary re-bootstraps).
  Status BootstrapFromCheckpoint(const std::string& tenant,
                                 const store::CheckpointData& data);

  /// Applies one replicated WAL record through the replay dispatch
  /// (ingest document or induce-accept) under the state mutex. Records
  /// at or below `applied_lsn` return false (idempotent re-delivery
  /// after a resume); a gap above `applied_lsn + 1` is an error.
  StatusOr<bool> ApplyReplicated(const std::string& tenant, uint64_t lsn,
                                 std::string_view payload);

  /// Highest LSN folded into the tenant's source (0 for unknown
  /// tenants).
  uint64_t AppliedLsnFor(const std::string& tenant) const;

 private:
  struct PendingDoc {
    /// Exactly one representation is live: `arena` when the streaming
    /// reader parsed the body (`doc` is then an empty placeholder),
    /// else `doc`.
    xml::Document doc;
    std::optional<xml::ArenaDocument> arena;
    std::chrono::steady_clock::time_point enqueued;
    std::shared_ptr<IngestWaiter> waiter;  // null for fire-and-forget
    uint64_t lsn = 0;                      // 0 when the WAL is disabled
  };

  /// One tenant: a full, independent ingest pipeline.
  struct Shard {
    explicit Shard(const core::SourceOptions& source_options)
        : source(std::make_unique<core::XmlSource>(source_options)) {}

    std::string name;
    std::string dir_component;  // SafeFileComponent(name)

    /// Behind a pointer (XmlSource is not movable) so a follower
    /// re-bootstrap can swap in a freshly rebuilt source under
    /// `state_mutex`.
    std::unique_ptr<core::XmlSource> source;
    /// Seed DTDs registered before Start, kept for follower bootstrap
    /// rebuilds.
    std::vector<std::pair<std::string, std::string>> seed_dtds;
    std::unique_ptr<store::Wal> wal;
    store::RecoveryReport recovery_report;
    bool recovered = false;           // WAL recovery already ran
    bool snapshots_restored = false;  // snapshot restore already ran
    bool metrics_wired = false;

    /// Spans capacity check → WAL append → enqueue, so this shard's
    /// apply order is exactly its LSN order. Never held while another
    /// shard's is — tenants don't serialize against each other.
    std::mutex ingest_order_mutex;

    // Resolved quota limits (0 = unlimited; tenant override over the
    // process default, fixed at construction).
    double rate_limit = 0.0;
    double bucket_capacity = 0.0;
    size_t max_doc_bytes = 0;
    size_t max_repository_docs = 0;

    /// Token bucket (guarded by `ingest_order_mutex`, like the rest of
    /// the admission path).
    double tokens = 0.0;
    std::chrono::steady_clock::time_point bucket_refilled;

    /// Health state machine (values of `ShardHealth`): WAL append
    /// failures walk ok → degraded → read_only; one successful append —
    /// live ingest or the recovery probe — resets to ok.
    std::atomic<int> health{0};
    std::atomic<uint64_t> wal_failures{0};  // consecutive

    /// Metric handles wired into `source`, kept so a bootstrap-swapped
    /// replacement source keeps reporting into the same series.
    core::SourceMetrics source_metrics;

    /// Guards `source` and the tallies below.
    mutable std::mutex state_mutex;
    std::map<std::string, uint64_t> ingested_per_dtd;
    std::map<std::string, uint64_t> evolutions_per_dtd;
    uint64_t applied_lsn = 0;  // highest LSN folded into `source`
    /// LSNs of no-op-safe records (evictions, probes) applied ahead of
    /// the contiguous watermark while earlier documents still sat in the
    /// queue; absorbed into `applied_lsn` as the watermark catches up.
    /// Guarded by `state_mutex`.
    std::set<uint64_t> applied_ahead;

    /// Serializes checkpoint I/O (periodic thread vs explicit calls)
    /// and guards `last_checkpoint_lsn`.
    std::mutex checkpoint_mutex;
    uint64_t last_checkpoint_lsn = 0;

    std::mutex queue_mutex;
    std::condition_variable queue_cv;
    std::deque<PendingDoc> queue;
    bool paused = false;
    bool draining = false;
    std::thread worker;

    // Hot-path metric handles (tenant-labeled unless backcompat).
    obs::Counter* requests_rejected = nullptr;
    obs::Counter* rate_limited = nullptr;
    obs::Counter* doc_too_large = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* read_only_rejected = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Histogram* ingest_seconds = nullptr;
    obs::Histogram* batch_seconds = nullptr;
    obs::Gauge* degraded = nullptr;
    obs::Counter* checkpoints = nullptr;
    obs::Counter* checkpoint_errors = nullptr;
    obs::Gauge* checkpoint_lsn_gauge = nullptr;
    obs::Counter* snapshots_quarantined = nullptr;
  };

  Shard* FindShard(const std::string& tenant);
  const Shard* FindShard(const std::string& tenant) const;
  /// Read-path resolution: explicit name, else the single shard, else
  /// the shard named "default", else nullptr (ambiguous).
  const Shard* ResolveReadShard(const std::string& tenant) const;
  /// Same resolution, mutable — the admin (induce/accept/reject) paths.
  Shard* ResolveWriteShard(const std::string& tenant);
  /// Maps the shared nullptr-shard outcome of the resolvers to the
  /// status `DtdNamesFor` documents.
  static Status UnresolvedTenantError(const std::string& tenant);
  /// Ingest routing: like ResolveReadShard but anonymous traffic with
  /// no "default" shard falls through to the consistent-hash ring
  /// (keyed by the document's root tag).
  Shard* RouteIngest(const std::string& tenant, std::string_view root_tag);

  /// Representation-independent tail of `Enqueue`: admission, WAL
  /// append and queue insertion for an already-built `PendingDoc`.
  EnqueueResult EnqueuePending(const std::string& tenant, PendingDoc pending,
                               std::string_view root_tag,
                               const std::string& raw_body, bool wait);

  Status StartShard(Shard& shard, obs::Registry* registry);
  void WireShardMetrics(Shard& shard, obs::Registry* registry);
  Status RestoreShardSnapshots(Shard& shard);
  Status SnapshotShard(Shard& shard);
  Status CheckpointShard(Shard& shard, uint64_t* captured_lsn);
  void IngestWorker(Shard& shard);
  void ProcessPending(Shard& shard, std::vector<PendingDoc> pending);
  void CheckpointLoop();
  /// Notes a WAL append failure on `shard`: increments the consecutive
  /// failure count and walks the health state machine.
  void NoteWalFailure(Shard& shard);
  /// Notes a successful WAL append: health back to ok.
  void NoteWalSuccess(Shard& shard);
  /// Folds `lsn` into the shard's applied watermark — directly when
  /// contiguous, via `applied_ahead` otherwise. Caller holds
  /// `state_mutex`.
  static void AbsorbAppliedLsn(Shard& shard, uint64_t lsn);
  /// Bounded-repository enforcement after a batch: picks victims per
  /// policy, WAL-logs the eviction, applies it. Caller holds
  /// `state_mutex`.
  void EnforceRepositoryQuota(Shard& shard);
  /// The degraded/read-only recovery probe: appends a no-op (empty
  /// eviction) record; success clears the health state.
  void HealthProbeLoop();
  std::string SnapshotPathFor(const Shard& shard,
                              const std::string& name) const;

  core::SourceOptions source_options_;
  SourceManagerOptions options_;
  bool backcompat_ = false;

  /// Process-wide shared scoring infrastructure.
  std::unique_ptr<similarity::SubtreeScoreCache> shared_cache_;
  /// Process-wide classification memo — one structural-dedup budget for
  /// every shard; safe because entries are keyed by classifier
  /// set-epoch, and epochs are globally unique.
  std::unique_ptr<classify::ClassificationMemo> shared_memo_;
  std::optional<util::ThreadPool> pool_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, Shard*> by_name_;
  Shard* default_shard_ = nullptr;  // the shard named "default", if any
  /// Consistent-hash ring: 64 virtual points per shard, keyed by the
  /// document's root element tag for anonymous multi-tenant traffic.
  std::vector<std::pair<uint32_t, Shard*>> ring_;

  bool started_ = false;
  std::vector<std::string> boot_warnings_;

  std::thread checkpoint_thread_;
  std::mutex checkpoint_wake_mutex_;
  std::condition_variable checkpoint_wake_cv_;
  bool checkpoint_stop_ = false;

  std::thread health_thread_;
  std::mutex health_wake_mutex_;
  std::condition_variable health_wake_cv_;
  bool health_stop_ = false;
};

}  // namespace dtdevolve::server

#endif  // DTDEVOLVE_SERVER_SOURCE_MANAGER_H_
