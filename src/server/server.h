#ifndef DTDEVOLVE_SERVER_SERVER_H_
#define DTDEVOLVE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/source.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "store/checkpoint.h"
#include "store/wal.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dtdevolve::server {

struct ServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// `port()` after `Start`).
  uint16_t port = 8080;
  /// Scoring threads; one `util::ThreadPool` is shared across every
  /// ingest batch for the server's lifetime.
  size_t jobs = 1;
  /// Pending ingest documents before `POST /ingest` answers 503 with a
  /// `Retry-After` header — the backpressure bound.
  size_t queue_capacity = 256;
  /// Most documents drained into one `ProcessBatch` round.
  size_t batch_max = 64;
  /// Largest accepted request body.
  size_t max_body_bytes = 4 * 1024 * 1024;
  /// Advertised on 503 responses.
  int retry_after_seconds = 1;
  /// Directory for extended-DTD snapshots (one `<name>.dtdstate` per
  /// DTD): written atomically on shutdown (and via `SnapshotNow`),
  /// restored over the seed DTDs on `Start`. Empty disables persistence.
  /// A snapshot that fails to parse at boot is quarantined (renamed to
  /// `<name>.dtdstate.corrupt`, counted, reported in `boot_warnings`)
  /// and the server continues from the seed DTD.
  std::string snapshot_dir;

  // --- Crash durability (store/wal.h, store/checkpoint.h) -----------------

  /// Directory for the write-ahead log and its checkpoints. Empty
  /// disables the WAL. When set, every accepted `/ingest` body is
  /// appended to the log — and, under `fsync_policy == kAlways`, fsynced
  /// — *before* the 202/200 ack, so an acked document survives a crash;
  /// `Start` then recovers the last checkpoint plus the WAL tail instead
  /// of restoring `snapshot_dir`. An append failure (e.g. disk full)
  /// answers 503 with `Retry-After` and raises the `dtdevolve_degraded`
  /// gauge until an append succeeds again.
  std::string wal_dir;
  store::FsyncPolicy fsync_policy = store::FsyncPolicy::kAlways;
  /// Fsync cadence under `FsyncPolicy::kInterval`.
  std::chrono::milliseconds fsync_interval{100};
  /// WAL segment rotation threshold.
  uint64_t wal_segment_bytes = 8 * 1024 * 1024;
  /// Cadence of the periodic checkpoint thread (snapshot the pipeline
  /// state, then truncate the WAL through the checkpointed LSN). Zero
  /// disables the thread; a final checkpoint still runs on graceful
  /// stop unless `checkpoint_on_shutdown` is off.
  std::chrono::milliseconds checkpoint_interval{30000};
  /// Disable to make a graceful stop leave only WAL state behind —
  /// recovery then has to replay the log, which is how crash-recovery
  /// tests exercise the replay path deterministically.
  bool checkpoint_on_shutdown = true;

  /// Per-connection socket timeouts (SO_RCVTIMEO / SO_SNDTIMEO): a
  /// client that stalls mid-request or stops reading its response frees
  /// the connection thread after this long. Zero disables the guard.
  int recv_timeout_seconds = 10;
  int send_timeout_seconds = 10;
};

/// The networked front of Fig. 1: a long-running HTTP/1.1 server (plain
/// POSIX sockets, no external dependencies) wrapping one `XmlSource` and
/// driving the classify → record → check → evolve loop over documents
/// that arrive on the wire.
///
/// Endpoints:
///   POST /ingest          body = one XML document. Parsed on the
///                         connection thread, then queued; a single
///                         ingest worker drains the queue in batches
///                         through `ProcessBatch` on the shared pool.
///                         Replies 202 once queued, or — with `?wait=1` —
///                         200 with the JSON outcome after the document
///                         was applied. 400 on parse errors, 503 +
///                         Retry-After when the queue is full.
///   GET /dtds             JSON list of registered DTD names.
///   GET /dtds/{name}      the current (possibly evolved) declarations,
///                         as DTD text.
///   GET /stats            JSON: per-DTD document counts and divergence,
///                         repository size, evolution count.
///   GET /metrics          Prometheus text exposition.
///   GET /healthz          200 "ok".
///
/// Lifecycle: `AddDtdText` seeds the set, `Start` binds/restores/spawns,
/// `Shutdown` (async-signal-safe — wire it to SIGINT/SIGTERM) requests a
/// graceful stop, `Wait` blocks until the stop completed: the listener
/// closes, in-flight connections finish, the queue drains through the
/// loop, and the extended-DTD state is snapshotted.
///
/// Threading: connection threads only parse and enqueue; the single
/// ingest worker is the only `XmlSource` writer. Read endpoints take the
/// same state mutex the worker holds while applying a batch, so scrapes
/// see consistent state.
class IngestServer {
 public:
  IngestServer(core::SourceOptions source_options, ServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Registers a seed DTD. Call before `Start`.
  Status AddDtdText(const std::string& name, std::string_view dtd_text);

  /// Binds and listens, restores snapshots (when configured), wires the
  /// metrics, and spawns the accept loop and the ingest worker.
  Status Start();

  /// The bound port (useful with `options.port == 0`).
  uint16_t port() const { return port_; }

  /// Requests a graceful stop. Async-signal-safe (a single `write` to a
  /// self-pipe) and idempotent.
  void Shutdown();

  /// Blocks until the graceful stop finished. Returns immediately when
  /// `Start` never ran.
  void Wait();

  /// Pauses / resumes the ingest worker between batches (documents keep
  /// queueing until the queue is full — useful for maintenance and for
  /// exercising backpressure deterministically). A shutdown overrides a
  /// pause so draining always completes.
  void PauseIngest();
  void ResumeIngest();

  /// Writes one atomic snapshot per DTD into `snapshot_dir`. No-op
  /// without a snapshot dir. Also called by the graceful stop.
  Status SnapshotNow();

  /// Checkpoints the pipeline state at the last applied LSN and
  /// truncates the WAL through it. No-op without a WAL. Called by the
  /// periodic checkpoint thread and by the graceful stop.
  Status CheckpointNow();

  /// What boot-time recovery found (checkpoint LSN, records replayed,
  /// torn-tail warning). Meaningful after `Start` with a `wal_dir`.
  const store::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }

  /// Non-fatal boot findings (quarantined snapshots, torn WAL tails) —
  /// the operator-visible "warn" half of warn-and-continue.
  const std::vector<std::string>& boot_warnings() const {
    return boot_warnings_;
  }

  obs::Registry& metrics() { return registry_; }

  /// The wrapped source. Only safe while the server is not running
  /// (before `Start` or after `Wait`); running servers serve state over
  /// HTTP instead.
  const core::XmlSource& source() const { return source_; }

 private:
  struct IngestWaiter {
    std::mutex mutex;
    std::condition_variable cv;
    bool done = false;
    core::XmlSource::ProcessOutcome outcome;
  };

  struct PendingDoc {
    xml::Document doc;
    std::chrono::steady_clock::time_point enqueued;
    std::shared_ptr<IngestWaiter> waiter;  // null for fire-and-forget
    uint64_t lsn = 0;                      // 0 when the WAL is disabled
  };

  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Route(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleDtds(const HttpRequest& request);
  HttpResponse HandleStats();
  void IngestWorker();
  void ProcessPending(std::vector<PendingDoc> pending);
  void CheckpointLoop();
  Status RestoreSnapshots();
  std::string SnapshotPath(const std::string& name) const;

  core::XmlSource source_;
  ServerOptions options_;
  obs::Registry registry_;
  std::optional<util::ThreadPool> pool_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> shutdown_requested_{false};

  std::thread accept_thread_;
  std::thread worker_thread_;

  // Durability. `wal_` is created during Start (recovery) and outlives
  // every ingest; `ingest_order_mutex_` spans capacity check → WAL
  // append → enqueue so LSN order is exactly apply order.
  std::unique_ptr<store::Wal> wal_;
  std::mutex ingest_order_mutex_;
  store::RecoveryReport recovery_report_;
  std::vector<std::string> boot_warnings_;
  std::thread checkpoint_thread_;
  std::mutex checkpoint_mutex_;
  std::condition_variable checkpoint_cv_;
  bool checkpoint_stop_ = false;
  uint64_t last_checkpoint_lsn_ = 0;  // checkpoint thread only

  // Connection bookkeeping: threads are detached; Wait() blocks until
  // the count returns to zero.
  std::mutex conn_mutex_;
  std::condition_variable conn_done_cv_;
  size_t active_connections_ = 0;

  // The bounded ingest queue.
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<PendingDoc> queue_;
  bool paused_ = false;
  bool draining_ = false;  // set by Wait(): drain fully, then exit

  // Guards source_ and the per-DTD tallies below.
  mutable std::mutex state_mutex_;
  std::map<std::string, uint64_t> ingested_per_dtd_;
  std::map<std::string, uint64_t> evolutions_per_dtd_;
  uint64_t applied_lsn_ = 0;  // highest LSN folded into source_

  // Wired in Start(); hot-path handles into registry_.
  obs::Counter* requests_rejected_ = nullptr;
  obs::Gauge* queue_depth_ = nullptr;
  obs::Histogram* ingest_seconds_ = nullptr;
  obs::Histogram* batch_seconds_ = nullptr;
  obs::Gauge* degraded_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* checkpoint_errors_ = nullptr;
  obs::Gauge* checkpoint_lsn_gauge_ = nullptr;
  obs::Counter* snapshots_quarantined_ = nullptr;
};

}  // namespace dtdevolve::server

#endif  // DTDEVOLVE_SERVER_SERVER_H_
