#ifndef DTDEVOLVE_SERVER_SERVER_H_
#define DTDEVOLVE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/source.h"
#include "obs/metrics.h"
#include "server/follower.h"
#include "server/http.h"
#include "server/source_manager.h"
#include "store/checkpoint.h"
#include "store/wal.h"
#include "util/status.h"

namespace dtdevolve::server {

struct ServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// `port()` after `Start`).
  uint16_t port = 8080;
  /// Tenant shard names (see SourceManagerOptions::tenants). Empty runs
  /// a single backward-compatible "default" tenant.
  std::vector<std::string> tenants;
  /// Scoring threads; one `util::ThreadPool` is shared across every
  /// tenant shard for the server's lifetime.
  size_t jobs = 1;
  /// Pending ingest documents per shard before `POST /ingest` answers
  /// 503 with a `Retry-After` header — the backpressure bound.
  size_t queue_capacity = 256;
  /// Most documents drained into one `ProcessBatch` round per shard.
  size_t batch_max = 64;
  /// Largest accepted request body.
  size_t max_body_bytes = 4 * 1024 * 1024;
  /// Advertised on 503 responses.
  int retry_after_seconds = 1;

  // --- Admission control (event-loop overload guards; 0 disables each) -----

  /// Connections multiplexed at once. An accept over the cap is answered
  /// an immediate 503 + `Retry-After` and closed — it never joins the
  /// event loop, so a connection flood cannot starve established
  /// clients.
  size_t max_connections = 0;
  /// Pipelined requests answered per connection per read pass. A client
  /// that stuffs more requests than this into one burst gets a 503 for
  /// the overflow request and the connection is closed after the flush.
  size_t max_pipeline_depth = 0;

  // --- Per-tenant quotas (SourceManagerOptions; 0 disables each) -----------

  /// Process-wide default ingest rate (documents/second, token bucket)
  /// per tenant shard; over-rate ingests answer 429 + `Retry-After`.
  double tenant_rate = 0.0;
  /// Token-bucket burst capacity; defaults to max(1, tenant_rate).
  double tenant_burst = 0.0;
  /// Largest accepted ingest document per tenant — enforced *before*
  /// the XML parse (413), so an oversized body costs no parser time.
  size_t max_doc_bytes = 0;
  /// Bound on each shard's unclassified-document repository; enforced
  /// after every batch under `repository_policy`, WAL-logged so
  /// recovery replays to the identical bounded state.
  size_t max_repository_docs = 0;
  RepositoryQuotaPolicy repository_policy = RepositoryQuotaPolicy::kEvictOldest;
  /// Per-tenant overrides of the four defaults above (negative fields
  /// inherit).
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Cadence of the degraded-shard recovery probe (a real WAL append
  /// that replays as a no-op); zero disables probing.
  std::chrono::milliseconds health_probe_interval{200};
  /// Directory for extended-DTD snapshots (one `<name>.dtdstate` per
  /// DTD, under a per-tenant subdirectory unless single-"default"):
  /// written atomically on shutdown (and via `SnapshotNow`), restored
  /// over the seed DTDs on `Start`. Empty disables persistence. A
  /// snapshot that fails to parse at boot is quarantined (renamed to
  /// `<name>.dtdstate.corrupt`, counted, reported in `boot_warnings`)
  /// and the server continues from the seed DTD.
  std::string snapshot_dir;

  // --- Crash durability (store/wal.h, store/checkpoint.h) -----------------

  /// Directory for the write-ahead logs and their checkpoints — one
  /// independent lineage per tenant shard (a subdirectory per tenant
  /// unless single-"default"). Empty disables the WAL. When set, every
  /// accepted `/ingest` body is appended to its shard's log — and,
  /// under `fsync_policy == kAlways`, fsynced — *before* the 202/200
  /// ack, so an acked document survives a crash; `Start` then recovers
  /// each shard's checkpoint plus WAL tail instead of restoring
  /// `snapshot_dir`. An append failure (e.g. disk full) answers 503
  /// with `Retry-After` and raises the `dtdevolve_degraded` gauge until
  /// an append succeeds again.
  std::string wal_dir;
  store::FsyncPolicy fsync_policy = store::FsyncPolicy::kAlways;
  /// Fsync cadence under `FsyncPolicy::kInterval`.
  std::chrono::milliseconds fsync_interval{100};
  /// WAL segment rotation threshold.
  uint64_t wal_segment_bytes = 8 * 1024 * 1024;
  /// Cadence of the periodic checkpoint thread (snapshot each shard's
  /// pipeline state, then truncate its WAL through the checkpointed
  /// LSN). Zero disables the thread; a final checkpoint still runs on
  /// graceful stop unless `checkpoint_on_shutdown` is off.
  std::chrono::milliseconds checkpoint_interval{30000};
  /// Disable to make a graceful stop leave only WAL state behind —
  /// recovery then has to replay the log, which is how crash-recovery
  /// tests exercise the replay path deterministically.
  bool checkpoint_on_shutdown = true;

  /// When > 0, a shard whose repository reaches this many unclassified
  /// documents automatically runs candidate induction after the batch
  /// that crossed the threshold (proposals only — accepting a candidate
  /// stays an explicit `POST /dtds/candidates/{id}/accept`). Zero
  /// disables auto-induction.
  size_t auto_induce_threshold = 0;

  // --- Connection timeouts (event loop deadlines; 0 disables each) --------

  /// A connection that started a request (partial header or body bytes
  /// received) but stalls this long is closed — the slow-loris guard.
  int recv_timeout_seconds = 10;
  /// A connection with unflushed response bytes that accepts none of
  /// them for this long is closed.
  int send_timeout_seconds = 10;
  /// A keep-alive connection sitting idle between requests this long is
  /// closed.
  int idle_timeout_seconds = 60;

  // --- Replication (read replicas) ----------------------------------------

  /// Non-empty runs this server as a read-only follower of the primary
  /// at this URL ("http://host:port" or "host:port"): it bootstraps
  /// every tenant from the primary's latest checkpoint, then streams
  /// and applies WAL records. Writes answer 403; `wal_dir` and
  /// `snapshot_dir` are ignored (the replica owns no durable state —
  /// the primary does).
  std::string follow_url;
  /// Poll cadence of the follower when it is caught up (a follower with
  /// a full page in hand polls again immediately).
  std::chrono::milliseconds follow_poll_interval{500};
};

/// The networked front of Fig. 1: a long-running HTTP/1.1 server (plain
/// POSIX sockets, no external dependencies) over a `SourceManager` of
/// per-tenant `XmlSource` shards, driving the classify → record → check
/// → evolve loop over documents that arrive on the wire.
///
/// Endpoints:
///   POST /ingest            body = one XML document. Parsed on the
///                           event thread, routed to a shard, then
///                           queued; that shard's ingest worker drains
///                           its queue in batches through `ProcessBatch`
///                           on the shared pool. Replies 202 once
///                           queued, or — with `?wait=1` — 200 with the
///                           JSON outcome after the document was
///                           applied (the connection is parked, never a
///                           thread). 400 on parse errors, 404 for
///                           unknown tenants, 503 + Retry-After when
///                           the shard's queue is full.
///   POST /ingest/{tenant}   same, routed to the named tenant. The
///                           `?tenant=` query is an equivalent spelling
///                           on the bare path. Anonymous traffic goes
///                           to the single shard, the shard named
///                           "default", or (multi-tenant, no default) a
///                           consistent-hash shard of the root tag.
///   GET /tenants            JSON list of tenant shard names.
///   GET /dtds[?tenant=]     JSON list of registered DTD names — one
///                           tenant's, or every tenant's keyed by name.
///   GET /dtds/{name}        the current (possibly evolved)
///                           declarations, as DTD text (`?tenant=`
///                           selects the shard).
///   POST /dtds/induce       clusters the tenant's repository and
///                           induces one candidate DTD per cluster;
///                           answers the number of pending candidates.
///   GET /dtds/candidates    JSON list of pending candidates (id, name,
///                           membership, coverage, margin, DTD text).
///   POST /dtds/candidates/{id}/accept
///                           promotes the candidate into the live set
///                           (WAL-logged in LSN order), re-classifies
///                           the repository against it, and retires the
///                           other pending candidates.
///   POST /dtds/candidates/{id}/reject
///                           drops one pending candidate.
///   GET /stats[?tenant=]    JSON: per-DTD document counts and
///                           divergence, repository size, evolution
///                           count — per tenant, plus aggregate totals
///                           and a per-tenant rollup when multi-tenant.
///   GET /metrics            Prometheus text exposition (per-shard
///                           series carry a {tenant="..."} label unless
///                           single-"default").
///   GET /healthz            200 "ok".
///   GET /replication/checkpoint?tenant=
///                           the tenant's latest durable checkpoint as
///                           one blob (follower bootstrap). Primary
///                           only.
///   GET /replication/wal?tenant=&from_lsn=N[&max_bytes=M]
///                           raw WAL frames with `lsn >= N`, cut at a
///                           frame boundary; `X-Dtdevolve-Next-Lsn`
///                           carries the live log head. 410 Gone when
///                           `N` was checkpoint-truncated — the
///                           follower re-bootstraps. Primary only.
///
/// Connection model: ONE event thread multiplexes every connection over
/// epoll — non-blocking sockets, per-connection input/output buffers,
/// HTTP/1.1 keep-alive with pipelining (requests are parsed back to
/// back out of the input buffer and answered strictly in order).
/// `?wait=1` ingests never block the loop: the connection parks on the
/// shard's `IngestWaiter` callback and the worker's completion is
/// ferried back over a wake pipe. Slow or idle peers are closed on the
/// `*_timeout_seconds` deadlines.
///
/// Lifecycle: `AddDtdText` seeds every shard (`AddTenantDtdText` one),
/// `Start` binds/recovers/spawns, `Shutdown` (async-signal-safe — wire
/// it to SIGINT/SIGTERM) requests a graceful stop, `Wait` blocks until
/// the stop completed: the listener closes, idle keep-alive connections
/// are dropped, connections with a response in flight (including parked
/// `?wait=1` requests and already-pipelined requests) are served to
/// completion, every queue drains through the loop, and the
/// extended-DTD state is snapshotted. A failed `Start` cleans up after
/// itself fully (no leaked fds, no half-recovered shards) and may be
/// retried.
///
/// Threading: the event thread only parses, enqueues and serializes;
/// each shard's single ingest worker is the only writer of that shard's
/// `XmlSource`. Read endpoints take the same per-shard state mutex the
/// worker holds while applying a batch, so scrapes see consistent
/// state.
class IngestServer {
 public:
  IngestServer(core::SourceOptions source_options, ServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Registers a seed DTD on every tenant shard. Call before `Start`.
  Status AddDtdText(const std::string& name, std::string_view dtd_text);
  /// Registers a seed DTD on one tenant shard only.
  Status AddTenantDtdText(const std::string& tenant, const std::string& name,
                          std::string_view dtd_text);

  /// Binds and listens, then recovers/restores every shard (wiring the
  /// metrics), and spawns the event loop, the shard workers and — in
  /// follower mode — the replication thread. On any failure every fd
  /// and thread acquired so far is released, so a failed `Start` can
  /// simply be retried.
  Status Start();

  /// The bound port (useful with `options.port == 0`).
  uint16_t port() const { return port_; }

  /// Requests a graceful stop. Async-signal-safe (a single `write` to a
  /// self-pipe) and idempotent.
  void Shutdown();

  /// Blocks until the graceful stop finished. Returns immediately when
  /// `Start` never ran.
  void Wait();

  /// Pauses / resumes every shard's ingest worker between batches
  /// (documents keep queueing until a queue is full — useful for
  /// maintenance and for exercising backpressure deterministically). A
  /// shutdown overrides a pause so draining always completes.
  void PauseIngest();
  void ResumeIngest();

  /// Writes one atomic snapshot per DTD per shard into `snapshot_dir`.
  /// No-op without a snapshot dir. Also called by the graceful stop.
  Status SnapshotNow();

  /// Checkpoints every shard at its last applied LSN and truncates its
  /// WAL through it. No-op without a WAL. `captured_lsn` (optional)
  /// receives the LSN the checkpoint actually captured — meaningful in
  /// single-tenant mode. Called by the periodic checkpoint thread and
  /// by the graceful stop.
  Status CheckpointNow(uint64_t* captured_lsn = nullptr);

  /// What boot-time recovery found (checkpoint LSN, records replayed,
  /// torn-tail warning) for one tenant; empty = the first shard.
  /// Meaningful after `Start` with a `wal_dir`.
  const store::RecoveryReport& recovery_report(
      const std::string& tenant = "") const {
    return manager_.recovery_report(tenant);
  }

  /// Non-fatal boot findings (quarantined snapshots, torn WAL tails)
  /// across every shard — the operator-visible "warn" half of
  /// warn-and-continue.
  const std::vector<std::string>& boot_warnings() const {
    return manager_.boot_warnings();
  }

  obs::Registry& metrics() { return registry_; }

  /// The shard manager, for tests and tools that inspect per-tenant
  /// state directly.
  SourceManager& manager() { return manager_; }
  const SourceManager& manager() const { return manager_; }

  /// A shard's source (empty = the first shard). Only safe while the
  /// server is not running (before `Start` or after `Wait`); running
  /// servers serve state over HTTP instead.
  const core::XmlSource& source(const std::string& tenant = "") const {
    return *manager_.source(tenant);
  }

 private:
  /// One multiplexed connection. Owned (and touched) exclusively by the
  /// event thread; worker threads reach a connection only through the
  /// completion queue.
  struct Connection {
    int fd = -1;
    /// Generation id — completions carry (fd, id) so one landing after
    /// this connection closed and the fd was reused is dropped instead
    /// of answering a stranger.
    uint64_t id = 0;
    std::string in;   // unparsed request bytes
    std::string out;  // serialized, unflushed response bytes
    /// Head request is parked on an `IngestWaiter` (`?wait=1`); parsing
    /// stops so later pipelined requests are answered in order.
    bool waiting_apply = false;
    bool close_after_flush = false;
    bool saw_eof = false;    // client half-closed; flush then close
    uint32_t events = 0;     // current epoll interest mask
    std::chrono::steady_clock::time_point last_activity;
  };

  /// A finished `?wait=1` outcome, ferried worker → event thread.
  struct WaitCompletion {
    int fd = -1;
    uint64_t conn_id = 0;
    bool keep_alive = false;
    HttpResponse response;
  };

  /// Either a ready response or "parked on an ingest waiter".
  struct RouteResult {
    bool async = false;
    HttpResponse response;
  };

  void EventLoop();
  void AcceptReady();
  /// 503 + `Retry-After` written straight to a just-accepted socket that
  /// will not join the loop (connection cap), then close.
  void RejectConnection(int fd);
  /// Deregisters the listener from epoll for a short, timed backoff —
  /// the fd-exhaustion path. Level-triggered epoll would otherwise spin
  /// on a listener whose accepts can only fail.
  void DisarmListener();
  /// Re-registers the listener once the backoff elapsed.
  void RearmListenerIfDue();
  void StartDrain();
  /// Read until EAGAIN, then parse/dispatch/flush. Every return path
  /// except "connection closed" leaves the epoll mask in sync.
  void HandleReadable(Connection* conn);
  /// Parses every complete request out of `in` (stopping at a parked
  /// `?wait=1`), appends responses in order.
  void ProcessInput(Connection* conn);
  /// Writes `out` until EAGAIN; returns false when the connection was
  /// closed (error, `close_after_flush` done, or half-closed and idle).
  bool FlushOut(Connection* conn);
  void UpdateInterest(Connection* conn);
  void CloseConn(Connection* conn);
  void DrainCompletions();
  void PushCompletion(WaitCompletion completion);
  /// Epoll wait budget: min remaining connection deadline, clamped.
  int TimeoutBudgetMs() const;
  void CloseExpiredConns();

  /// `keep_alive` is the parsed request's verdict — an async completion
  /// must echo it (a `Connection: close` `?wait=1` still closes).
  RouteResult Route(const HttpRequest& request, int fd, uint64_t conn_id,
                    bool keep_alive);
  RouteResult HandleIngest(const HttpRequest& request, int fd,
                           uint64_t conn_id, bool keep_alive);
  HttpResponse HandleTenants();
  HttpResponse HandleDtds(const HttpRequest& request);
  HttpResponse HandleInduce(const HttpRequest& request);
  HttpResponse HandleCandidates(const HttpRequest& request);
  HttpResponse HandleStats(const HttpRequest& request);
  /// `/healthz?ready=1`: 200 only when every shard is `ok` and the event
  /// loop has connection headroom; otherwise 503 with a JSON breakdown.
  HttpResponse HandleReady();
  HttpResponse HandleReplicationCheckpoint(const HttpRequest& request);
  HttpResponse HandleReplicationWal(const HttpRequest& request);
  void CountRequest(const std::string& path, int status);

  /// Closes the listener, epoll and wake-pipe fds (if open) — the
  /// error-path unwind of `Start` and the tail of `Wait`.
  void CloseSockets();

  ServerOptions options_;
  obs::Registry registry_;
  SourceManager manager_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> shutdown_requested_{false};

  std::thread event_thread_;
  /// Event-thread state (no locks — single owner).
  std::map<int, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 0;
  bool draining_ = false;
  /// Listener backoff after EMFILE/ENFILE: deregistered until the
  /// deadline, then re-armed (folded into the epoll wait budget).
  bool listener_armed_ = true;
  std::chrono::steady_clock::time_point listener_rearm_at_;

  std::mutex completion_mutex_;
  std::vector<WaitCompletion> completions_;

  std::unique_ptr<Follower> follower_;

  // Connection metric handles (wired in Start).
  obs::Counter* conns_accepted_ = nullptr;
  obs::Counter* conns_timed_out_ = nullptr;
  obs::Counter* conns_rejected_ = nullptr;
  obs::Counter* accept_stalls_ = nullptr;
  obs::Gauge* conns_open_ = nullptr;
};

}  // namespace dtdevolve::server

#endif  // DTDEVOLVE_SERVER_SERVER_H_
