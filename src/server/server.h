#ifndef DTDEVOLVE_SERVER_SERVER_H_
#define DTDEVOLVE_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/source.h"
#include "obs/metrics.h"
#include "server/http.h"
#include "server/source_manager.h"
#include "store/checkpoint.h"
#include "store/wal.h"
#include "util/status.h"

namespace dtdevolve::server {

struct ServerOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read it back with
  /// `port()` after `Start`).
  uint16_t port = 8080;
  /// Tenant shard names (see SourceManagerOptions::tenants). Empty runs
  /// a single backward-compatible "default" tenant.
  std::vector<std::string> tenants;
  /// Scoring threads; one `util::ThreadPool` is shared across every
  /// tenant shard for the server's lifetime.
  size_t jobs = 1;
  /// Pending ingest documents per shard before `POST /ingest` answers
  /// 503 with a `Retry-After` header — the backpressure bound.
  size_t queue_capacity = 256;
  /// Most documents drained into one `ProcessBatch` round per shard.
  size_t batch_max = 64;
  /// Largest accepted request body.
  size_t max_body_bytes = 4 * 1024 * 1024;
  /// Advertised on 503 responses.
  int retry_after_seconds = 1;
  /// Directory for extended-DTD snapshots (one `<name>.dtdstate` per
  /// DTD, under a per-tenant subdirectory unless single-"default"):
  /// written atomically on shutdown (and via `SnapshotNow`), restored
  /// over the seed DTDs on `Start`. Empty disables persistence. A
  /// snapshot that fails to parse at boot is quarantined (renamed to
  /// `<name>.dtdstate.corrupt`, counted, reported in `boot_warnings`)
  /// and the server continues from the seed DTD.
  std::string snapshot_dir;

  // --- Crash durability (store/wal.h, store/checkpoint.h) -----------------

  /// Directory for the write-ahead logs and their checkpoints — one
  /// independent lineage per tenant shard (a subdirectory per tenant
  /// unless single-"default"). Empty disables the WAL. When set, every
  /// accepted `/ingest` body is appended to its shard's log — and,
  /// under `fsync_policy == kAlways`, fsynced — *before* the 202/200
  /// ack, so an acked document survives a crash; `Start` then recovers
  /// each shard's checkpoint plus WAL tail instead of restoring
  /// `snapshot_dir`. An append failure (e.g. disk full) answers 503
  /// with `Retry-After` and raises the `dtdevolve_degraded` gauge until
  /// an append succeeds again.
  std::string wal_dir;
  store::FsyncPolicy fsync_policy = store::FsyncPolicy::kAlways;
  /// Fsync cadence under `FsyncPolicy::kInterval`.
  std::chrono::milliseconds fsync_interval{100};
  /// WAL segment rotation threshold.
  uint64_t wal_segment_bytes = 8 * 1024 * 1024;
  /// Cadence of the periodic checkpoint thread (snapshot each shard's
  /// pipeline state, then truncate its WAL through the checkpointed
  /// LSN). Zero disables the thread; a final checkpoint still runs on
  /// graceful stop unless `checkpoint_on_shutdown` is off.
  std::chrono::milliseconds checkpoint_interval{30000};
  /// Disable to make a graceful stop leave only WAL state behind —
  /// recovery then has to replay the log, which is how crash-recovery
  /// tests exercise the replay path deterministically.
  bool checkpoint_on_shutdown = true;

  /// When > 0, a shard whose repository reaches this many unclassified
  /// documents automatically runs candidate induction after the batch
  /// that crossed the threshold (proposals only — accepting a candidate
  /// stays an explicit `POST /dtds/candidates/{id}/accept`). Zero
  /// disables auto-induction.
  size_t auto_induce_threshold = 0;

  /// Per-connection socket timeouts (SO_RCVTIMEO / SO_SNDTIMEO): a
  /// client that stalls mid-request or stops reading its response frees
  /// the connection thread after this long. Zero disables the guard.
  int recv_timeout_seconds = 10;
  int send_timeout_seconds = 10;
};

/// The networked front of Fig. 1: a long-running HTTP/1.1 server (plain
/// POSIX sockets, no external dependencies) over a `SourceManager` of
/// per-tenant `XmlSource` shards, driving the classify → record → check
/// → evolve loop over documents that arrive on the wire.
///
/// Endpoints:
///   POST /ingest            body = one XML document. Parsed on the
///                           connection thread, routed to a shard, then
///                           queued; that shard's ingest worker drains
///                           its queue in batches through `ProcessBatch`
///                           on the shared pool. Replies 202 once
///                           queued, or — with `?wait=1` — 200 with the
///                           JSON outcome after the document was
///                           applied. 400 on parse errors, 404 for
///                           unknown tenants, 503 + Retry-After when
///                           the shard's queue is full.
///   POST /ingest/{tenant}   same, routed to the named tenant. The
///                           `?tenant=` query is an equivalent spelling
///                           on the bare path. Anonymous traffic goes
///                           to the single shard, the shard named
///                           "default", or (multi-tenant, no default) a
///                           consistent-hash shard of the root tag.
///   GET /tenants            JSON list of tenant shard names.
///   GET /dtds[?tenant=]     JSON list of registered DTD names — one
///                           tenant's, or every tenant's keyed by name.
///   GET /dtds/{name}        the current (possibly evolved)
///                           declarations, as DTD text (`?tenant=`
///                           selects the shard).
///   POST /dtds/induce       clusters the tenant's repository and
///                           induces one candidate DTD per cluster;
///                           answers the number of pending candidates.
///   GET /dtds/candidates    JSON list of pending candidates (id, name,
///                           membership, coverage, margin, DTD text).
///   POST /dtds/candidates/{id}/accept
///                           promotes the candidate into the live set
///                           (WAL-logged in LSN order), re-classifies
///                           the repository against it, and retires the
///                           other pending candidates.
///   POST /dtds/candidates/{id}/reject
///                           drops one pending candidate.
///   GET /stats[?tenant=]    JSON: per-DTD document counts and
///                           divergence, repository size, evolution
///                           count — per tenant, plus aggregate totals
///                           and a per-tenant rollup when multi-tenant.
///   GET /metrics            Prometheus text exposition (per-shard
///                           series carry a {tenant="..."} label unless
///                           single-"default").
///   GET /healthz            200 "ok".
///
/// Lifecycle: `AddDtdText` seeds every shard (`AddTenantDtdText` one),
/// `Start` binds/recovers/spawns, `Shutdown` (async-signal-safe — wire
/// it to SIGINT/SIGTERM) requests a graceful stop, `Wait` blocks until
/// the stop completed: the listener closes, in-flight connections
/// finish, every queue drains through the loop, and the extended-DTD
/// state is snapshotted. A failed `Start` cleans up after itself fully
/// (no leaked fds, no half-recovered shards) and may be retried.
///
/// Threading: connection threads only parse and enqueue; each shard's
/// single ingest worker is the only writer of that shard's `XmlSource`.
/// Read endpoints take the same per-shard state mutex the worker holds
/// while applying a batch, so scrapes see consistent state.
class IngestServer {
 public:
  IngestServer(core::SourceOptions source_options, ServerOptions options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Registers a seed DTD on every tenant shard. Call before `Start`.
  Status AddDtdText(const std::string& name, std::string_view dtd_text);
  /// Registers a seed DTD on one tenant shard only.
  Status AddTenantDtdText(const std::string& tenant, const std::string& name,
                          std::string_view dtd_text);

  /// Binds and listens, then recovers/restores every shard (wiring the
  /// metrics), and spawns the accept loop and the shard workers. On any
  /// failure every fd and thread acquired so far is released, so a
  /// failed `Start` can simply be retried.
  Status Start();

  /// The bound port (useful with `options.port == 0`).
  uint16_t port() const { return port_; }

  /// Requests a graceful stop. Async-signal-safe (a single `write` to a
  /// self-pipe) and idempotent.
  void Shutdown();

  /// Blocks until the graceful stop finished. Returns immediately when
  /// `Start` never ran.
  void Wait();

  /// Pauses / resumes every shard's ingest worker between batches
  /// (documents keep queueing until a queue is full — useful for
  /// maintenance and for exercising backpressure deterministically). A
  /// shutdown overrides a pause so draining always completes.
  void PauseIngest();
  void ResumeIngest();

  /// Writes one atomic snapshot per DTD per shard into `snapshot_dir`.
  /// No-op without a snapshot dir. Also called by the graceful stop.
  Status SnapshotNow();

  /// Checkpoints every shard at its last applied LSN and truncates its
  /// WAL through it. No-op without a WAL. `captured_lsn` (optional)
  /// receives the LSN the checkpoint actually captured — meaningful in
  /// single-tenant mode. Called by the periodic checkpoint thread and
  /// by the graceful stop.
  Status CheckpointNow(uint64_t* captured_lsn = nullptr);

  /// What boot-time recovery found (checkpoint LSN, records replayed,
  /// torn-tail warning) for one tenant; empty = the first shard.
  /// Meaningful after `Start` with a `wal_dir`.
  const store::RecoveryReport& recovery_report(
      const std::string& tenant = "") const {
    return manager_.recovery_report(tenant);
  }

  /// Non-fatal boot findings (quarantined snapshots, torn WAL tails)
  /// across every shard — the operator-visible "warn" half of
  /// warn-and-continue.
  const std::vector<std::string>& boot_warnings() const {
    return manager_.boot_warnings();
  }

  obs::Registry& metrics() { return registry_; }

  /// The shard manager, for tests and tools that inspect per-tenant
  /// state directly.
  SourceManager& manager() { return manager_; }
  const SourceManager& manager() const { return manager_; }

  /// A shard's source (empty = the first shard). Only safe while the
  /// server is not running (before `Start` or after `Wait`); running
  /// servers serve state over HTTP instead.
  const core::XmlSource& source(const std::string& tenant = "") const {
    return *manager_.source(tenant);
  }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Route(const HttpRequest& request);
  HttpResponse HandleIngest(const HttpRequest& request);
  HttpResponse HandleTenants();
  HttpResponse HandleDtds(const HttpRequest& request);
  HttpResponse HandleInduce(const HttpRequest& request);
  HttpResponse HandleCandidates(const HttpRequest& request);
  HttpResponse HandleStats(const HttpRequest& request);
  /// Closes the listener and wake-pipe fds (if open) — the error-path
  /// unwind of `Start` and the tail of `Wait`.
  void CloseSockets();

  ServerOptions options_;
  obs::Registry registry_;
  SourceManager manager_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;
  bool started_ = false;
  std::atomic<bool> shutdown_requested_{false};

  std::thread accept_thread_;

  // Connection bookkeeping: threads are detached; Wait() blocks until
  // the count returns to zero.
  std::mutex conn_mutex_;
  std::condition_variable conn_done_cv_;
  size_t active_connections_ = 0;
};

}  // namespace dtdevolve::server

#endif  // DTDEVOLVE_SERVER_SERVER_H_
