#ifndef DTDEVOLVE_SERVER_FOLLOWER_H_
#define DTDEVOLVE_SERVER_FOLLOWER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "server/http.h"
#include "server/source_manager.h"
#include "util/status.h"

namespace dtdevolve::server {

struct FollowerConfig {
  /// Primary base URL: "http://host:port" or "host:port".
  std::string url;
  /// Tenant shards to replicate — must match the primary's tenant set
  /// (both sides are started from the same configuration).
  std::vector<std::string> tenants;
  /// Poll cadence when caught up; a follower holding a full page polls
  /// again immediately.
  std::chrono::milliseconds poll_interval{500};
  /// Requested WAL page size per poll.
  uint64_t page_bytes = 1 << 20;
  /// Error backoff ceiling. A tenant whose poll fails (transport,
  /// decode or apply) waits poll_interval, then doubles per consecutive
  /// failure up to this cap, with ±25% jitter so a fleet of replicas
  /// does not re-converge on a recovering primary in lockstep. Any
  /// successful poll resets the tenant to the plain cadence.
  std::chrono::milliseconds max_backoff{30000};
};

/// The replication client of a read replica: one background thread that,
/// per tenant, bootstraps from the primary's latest checkpoint
/// (`GET /replication/checkpoint`, applied through the same
/// `ApplyCheckpointToSource` boot recovery uses) and then tails the
/// primary's WAL (`GET /replication/wal?from_lsn=`), applying each
/// record through `SourceManager::ApplyReplicated` — the same replay
/// dispatch crash recovery runs, which is what makes replica state a
/// pure function of the primary's acked history.
///
/// Fault handling is positional, not transactional: a disconnect or a
/// torn page simply ends the batch, and the next poll resumes from the
/// replica's own applied LSN (re-delivered records are skipped
/// idempotently). A 410 from the primary means the requested LSN was
/// checkpoint-truncated — the tenant re-bootstraps from the newer
/// checkpoint.
///
/// Metrics: `dtdevolve_replication_lag_lsn` (primary head minus applied,
/// per tenant), plus applied/bootstrap/error counters.
class Follower {
 public:
  Follower(FollowerConfig config, SourceManager* manager,
           obs::Registry* registry);
  ~Follower();

  Follower(const Follower&) = delete;
  Follower& operator=(const Follower&) = delete;

  /// Parses the URL and spawns the replication thread. Fails fast on an
  /// unparseable URL; an unreachable primary is a soft error the loop
  /// keeps retrying.
  Status Start();

  /// Signals the loop and joins the thread. Idempotent.
  void Stop();

 private:
  struct TenantState {
    bool bootstrapped = false;
    /// Current error backoff (zero while healthy) and the deadline
    /// before which Loop skips this tenant's polls.
    std::chrono::milliseconds backoff{0};
    std::chrono::steady_clock::time_point next_attempt;
    obs::Gauge* lag = nullptr;
    obs::Counter* applied = nullptr;
    obs::Counter* bootstraps = nullptr;
    obs::Counter* errors = nullptr;
    obs::Gauge* backoff_gauge = nullptr;
  };

  void Loop();
  /// One poll round for one tenant; true when a full page suggests more
  /// data is immediately available (catch-up mode skips the sleep).
  bool SyncTenant(const std::string& tenant, TenantState& state);
  /// Counts the error and doubles this tenant's backoff (capped,
  /// jittered); polls before the deadline are skipped.
  void NoteSyncError(TenantState& state);
  /// Clears the backoff after any successful poll.
  void NoteSyncOk(TenantState& state);
  StatusOr<HttpClientResponse> Get(const std::string& target);
  void Disconnect();

  FollowerConfig config_;
  SourceManager* manager_;
  obs::Registry* registry_;

  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;  // keep-alive connection to the primary (loop thread only)

  std::map<std::string, TenantState> tenants_;
  std::minstd_rand rng_{std::random_device{}()};  // backoff jitter (loop thread)

  std::thread thread_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace dtdevolve::server

#endif  // DTDEVOLVE_SERVER_FOLLOWER_H_
