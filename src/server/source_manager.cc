#include "server/source_manager.h"

#include <algorithm>
#include <cstdio>

#include "dtd/dtd_writer.h"
#include "evolve/persist.h"
#include "io/file.h"
#include "store/evict_record.h"
#include "store/induce_record.h"
#include "util/crc32.h"

namespace dtdevolve::server {

namespace {

/// Virtual points per shard on the consistent-hash ring: enough that
/// adding or removing a tenant moves only ~1/N of the anonymous key
/// space, small enough that ring construction stays trivial.
constexpr int kRingPointsPerShard = 64;

bool IsSafeComponentChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
}

}  // namespace

std::string SafeFileComponent(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  bool changed = name.empty();
  for (char c : name) {
    if (IsSafeComponentChar(c)) {
      out += c;
    } else {
      out += '_';
      changed = true;
    }
  }
  if (out.empty()) out = "_";
  if (changed) {
    // Flattening is lossy ("a/b" and "a_b" both read "a_b"), so any
    // changed name carries a fingerprint of the original to keep
    // distinct names distinct on disk.
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "-%08x",
                  util::Crc32(name.data(), name.size()));
    out += suffix;
  }
  return out;
}

const char* ShardHealthName(ShardHealth health) {
  switch (health) {
    case ShardHealth::kOk:
      return "ok";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kReadOnly:
      return "read_only";
  }
  return "unknown";
}

SourceManager::SourceManager(core::SourceOptions source_options,
                             SourceManagerOptions options)
    : source_options_(std::move(source_options)),
      options_(std::move(options)) {
  if (options_.jobs == 0) options_.jobs = util::ThreadPool::DefaultJobs();
  if (options_.batch_max == 0) options_.batch_max = 1;
  if (options_.tenants.empty()) options_.tenants = {"default"};
  backcompat_ =
      options_.tenants.size() == 1 && options_.tenants[0] == "default";

  // One score cache for the whole process: entries are keyed by
  // evaluator epoch (globally unique), so shards can never read each
  // other's scores, while the memory budget is shared instead of
  // multiplied by the tenant count.
  if (source_options_.classifier.enable_score_cache &&
      source_options_.classifier.shared_cache == nullptr &&
      source_options_.classifier.score_cache_bytes > 0) {
    similarity::SubtreeScoreCache::Config config;
    config.capacity_bytes = source_options_.classifier.score_cache_bytes;
    shared_cache_ = std::make_unique<similarity::SubtreeScoreCache>(config);
    source_options_.classifier.shared_cache = shared_cache_.get();
  }

  // Likewise one classification memo: set-epochs are globally unique,
  // so one shard can never replay another's outcomes, and the dedup
  // budget is shared instead of multiplied by the tenant count.
  if (source_options_.classifier.enable_classification_memo &&
      source_options_.classifier.shared_memo == nullptr &&
      source_options_.classifier.classification_memo_bytes > 0) {
    classify::ClassificationMemo::Config memo_config;
    memo_config.capacity_bytes =
        source_options_.classifier.classification_memo_bytes;
    shared_memo_ = std::make_unique<classify::ClassificationMemo>(memo_config);
    source_options_.classifier.shared_memo = shared_memo_.get();
  }

  for (const std::string& tenant : options_.tenants) {
    if (tenant.empty() || by_name_.count(tenant) != 0) continue;
    auto shard = std::make_unique<Shard>(source_options_);
    shard->name = tenant;
    shard->dir_component = SafeFileComponent(tenant);
    // Resolve the shard's quota once: named override over process
    // default, negative override fields inheriting.
    TenantQuota quota;
    const auto quota_it = options_.tenant_quotas.find(tenant);
    if (quota_it != options_.tenant_quotas.end()) quota = quota_it->second;
    shard->rate_limit = quota.rate >= 0 ? quota.rate : options_.tenant_rate;
    shard->bucket_capacity =
        quota.burst >= 0 ? quota.burst : options_.tenant_burst;
    if (shard->rate_limit > 0 && shard->bucket_capacity <= 0) {
      shard->bucket_capacity = std::max(1.0, shard->rate_limit);
    }
    shard->tokens = shard->bucket_capacity;
    shard->max_doc_bytes = quota.max_doc_bytes >= 0
                               ? static_cast<size_t>(quota.max_doc_bytes)
                               : options_.max_doc_bytes;
    shard->max_repository_docs =
        quota.max_repository_docs >= 0
            ? static_cast<size_t>(quota.max_repository_docs)
            : options_.max_repository_docs;
    by_name_[tenant] = shard.get();
    if (tenant == "default") default_shard_ = shard.get();
    shards_.push_back(std::move(shard));
  }

  for (const auto& shard : shards_) {
    for (int i = 0; i < kRingPointsPerShard; ++i) {
      const std::string point = shard->name + "#" + std::to_string(i);
      ring_.emplace_back(util::Crc32(point.data(), point.size()),
                         shard.get());
    }
  }
  std::sort(ring_.begin(), ring_.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second->name < b.second->name;
            });
}

SourceManager::~SourceManager() { Drain(); }

Status SourceManager::AddDtdText(const std::string& name,
                                 std::string_view dtd_text) {
  for (const auto& shard : shards_) {
    DTDEVOLVE_RETURN_IF_ERROR(shard->source->AddDtdText(name, dtd_text));
    shard->seed_dtds.emplace_back(name, std::string(dtd_text));
  }
  return Status::Ok();
}

Status SourceManager::AddTenantDtdText(const std::string& tenant,
                                       const std::string& name,
                                       std::string_view dtd_text) {
  Shard* shard = FindShard(tenant);
  if (shard == nullptr) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  DTDEVOLVE_RETURN_IF_ERROR(shard->source->AddDtdText(name, dtd_text));
  shard->seed_dtds.emplace_back(name, std::string(dtd_text));
  return Status::Ok();
}

SourceManager::Shard* SourceManager::FindShard(const std::string& tenant) {
  auto it = by_name_.find(tenant);
  return it == by_name_.end() ? nullptr : it->second;
}

const SourceManager::Shard* SourceManager::FindShard(
    const std::string& tenant) const {
  auto it = by_name_.find(tenant);
  return it == by_name_.end() ? nullptr : it->second;
}

const SourceManager::Shard* SourceManager::ResolveReadShard(
    const std::string& tenant) const {
  if (!tenant.empty()) return FindShard(tenant);
  if (shards_.size() == 1) return shards_[0].get();
  return default_shard_;
}

SourceManager::Shard* SourceManager::ResolveWriteShard(
    const std::string& tenant) {
  if (!tenant.empty()) return FindShard(tenant);
  if (shards_.size() == 1) return shards_[0].get();
  return default_shard_;
}

Status SourceManager::UnresolvedTenantError(const std::string& tenant) {
  if (tenant.empty()) {
    return Status::InvalidArgument("tenant required (multi-tenant server)");
  }
  return Status::NotFound("unknown tenant '" + tenant + "'");
}

SourceManager::Shard* SourceManager::RouteIngest(const std::string& tenant,
                                                 std::string_view root_tag) {
  if (!tenant.empty()) return FindShard(tenant);
  if (shards_.size() == 1) return shards_[0].get();
  if (default_shard_ != nullptr) return default_shard_;
  // Anonymous traffic across tenants with no "default": consistent-hash
  // the root element tag, so one document population keeps landing on
  // one shard even as the tenant set changes.
  const uint32_t hash = util::Crc32(root_tag.data(), root_tag.size());
  auto it = std::lower_bound(
      ring_.begin(), ring_.end(), hash,
      [](const auto& entry, uint32_t value) { return entry.first < value; });
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

std::string SourceManager::WalDirFor(const std::string& tenant) const {
  if (options_.wal_dir.empty()) return "";
  const Shard* shard = ResolveReadShard(tenant);
  if (shard == nullptr) return "";
  if (backcompat_) return options_.wal_dir;
  return options_.wal_dir + "/" + shard->dir_component;
}

std::string SourceManager::SnapshotDirFor(const std::string& tenant) const {
  if (options_.snapshot_dir.empty()) return "";
  const Shard* shard = ResolveReadShard(tenant);
  if (shard == nullptr) return "";
  if (backcompat_) return options_.snapshot_dir;
  return options_.snapshot_dir + "/" + shard->dir_component;
}

std::string SourceManager::SnapshotPathFor(const Shard& shard,
                                           const std::string& name) const {
  std::string dir = options_.snapshot_dir;
  if (!backcompat_) dir += "/" + shard.dir_component;
  return dir + "/" + SafeFileComponent(name) + ".dtdstate";
}

void SourceManager::WireShardMetrics(Shard& shard, obs::Registry* registry) {
  if (shard.metrics_wired) return;
  shard.metrics_wired = true;
  // Backward-compatible single-"default" mode keeps the original
  // unlabeled series; every other configuration gets one series per
  // tenant plus the usual Prometheus sum() rollup on the scrape side.
  const obs::Labels labels =
      backcompat_ ? obs::Labels{} : obs::Labels{{"tenant", shard.name}};

  core::SourceMetrics metrics;
  metrics.documents_processed = &registry->GetCounter(
      "dtdevolve_documents_processed_total", "Documents fed into the loop",
      labels);
  metrics.documents_classified = &registry->GetCounter(
      "dtdevolve_documents_classified_total",
      "Documents classified into some DTD", labels);
  metrics.documents_unclassified = &registry->GetCounter(
      "dtdevolve_documents_unclassified_total",
      "Documents left to the repository", labels);
  metrics.documents_reclassified = &registry->GetCounter(
      "dtdevolve_documents_reclassified_total",
      "Repository documents recovered after evolutions", labels);
  metrics.trigger_checks = &registry->GetCounter(
      "dtdevolve_trigger_checks_total",
      "Evolution trigger (tau or rule) evaluations", labels);
  metrics.evolutions = &registry->GetCounter(
      "dtdevolve_evolutions_total", "DTD evolutions fired", labels);
  metrics.documents_scored = &registry->GetCounter(
      "dtdevolve_documents_scored_total",
      "Documents scored against the DTD set", labels);
  metrics.similarity_evaluations = &registry->GetCounter(
      "dtdevolve_similarity_evaluations_total",
      "Document x DTD similarity evaluations", labels);
  metrics.evaluations_pruned = &registry->GetCounter(
      "dtdevolve_classify_pruned_total",
      "Document x DTD evaluations skipped by the score upper bound", labels);
  metrics.score_seconds = &registry->GetHistogram(
      "dtdevolve_score_seconds",
      "Wall-clock seconds scoring one document against the full DTD set",
      obs::Histogram::DefaultLatencyBounds(), labels);
  metrics.documents_recorded = &registry->GetCounter(
      "dtdevolve_documents_recorded_total",
      "Documents recorded into extended DTDs", labels);
  metrics.elements_recorded = &registry->GetCounter(
      "dtdevolve_elements_recorded_total",
      "Element instances recorded into extended DTDs", labels);
  metrics.candidates_proposed = &registry->GetCounter(
      "dtdevolve_candidates_proposed_total",
      "Candidate DTDs induced from repository clusters", labels);
  metrics.candidates_accepted = &registry->GetCounter(
      "dtdevolve_candidates_accepted_total",
      "Candidate DTDs promoted into the live set", labels);
  metrics.candidates_rejected = &registry->GetCounter(
      "dtdevolve_candidates_rejected_total",
      "Candidate DTDs rejected by the operator", labels);
  shard.source_metrics = metrics;
  shard.source->set_metrics(metrics);

  shard.requests_rejected = &registry->GetCounter(
      "dtdevolve_ingest_rejected_total",
      "Ingest requests rejected with 503 (queue full)", labels);
  shard.rate_limited = &registry->GetCounter(
      "dtdevolve_ingest_rate_limited_total",
      "Ingest requests rejected with 429 (token bucket empty)", labels);
  shard.doc_too_large = &registry->GetCounter(
      "dtdevolve_ingest_doc_too_large_total",
      "Ingest requests rejected with 413 (body over the document-size "
      "quota)",
      labels);
  shard.evictions = &registry->GetCounter(
      "dtdevolve_repository_evictions_total",
      "Repository documents evicted to enforce the repository quota",
      labels);
  shard.read_only_rejected = &registry->GetCounter(
      "dtdevolve_ingest_read_only_rejected_total",
      "Ingest requests rejected while the shard was read-only", labels);
  shard.queue_depth = &registry->GetGauge(
      "dtdevolve_ingest_queue_depth",
      "Documents waiting in the ingest queue", labels);
  shard.ingest_seconds = &registry->GetHistogram(
      "dtdevolve_ingest_seconds",
      "Seconds from enqueue to applied, per document",
      obs::Histogram::DefaultLatencyBounds(), labels);
  shard.batch_seconds = &registry->GetHistogram(
      "dtdevolve_ingest_batch_seconds",
      "Seconds spent in one ProcessBatch round",
      obs::Histogram::DefaultLatencyBounds(), labels);
  shard.degraded = &registry->GetGauge(
      "dtdevolve_degraded",
      "1 while ingest is rejected because the write-ahead log cannot be "
      "written (e.g. disk full), 0 otherwise",
      labels);
  shard.checkpoints = &registry->GetCounter(
      "dtdevolve_checkpoints_total", "Checkpoints written successfully",
      labels);
  shard.checkpoint_errors = &registry->GetCounter(
      "dtdevolve_checkpoint_errors_total", "Checkpoint attempts that failed",
      labels);
  shard.checkpoint_lsn_gauge = &registry->GetGauge(
      "dtdevolve_checkpoint_lsn", "LSN of the last durable checkpoint",
      labels);
  shard.snapshots_quarantined = &registry->GetCounter(
      "dtdevolve_snapshots_quarantined_total",
      "Corrupt snapshots renamed aside at boot", labels);
}

Status SourceManager::RestoreShardSnapshots(Shard& shard) {
  if (options_.snapshot_dir.empty() || shard.snapshots_restored) {
    return Status::Ok();
  }
  shard.snapshots_restored = true;
  for (const std::string& name : shard.source->DtdNames()) {
    const std::string path = SnapshotPathFor(shard, name);
    StatusOr<evolve::ExtendedDtd> restored = evolve::LoadExtendedDtdFile(path);
    if (!restored.ok()) {
      // A missing snapshot is the normal first boot.
      if (restored.status().code() == Status::Code::kNotFound) continue;
      // A truncated or corrupt snapshot must not take the whole server
      // down — quarantine it aside (preserving the evidence), count it,
      // warn, and continue from the seed DTD.
      Status moved = io::Rename(path, path + ".corrupt");
      std::string warning = "quarantined corrupt snapshot " + path + " (" +
                            restored.status().message() + ")";
      if (!moved.ok()) warning += "; quarantine rename failed";
      if (!backcompat_) warning = "tenant " + shard.name + ": " + warning;
      boot_warnings_.push_back(std::move(warning));
      if (shard.snapshots_quarantined != nullptr) {
        shard.snapshots_quarantined->Increment();
      }
      continue;
    }
    DTDEVOLVE_RETURN_IF_ERROR(
        shard.source->RestoreExtended(name, std::move(*restored)));
  }
  return Status::Ok();
}

Status SourceManager::StartShard(Shard& shard, obs::Registry* registry) {
  WireShardMetrics(shard, registry);

  if (!options_.snapshot_dir.empty() && !backcompat_) {
    DTDEVOLVE_RETURN_IF_ERROR(
        io::CreateDir(options_.snapshot_dir + "/" + shard.dir_component));
  }

  if (!options_.wal_dir.empty()) {
    if (!shard.recovered) {
      store::WalOptions wal_options;
      wal_options.dir = backcompat_
                            ? options_.wal_dir
                            : options_.wal_dir + "/" + shard.dir_component;
      wal_options.fsync_policy = options_.fsync_policy;
      wal_options.fsync_interval = options_.fsync_interval;
      wal_options.segment_bytes = options_.wal_segment_bytes;
      shard.recovery_report = {};
      StatusOr<std::unique_ptr<store::Wal>> wal = store::RecoverSource(
          *shard.source, wal_options, &shard.recovery_report);
      if (!wal.ok()) return wal.status();
      shard.wal = std::move(*wal);
      // Recovery ran exactly once for this shard — a retried Start must
      // not replay the WAL tail onto the already-recovered source.
      shard.recovered = true;

      const obs::Labels labels =
          backcompat_ ? obs::Labels{} : obs::Labels{{"tenant", shard.name}};
      store::WalMetrics wal_metrics;
      wal_metrics.appends = &registry->GetCounter(
          "dtdevolve_wal_appends_total", "WAL records appended", labels);
      wal_metrics.append_bytes = &registry->GetCounter(
          "dtdevolve_wal_append_bytes_total", "WAL bytes appended", labels);
      wal_metrics.append_errors = &registry->GetCounter(
          "dtdevolve_wal_append_errors_total", "WAL appends that failed",
          labels);
      wal_metrics.fsyncs = &registry->GetCounter(
          "dtdevolve_wal_fsyncs_total", "WAL fsync calls", labels);
      wal_metrics.rotations = &registry->GetCounter(
          "dtdevolve_wal_rotations_total", "WAL segment rotations", labels);
      wal_metrics.truncated_segments = &registry->GetCounter(
          "dtdevolve_wal_truncated_segments_total",
          "WAL segments dropped by checkpoint truncation", labels);
      shard.wal->set_metrics(wal_metrics);
      registry
          ->GetCounter("dtdevolve_wal_replayed_records_total",
                       "WAL records replayed during boot recovery", labels)
          .Increment(shard.recovery_report.replayed_records);
      shard.applied_lsn = shard.recovery_report.last_applied_lsn;
      shard.last_checkpoint_lsn = shard.recovery_report.checkpoint_lsn;
      shard.checkpoint_lsn_gauge->Set(
          static_cast<double>(shard.recovery_report.checkpoint_lsn));
      if (!shard.recovery_report.warning.empty()) {
        std::string warning = shard.recovery_report.warning;
        if (!backcompat_) warning = "tenant " + shard.name + ": " + warning;
        boot_warnings_.push_back(std::move(warning));
      }
    }
  } else {
    DTDEVOLVE_RETURN_IF_ERROR(RestoreShardSnapshots(shard));
  }
  return Status::Ok();
}

Status SourceManager::Start(obs::Registry* registry) {
  if (started_) {
    return Status::FailedPrecondition("source manager already started");
  }

  if (!options_.snapshot_dir.empty()) {
    // Snapshots are written lazily (shutdown / SnapshotNow); create the
    // directories up front so a missing one fails the boot loudly
    // instead of the final snapshot silently.
    DTDEVOLVE_RETURN_IF_ERROR(io::CreateDir(options_.snapshot_dir));
  }
  if (!options_.wal_dir.empty() && !backcompat_) {
    // Per-shard WAL subdirectories hang off the root; Wal::Open creates
    // the leaf itself.
    DTDEVOLVE_RETURN_IF_ERROR(io::CreateDir(options_.wal_dir));
  }

  registry
      ->GetGauge("dtdevolve_ingest_queue_capacity",
                 "Configured ingest queue bound")
      .Set(static_cast<double>(options_.queue_capacity));
  registry
      ->GetGauge("dtdevolve_tenants", "Number of tenant shards")
      .Set(static_cast<double>(shards_.size()));
  if (shared_cache_ != nullptr) {
    // The cache is process-wide, so its traffic counters are global —
    // wired once here, never per shard (see Classifier::set_metrics).
    shared_cache_->set_metrics(
        &registry->GetCounter("dtdevolve_score_cache_hits_total",
                              "Shared subtree score cache hits"),
        &registry->GetCounter("dtdevolve_score_cache_misses_total",
                              "Shared subtree score cache misses"),
        &registry->GetCounter("dtdevolve_score_cache_evictions_total",
                              "Shared subtree score cache LRU evictions"));
  }
  if (shared_memo_ != nullptr) {
    shared_memo_->set_metrics(
        &registry->GetCounter("dtdevolve_classification_memo_hits_total",
                              "Shared classification memo hits"),
        &registry->GetCounter("dtdevolve_classification_memo_misses_total",
                              "Shared classification memo misses"),
        &registry->GetCounter("dtdevolve_classification_memo_evictions_total",
                              "Shared classification memo LRU evictions"));
  }

  for (const auto& shard : shards_) {
    DTDEVOLVE_RETURN_IF_ERROR(StartShard(*shard, registry));
  }

  pool_.emplace(options_.jobs);
  checkpoint_stop_ = false;
  for (const auto& shard : shards_) {
    shard->draining = false;
    shard->worker = std::thread([this, s = shard.get()] { IngestWorker(*s); });
  }
  if (!options_.wal_dir.empty() && options_.checkpoint_interval.count() > 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  if (!options_.wal_dir.empty() &&
      options_.health_probe_interval.count() > 0) {
    health_stop_ = false;
    health_thread_ = std::thread([this] { HealthProbeLoop(); });
  }
  started_ = true;
  return Status::Ok();
}

void SourceManager::PauseIngest() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->queue_mutex);
    shard->paused = true;
  }
}

void SourceManager::ResumeIngest() {
  for (const auto& shard : shards_) {
    {
      std::lock_guard<std::mutex> lock(shard->queue_mutex);
      shard->paused = false;
    }
    shard->queue_cv.notify_all();
  }
}

SourceManager::EnqueueResult SourceManager::Enqueue(
    const std::string& tenant, xml::Document doc, const std::string& raw_body,
    bool wait) {
  const std::string root_tag =
      doc.has_root() ? doc.root().tag() : std::string();
  PendingDoc pending;
  pending.doc = std::move(doc);
  return EnqueuePending(tenant, std::move(pending), root_tag, raw_body, wait);
}

SourceManager::EnqueueResult SourceManager::Enqueue(
    const std::string& tenant, xml::ArenaDocument doc,
    const std::string& raw_body, bool wait) {
  const std::string root_tag =
      doc.has_root() ? std::string(doc.root().tag) : std::string();
  PendingDoc pending;
  pending.arena.emplace(std::move(doc));
  return EnqueuePending(tenant, std::move(pending), root_tag, raw_body, wait);
}

SourceManager::EnqueueResult SourceManager::EnqueuePending(
    const std::string& tenant, PendingDoc pending, std::string_view root_tag,
    const std::string& raw_body, bool wait) {
  EnqueueResult result;
  Shard* shard = RouteIngest(tenant, root_tag);
  if (shard == nullptr) {
    result.code = EnqueueCode::kUnknownTenant;
    result.tenant = tenant;
    return result;
  }
  result.tenant = shard->name;

  pending.enqueued = std::chrono::steady_clock::now();
  if (wait) pending.waiter = std::make_shared<IngestWaiter>();
  result.waiter = pending.waiter;

  {
    // Spans capacity check → WAL append → enqueue: concurrent ingests
    // into THIS shard serialize here, so its queue (and therefore its
    // apply order) is exactly its LSN order — the invariant WAL replay
    // depends on. Other shards' ingests proceed in parallel.
    std::lock_guard<std::mutex> order(shard->ingest_order_mutex);
    if (shard->health.load(std::memory_order_relaxed) ==
        static_cast<int>(ShardHealth::kReadOnly)) {
      // Appends failed repeatedly; stop hammering the dead disk. The
      // recovery probe flips the shard back once an append succeeds.
      shard->read_only_rejected->Increment();
      result.code = EnqueueCode::kReadOnly;
      result.waiter = nullptr;
      return result;
    }
    if (shard->rate_limit > 0) {
      // Token bucket: refill at `rate_limit` docs/sec up to the burst
      // capacity; one whole token admits one document.
      const auto now = std::chrono::steady_clock::now();
      if (shard->bucket_refilled.time_since_epoch().count() != 0) {
        const double elapsed =
            std::chrono::duration<double>(now - shard->bucket_refilled)
                .count();
        shard->tokens = std::min(shard->bucket_capacity,
                                 shard->tokens + elapsed * shard->rate_limit);
      }
      shard->bucket_refilled = now;
      if (shard->tokens < 1.0) {
        shard->rate_limited->Increment();
        result.code = EnqueueCode::kRateLimited;
        result.waiter = nullptr;
        return result;
      }
      shard->tokens -= 1.0;
    }
    {
      std::lock_guard<std::mutex> lock(shard->queue_mutex);
      if (shard->queue.size() >= options_.queue_capacity) {
        shard->requests_rejected->Increment();
        result.code = EnqueueCode::kQueueFull;
        result.waiter = nullptr;
        return result;
      }
    }
    if (shard->wal != nullptr) {
      // The ack contract: the record is in the log (fsynced under the
      // `always` policy) before any 2xx leaves the server. When the
      // disk says no, the document is NOT acked — the caller answers
      // 503 so the client retries, and the degraded gauge flags the
      // condition until an append succeeds again.
      StatusOr<uint64_t> lsn = shard->wal->Append(raw_body);
      if (!lsn.ok()) {
        NoteWalFailure(*shard);
        shard->requests_rejected->Increment();
        result.code = EnqueueCode::kWalError;
        result.error = lsn.status().message();
        result.waiter = nullptr;
        return result;
      }
      NoteWalSuccess(*shard);
      pending.lsn = *lsn;
    }
    {
      std::lock_guard<std::mutex> lock(shard->queue_mutex);
      shard->queue.push_back(std::move(pending));
      shard->queue_depth->Set(static_cast<double>(shard->queue.size()));
    }
  }
  shard->queue_cv.notify_all();
  return result;
}

void SourceManager::IngestWorker(Shard& shard) {
  for (;;) {
    std::vector<PendingDoc> pending;
    {
      std::unique_lock<std::mutex> lock(shard.queue_mutex);
      shard.queue_cv.wait(lock, [&shard] {
        return shard.draining || (!shard.paused && !shard.queue.empty());
      });
      if (shard.queue.empty() && shard.draining) return;
      const size_t take = std::min(shard.queue.size(), options_.batch_max);
      pending.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        pending.push_back(std::move(shard.queue.front()));
        shard.queue.pop_front();
      }
      shard.queue_depth->Set(static_cast<double>(shard.queue.size()));
    }
    if (!pending.empty()) ProcessPending(shard, std::move(pending));
  }
}

void SourceManager::ProcessPending(Shard& shard,
                                   std::vector<PendingDoc> pending) {
  // All-arena batches (the streaming default) drain through the
  // memo-first arena ProcessBatch; a mixed or DOM batch falls back to
  // the DOM path, converting any stray arena documents. Outcomes are
  // identical either way.
  bool all_arena = !pending.empty();
  for (const PendingDoc& item : pending) {
    if (!item.arena.has_value()) {
      all_arena = false;
      break;
    }
  }

  const auto batch_start = std::chrono::steady_clock::now();
  std::vector<core::XmlSource::ProcessOutcome> outcomes;
  {
    std::lock_guard<std::mutex> lock(shard.state_mutex);
    if (all_arena) {
      std::vector<xml::ArenaDocument> docs;
      docs.reserve(pending.size());
      for (PendingDoc& item : pending) docs.push_back(std::move(*item.arena));
      outcomes = shard.source->ProcessBatch(std::move(docs),
                                            pool_ ? &*pool_ : nullptr);
    } else {
      std::vector<xml::Document> docs;
      docs.reserve(pending.size());
      for (PendingDoc& item : pending) {
        docs.push_back(item.arena.has_value() ? item.arena->ToDocument()
                                              : std::move(item.doc));
      }
      outcomes = shard.source->ProcessBatch(std::move(docs),
                                            pool_ ? &*pool_ : nullptr);
    }
    for (const core::XmlSource::ProcessOutcome& outcome : outcomes) {
      if (outcome.classified) ++shard.ingested_per_dtd[outcome.dtd_name];
      if (outcome.evolved) ++shard.evolutions_per_dtd[outcome.dtd_name];
    }
    for (const PendingDoc& item : pending) {
      if (item.lsn > shard.applied_lsn) shard.applied_lsn = item.lsn;
    }
    // Eviction records and recovery probes get LSNs out of band (they
    // are applied at append time, not through the queue); fold any that
    // became contiguous into the watermark so checkpoints cover them.
    AbsorbAppliedLsn(shard, shard.applied_lsn);
    // Auto-induction proposes — it never accepts. Gated on "no pending
    // candidates" so a threshold-sized repository doesn't re-cluster on
    // every batch while the operator deliberates.
    if (options_.auto_induce_threshold > 0 &&
        shard.source->repository().size() >= options_.auto_induce_threshold &&
        shard.source->candidates().empty()) {
      shard.source->InduceCandidates();
    }
  }
  EnforceRepositoryQuota(shard);
  const auto now = std::chrono::steady_clock::now();
  shard.batch_seconds->Observe(
      std::chrono::duration<double>(now - batch_start).count());

  for (size_t i = 0; i < pending.size(); ++i) {
    shard.ingest_seconds->Observe(
        std::chrono::duration<double>(now - pending[i].enqueued).count());
    if (pending[i].waiter != nullptr) {
      IngestWaiter& waiter = *pending[i].waiter;
      std::function<void()> on_done;
      {
        std::lock_guard<std::mutex> lock(waiter.mutex);
        waiter.outcome = outcomes[i];
        waiter.done = true;
        // The callback runs outside the lock: it typically re-enters the
        // server (completion queue + wake pipe) and must not hold the
        // waiter mutex a blocked `cv` waiter also needs.
        on_done = std::move(waiter.on_done);
        waiter.cv.notify_all();
      }
      if (on_done) on_done();
    }
  }
}

Status SourceManager::CheckpointShard(Shard& shard, uint64_t* captured_lsn) {
  if (shard.wal == nullptr) return Status::Ok();
  // One checkpoint of this shard at a time (periodic thread vs explicit
  // CheckpointTenant calls); the state mutex is still taken only for
  // the in-memory capture, so ingest is not stalled for the I/O.
  std::lock_guard<std::mutex> io(shard.checkpoint_mutex);
  store::CheckpointData data;
  {
    std::lock_guard<std::mutex> lock(shard.state_mutex);
    data = store::CaptureCheckpoint(*shard.source, shard.applied_lsn);
  }
  const std::string dir = backcompat_
                              ? options_.wal_dir
                              : options_.wal_dir + "/" + shard.dir_component;
  Status written = store::WriteCheckpoint(dir, data);
  if (written.ok()) written = shard.wal->TruncateThrough(data.lsn);
  if (!written.ok()) {
    if (shard.checkpoint_errors != nullptr) {
      shard.checkpoint_errors->Increment();
    }
    return written;
  }
  if (shard.checkpoints != nullptr) shard.checkpoints->Increment();
  if (shard.checkpoint_lsn_gauge != nullptr) {
    shard.checkpoint_lsn_gauge->Set(static_cast<double>(data.lsn));
  }
  if (data.lsn > shard.last_checkpoint_lsn) {
    shard.last_checkpoint_lsn = data.lsn;
  }
  // Report the LSN the checkpoint *captured* — not whatever the caller
  // sampled before calling. Ingest racing the capture can move
  // applied_lsn past the sample, and tracking the sample would make the
  // next periodic round re-checkpoint state that never moved.
  if (captured_lsn != nullptr) *captured_lsn = data.lsn;
  return Status::Ok();
}

void SourceManager::CheckpointLoop() {
  std::unique_lock<std::mutex> lock(checkpoint_wake_mutex_);
  for (;;) {
    checkpoint_wake_cv_.wait_for(lock, options_.checkpoint_interval,
                                 [this] { return checkpoint_stop_; });
    if (checkpoint_stop_) return;
    lock.unlock();
    for (const auto& shard : shards_) {
      if (shard->wal == nullptr) continue;
      uint64_t applied = 0;
      {
        std::lock_guard<std::mutex> state(shard->state_mutex);
        applied = shard->applied_lsn;
      }
      uint64_t last = 0;
      {
        std::lock_guard<std::mutex> io(shard->checkpoint_mutex);
        last = shard->last_checkpoint_lsn;
      }
      // Checkpoints are only worth their I/O when the state moved; a
      // failed attempt is counted and retried next round.
      // CheckpointShard advances last_checkpoint_lsn to the LSN it
      // actually captured, so an ingest racing the capture never causes
      // a redundant extra checkpoint next interval.
      if (applied > last) CheckpointShard(*shard, nullptr);
    }
    lock.lock();
  }
}

void SourceManager::NoteWalFailure(Shard& shard) {
  const uint64_t failures =
      shard.wal_failures.fetch_add(1, std::memory_order_relaxed) + 1;
  // One failed append is a degraded shard (clients should retry); three
  // in a row with no success in between means the disk is gone for now,
  // and writes are refused up front instead of hammering it.
  const int next = failures >= 3 ? static_cast<int>(ShardHealth::kReadOnly)
                                 : static_cast<int>(ShardHealth::kDegraded);
  shard.health.store(next, std::memory_order_relaxed);
  if (shard.degraded != nullptr) shard.degraded->Set(next);
}

void SourceManager::NoteWalSuccess(Shard& shard) {
  shard.wal_failures.store(0, std::memory_order_relaxed);
  if (shard.health.exchange(static_cast<int>(ShardHealth::kOk),
                            std::memory_order_relaxed) !=
      static_cast<int>(ShardHealth::kOk)) {
    if (shard.degraded != nullptr) shard.degraded->Set(0);
  }
}

void SourceManager::AbsorbAppliedLsn(Shard& shard, uint64_t lsn) {
  // Caller holds state_mutex. Out-of-band LSNs (evictions, probes) park
  // in applied_ahead until every record below them has been applied;
  // only a contiguous prefix may move the checkpointable watermark, or
  // a checkpoint could claim coverage of still-queued documents.
  if (lsn > shard.applied_lsn) shard.applied_ahead.insert(lsn);
  auto it = shard.applied_ahead.begin();
  while (it != shard.applied_ahead.end()) {
    if (*it <= shard.applied_lsn) {
      it = shard.applied_ahead.erase(it);
    } else if (*it == shard.applied_lsn + 1) {
      shard.applied_lsn = *it;
      it = shard.applied_ahead.erase(it);
    } else {
      break;
    }
  }
}

void SourceManager::EnforceRepositoryQuota(Shard& shard) {
  if (shard.max_repository_docs == 0) return;
  std::vector<int> victims;
  {
    std::lock_guard<std::mutex> state(shard.state_mutex);
    const classify::Repository& repo = shard.source->repository();
    if (repo.size() <= shard.max_repository_docs) return;
    const size_t excess = repo.size() - shard.max_repository_docs;
    std::vector<int> ids = repo.Ids();
    // kEvictOldest drops the head of the repository (lowest ids);
    // kRejectNew keeps the established set and drops the newcomers.
    if (options_.repository_policy == RepositoryQuotaPolicy::kEvictOldest) {
      victims.assign(ids.begin(), ids.begin() + excess);
    } else {
      victims.assign(ids.end() - excess, ids.end());
    }
  }
  uint64_t evict_lsn = 0;
  if (shard.wal != nullptr) {
    if (shard.health.load(std::memory_order_relaxed) ==
        static_cast<int>(ShardHealth::kReadOnly)) {
      return;  // no log, no eviction — retried after the shard recovers
    }
    // Log before evicting: recovery replays the same explicit ids, so
    // the recovered repository matches the live one even though the
    // eviction raced queued (lower-LSN) documents. Ids absent at replay
    // are skipped, which also makes re-application after a checkpoint
    // a no-op.
    StatusOr<uint64_t> lsn =
        shard.wal->Append(store::EncodeEvictRecord(victims));
    if (!lsn.ok()) {
      NoteWalFailure(shard);
      return;
    }
    NoteWalSuccess(shard);
    evict_lsn = *lsn;
  }
  {
    std::lock_guard<std::mutex> state(shard.state_mutex);
    const size_t evicted = shard.source->EvictRepositoryDocs(victims);
    if (shard.evictions != nullptr && evicted > 0) {
      shard.evictions->Increment(static_cast<double>(evicted));
    }
    if (evict_lsn != 0) AbsorbAppliedLsn(shard, evict_lsn);
  }
}

void SourceManager::HealthProbeLoop() {
  std::unique_lock<std::mutex> lock(health_wake_mutex_);
  for (;;) {
    health_wake_cv_.wait_for(lock, options_.health_probe_interval,
                             [this] { return health_stop_; });
    if (health_stop_) return;
    lock.unlock();
    for (const auto& shard : shards_) {
      if (shard->wal == nullptr) continue;
      if (shard->health.load(std::memory_order_relaxed) ==
          static_cast<int>(ShardHealth::kOk)) {
        continue;
      }
      // The probe is an empty eviction record: a real append through
      // the full WAL path (rotate/truncate self-healing included) that
      // replays as a no-op. Success proves writes work again and
      // reopens the shard.
      StatusOr<uint64_t> lsn =
          shard->wal->Append(store::EncodeEvictRecord({}));
      if (lsn.ok()) {
        NoteWalSuccess(*shard);
        std::lock_guard<std::mutex> state(shard->state_mutex);
        AbsorbAppliedLsn(*shard, *lsn);
      } else {
        shard->health.store(static_cast<int>(ShardHealth::kReadOnly),
                            std::memory_order_relaxed);
        if (shard->degraded != nullptr) {
          shard->degraded->Set(static_cast<int>(ShardHealth::kReadOnly));
        }
      }
    }
    lock.lock();
  }
}

bool SourceManager::AdmitDocSize(const std::string& tenant, size_t bytes) {
  Shard* shard = ResolveWriteShard(tenant);
  if (shard == nullptr) {
    // Unroutable traffic is still bounded by the process-wide default so
    // an unknown tenant cannot make the server buffer an oversized body.
    return options_.max_doc_bytes == 0 || bytes <= options_.max_doc_bytes;
  }
  if (shard->max_doc_bytes != 0 && bytes > shard->max_doc_bytes) {
    shard->doc_too_large->Increment();
    return false;
  }
  return true;
}

std::vector<SourceManager::ShardHealthInfo> SourceManager::HealthReport()
    const {
  std::vector<ShardHealthInfo> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardHealthInfo info;
    info.tenant = shard->name;
    info.health = static_cast<ShardHealth>(
        shard->health.load(std::memory_order_relaxed));
    out.push_back(std::move(info));
  }
  return out;
}

bool SourceManager::AllShardsOk() const {
  for (const auto& shard : shards_) {
    if (shard->health.load(std::memory_order_relaxed) !=
        static_cast<int>(ShardHealth::kOk)) {
      return false;
    }
  }
  return true;
}

Status SourceManager::CheckpointTenant(const std::string& tenant,
                                       uint64_t* captured_lsn) {
  Shard* shard = FindShard(tenant.empty() && !shards_.empty()
                               ? shards_[0]->name
                               : tenant);
  if (shard == nullptr) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  return CheckpointShard(*shard, captured_lsn);
}

Status SourceManager::CheckpointAll(uint64_t* captured_lsn) {
  Status first_error;
  for (const auto& shard : shards_) {
    Status status = CheckpointShard(*shard, captured_lsn);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

StatusOr<size_t> SourceManager::InduceTenant(const std::string& tenant) {
  Shard* shard = ResolveWriteShard(tenant);
  if (shard == nullptr) return UnresolvedTenantError(tenant);
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  return shard->source->InduceCandidates();
}

StatusOr<std::vector<SourceManager::CandidateInfo>>
SourceManager::CandidatesFor(const std::string& tenant) const {
  const Shard* shard = ResolveReadShard(tenant);
  if (shard == nullptr) return UnresolvedTenantError(tenant);
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  std::vector<CandidateInfo> out;
  out.reserve(shard->source->candidates().size());
  for (const induce::Candidate& candidate : shard->source->candidates()) {
    CandidateInfo info;
    info.id = candidate.id;
    info.name = candidate.name;
    info.members = candidate.members.size();
    info.validated = candidate.validated.size();
    info.coverage = candidate.coverage;
    info.margin = candidate.margin;
    info.dtd_text = dtd::WriteDtd(candidate.ext.dtd());
    out.push_back(std::move(info));
  }
  return out;
}

StatusOr<core::XmlSource::AcceptOutcome> SourceManager::AcceptCandidate(
    const std::string& tenant, uint64_t id) {
  Shard* shard = ResolveWriteShard(tenant);
  if (shard == nullptr) return UnresolvedTenantError(tenant);

  // The accept must land in the WAL *and* in the source at the same
  // position relative to ingested documents, or replay diverges from
  // the live run. Holding the ingest-order mutex stops new appends;
  // waiting for applied_lsn to catch up with the log flushes everything
  // already acked through the worker. Only then is "append the record,
  // apply the accept" the same sequence replay will see.
  std::lock_guard<std::mutex> order(shard->ingest_order_mutex);
  if (shard->wal != nullptr) {
    const uint64_t last_acked = shard->wal->next_lsn() - 1;
    for (;;) {
      {
        std::lock_guard<std::mutex> state(shard->state_mutex);
        if (shard->applied_lsn >= last_acked) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  std::lock_guard<std::mutex> state(shard->state_mutex);
  const induce::Candidate* candidate = shard->source->FindCandidate(id);
  if (candidate == nullptr) {
    return Status::NotFound("unknown candidate id " + std::to_string(id));
  }
  if (shard->wal != nullptr) {
    const std::string record =
        store::EncodeInduceAcceptRecord(candidate->name, candidate->ext);
    StatusOr<uint64_t> lsn = shard->wal->Append(record);
    if (!lsn.ok()) {
      NoteWalFailure(*shard);
      return lsn.status();
    }
    NoteWalSuccess(*shard);
    shard->applied_lsn = *lsn;
  }
  return shard->source->AcceptCandidate(id, options_.jobs);
}

Status SourceManager::RejectCandidate(const std::string& tenant, uint64_t id) {
  Shard* shard = ResolveWriteShard(tenant);
  if (shard == nullptr) return UnresolvedTenantError(tenant);
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  return shard->source->RejectCandidate(id);
}

Status SourceManager::SnapshotShard(Shard& shard) {
  std::lock_guard<std::mutex> lock(shard.state_mutex);
  for (const std::string& name : shard.source->DtdNames()) {
    DTDEVOLVE_RETURN_IF_ERROR(evolve::SaveExtendedDtdFile(
        *shard.source->FindExtended(name), SnapshotPathFor(shard, name)));
  }
  return Status::Ok();
}

Status SourceManager::SnapshotNow() {
  if (options_.snapshot_dir.empty()) return Status::Ok();
  Status first_error;
  for (const auto& shard : shards_) {
    Status status = SnapshotShard(*shard);
    if (!status.ok() && first_error.ok()) first_error = status;
  }
  return first_error;
}

void SourceManager::Drain() {
  if (started_) {
    for (const auto& shard : shards_) {
      {
        std::lock_guard<std::mutex> lock(shard->queue_mutex);
        shard->paused = false;
        shard->draining = true;
      }
      shard->queue_cv.notify_all();
    }
    for (const auto& shard : shards_) {
      if (shard->worker.joinable()) shard->worker.join();
    }

    {
      std::lock_guard<std::mutex> lock(checkpoint_wake_mutex_);
      checkpoint_stop_ = true;
    }
    checkpoint_wake_cv_.notify_all();
    if (checkpoint_thread_.joinable()) checkpoint_thread_.join();

    {
      std::lock_guard<std::mutex> lock(health_wake_mutex_);
      health_stop_ = true;
    }
    health_wake_cv_.notify_all();
    if (health_thread_.joinable()) health_thread_.join();

    for (const auto& shard : shards_) {
      if (shard->wal == nullptr) continue;
      if (options_.checkpoint_on_shutdown) {
        CheckpointShard(*shard, nullptr);
      } else {
        // Crash-simulation mode: leave only the log behind, but make
        // sure everything acked under a lazy fsync policy reaches the
        // disk.
        shard->wal->Sync();
      }
    }
    SnapshotNow();

    if (pool_) pool_->Shutdown();
    started_ = false;
  }
}

std::vector<std::string> SourceManager::TenantNames() const {
  std::vector<std::string> names;
  names.reserve(shards_.size());
  for (const auto& shard : shards_) names.push_back(shard->name);
  return names;
}

bool SourceManager::HasTenant(const std::string& tenant) const {
  return by_name_.count(tenant) != 0;
}

StatusOr<std::vector<std::string>> SourceManager::DtdNamesFor(
    const std::string& tenant) const {
  const Shard* shard = ResolveReadShard(tenant);
  if (shard == nullptr) {
    if (tenant.empty()) {
      return Status::InvalidArgument("tenant required (multi-tenant server)");
    }
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  return shard->source->DtdNames();
}

StatusOr<std::string> SourceManager::DtdTextFor(const std::string& tenant,
                                                const std::string& name) const {
  const Shard* shard = ResolveReadShard(tenant);
  if (shard == nullptr) {
    if (tenant.empty()) {
      return Status::InvalidArgument("tenant required (multi-tenant server)");
    }
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  const dtd::Dtd* dtd = shard->source->FindDtd(name);
  if (dtd == nullptr) {
    return Status::NotFound("unknown DTD '" + name + "'");
  }
  return dtd::WriteDtd(*dtd);
}

StatusOr<SourceManager::TenantStats> SourceManager::StatsFor(
    const std::string& tenant) const {
  const Shard* shard = ResolveReadShard(tenant);
  if (shard == nullptr) {
    if (tenant.empty()) {
      return Status::InvalidArgument("tenant required (multi-tenant server)");
    }
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  TenantStats stats;
  stats.tenant = shard->name;
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  stats.documents_processed = shard->source->documents_processed();
  stats.documents_classified = shard->source->documents_classified();
  stats.repository_size = shard->source->repository().size();
  stats.evolutions_performed = shard->source->evolutions_performed();
  const induce::ClusterStats clusters = shard->source->cluster_stats();
  stats.cluster_count = clusters.clusters;
  stats.largest_cluster = clusters.largest_cluster;
  stats.candidates_pending = shard->source->candidates().size();
  stats.candidates_proposed = shard->source->candidates_proposed();
  stats.candidates_accepted = shard->source->candidates_accepted();
  stats.candidates_rejected = shard->source->candidates_rejected();
  for (const std::string& name : shard->source->DtdNames()) {
    const evolve::ExtendedDtd* ext = shard->source->FindExtended(name);
    TenantDtdStats dtd_stats;
    dtd_stats.name = name;
    dtd_stats.documents_recorded = ext->documents_recorded();
    dtd_stats.mean_divergence = ext->MeanDivergence();
    auto ingested = shard->ingested_per_dtd.find(name);
    if (ingested != shard->ingested_per_dtd.end()) {
      dtd_stats.documents_ingested = ingested->second;
    }
    auto evolved = shard->evolutions_per_dtd.find(name);
    if (evolved != shard->evolutions_per_dtd.end()) {
      dtd_stats.evolutions = evolved->second;
    }
    stats.dtds.push_back(std::move(dtd_stats));
  }
  return stats;
}

std::vector<SourceManager::TenantStats> SourceManager::AllStats() const {
  std::vector<TenantStats> all;
  all.reserve(shards_.size());
  for (const auto& shard : shards_) {
    StatusOr<TenantStats> stats = StatsFor(shard->name);
    if (stats.ok()) all.push_back(std::move(*stats));
  }
  return all;
}

const store::RecoveryReport& SourceManager::recovery_report(
    const std::string& tenant) const {
  static const store::RecoveryReport kEmpty;
  const Shard* shard =
      tenant.empty() && !shards_.empty() ? shards_[0].get() : FindShard(tenant);
  return shard == nullptr ? kEmpty : shard->recovery_report;
}

const core::XmlSource* SourceManager::source(const std::string& tenant) const {
  const Shard* shard =
      tenant.empty() && !shards_.empty() ? shards_[0].get() : FindShard(tenant);
  return shard == nullptr ? nullptr : shard->source.get();
}

StatusOr<std::string> SourceManager::ExportCheckpointFor(
    const std::string& tenant) {
  Shard* shard = FindShard(tenant);
  if (shard == nullptr) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  if (options_.wal_dir.empty()) {
    return Status::FailedPrecondition(
        "replication requires a write-ahead log (--wal-dir)");
  }
  const std::string dir = backcompat_
                              ? options_.wal_dir
                              : options_.wal_dir + "/" + shard->dir_component;
  // Under the checkpoint mutex a concurrent checkpoint can neither swap
  // the meta nor unlink snapshot files mid-read.
  std::lock_guard<std::mutex> io(shard->checkpoint_mutex);
  StatusOr<store::CheckpointData> data = store::ReadCheckpoint(dir);
  if (!data.ok()) return data.status();
  return store::EncodeCheckpointBlob(*data);
}

StatusOr<store::WalExport> SourceManager::ExportWalFor(
    const std::string& tenant, uint64_t from_lsn, uint64_t max_bytes,
    uint64_t* wal_next_lsn) {
  Shard* shard = FindShard(tenant);
  if (shard == nullptr) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  if (options_.wal_dir.empty()) {
    return Status::FailedPrecondition(
        "replication requires a write-ahead log (--wal-dir)");
  }
  const std::string dir = backcompat_
                              ? options_.wal_dir
                              : options_.wal_dir + "/" + shard->dir_component;
  // The checkpoint mutex holds off TruncateThrough, so segments cannot
  // be unlinked mid-scan. Appends still race at the tail — a torn final
  // frame simply ends the page.
  std::lock_guard<std::mutex> io(shard->checkpoint_mutex);
  if (wal_next_lsn != nullptr) {
    *wal_next_lsn = shard->wal != nullptr ? shard->wal->next_lsn() : 0;
  }
  return store::ExportWalRecords(dir, from_lsn, max_bytes);
}

Status SourceManager::BootstrapFromCheckpoint(
    const std::string& tenant, const store::CheckpointData& data) {
  Shard* shard = FindShard(tenant);
  if (shard == nullptr) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  // Built off to the side — reads keep being served from the old source
  // until the swap — then installed atomically under the state mutex.
  auto fresh = std::make_unique<core::XmlSource>(source_options_);
  for (const auto& seed : shard->seed_dtds) {
    DTDEVOLVE_RETURN_IF_ERROR(fresh->AddDtdText(seed.first, seed.second));
  }
  DTDEVOLVE_RETURN_IF_ERROR(store::ApplyCheckpointToSource(data, *fresh));
  fresh->set_metrics(shard->source_metrics);
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  shard->source = std::move(fresh);
  shard->applied_lsn = data.lsn;
  // The per-DTD ingest tallies describe the replaced lineage and the
  // checkpoint carries none; recorded-document and divergence stats live
  // in the extended DTDs themselves and survive the swap.
  shard->ingested_per_dtd.clear();
  shard->evolutions_per_dtd.clear();
  return Status::Ok();
}

StatusOr<bool> SourceManager::ApplyReplicated(const std::string& tenant,
                                              uint64_t lsn,
                                              std::string_view payload) {
  Shard* shard = FindShard(tenant);
  if (shard == nullptr) {
    return Status::NotFound("unknown tenant '" + tenant + "'");
  }
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  // Streams resume from the last applied LSN after a disconnect, so
  // re-delivery of an already-applied record is normal, not an error.
  if (lsn <= shard->applied_lsn) return false;
  if (lsn != shard->applied_lsn + 1) {
    // Primary LSNs are gapless (a failed append never consumes one), so
    // a hole means the follower skipped acked history — applying would
    // silently diverge from the primary.
    return Status::FailedPrecondition(
        "replication gap: applied LSN " +
        std::to_string(shard->applied_lsn) + ", received LSN " +
        std::to_string(lsn));
  }
  if (store::IsInduceAcceptRecord(payload) || store::IsEvictRecord(payload)) {
    DTDEVOLVE_RETURN_IF_ERROR(
        store::ApplyWalRecordToSource(lsn, payload, *shard->source));
  } else {
    // Inline ProcessText (rather than ApplyWalRecordToSource) to see the
    // outcome — the per-DTD tallies feed /stats on the replica too.
    StatusOr<core::XmlSource::ProcessOutcome> outcome =
        shard->source->ProcessText(payload);
    if (!outcome.ok()) {
      return Status::Internal("replicated record " + std::to_string(lsn) +
                              " does not apply: " +
                              outcome.status().message());
    }
    if (outcome->classified) ++shard->ingested_per_dtd[outcome->dtd_name];
    if (outcome->evolved) ++shard->evolutions_per_dtd[outcome->dtd_name];
  }
  shard->applied_lsn = lsn;
  return true;
}

uint64_t SourceManager::AppliedLsnFor(const std::string& tenant) const {
  const Shard* shard = FindShard(tenant);
  if (shard == nullptr) return 0;
  std::lock_guard<std::mutex> lock(shard->state_mutex);
  return shard->applied_lsn;
}

}  // namespace dtdevolve::server
