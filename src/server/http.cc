#include "server/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace dtdevolve::server {

namespace {

constexpr size_t kMaxHeaderBytes = 16 * 1024;

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  const std::string lowered = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (key == lowered) return &value;
  }
  return nullptr;
}

bool HttpRequest::QueryFlag(std::string_view key) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string_view param(query.data() + pos, end - pos);
    if (param == key ||
        param == std::string(key) + "=1" ||
        param == std::string(key) + "=true") {
      return true;
    }
    pos = end + 1;
  }
  return false;
}

std::string HttpRequest::QueryValue(std::string_view key) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string_view param(query.data() + pos, end - pos);
    if (param.size() > key.size() && param.substr(0, key.size()) == key &&
        param[key.size()] == '=') {
      return std::string(param.substr(key.size() + 1));
    }
    pos = end + 1;
  }
  return "";
}

StatusOr<HttpRequest> ReadHttpRequest(int fd, size_t max_body) {
  std::string buffer;
  size_t header_end = std::string::npos;
  // Read until the blank line terminating the header block.
  while (header_end == std::string::npos) {
    if (buffer.size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("HTTP header block too large");
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::InvalidArgument(
          buffer.empty() ? "connection closed before request"
                         : "connection closed mid-header");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
  }

  HttpRequest request;
  const std::string_view head(buffer.data(), header_end);
  size_t line_start = 0;
  bool first_line = true;
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head.size();
    const std::string_view line = head.substr(line_start, line_end - line_start);
    if (first_line) {
      // METHOD SP TARGET SP VERSION
      const size_t sp1 = line.find(' ');
      const size_t sp2 = sp1 == std::string_view::npos
                             ? std::string_view::npos
                             : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return Status::InvalidArgument("malformed HTTP request line");
      }
      request.method = std::string(line.substr(0, sp1));
      request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      const std::string_view version = line.substr(sp2 + 1);
      if (version.rfind("HTTP/1.", 0) != 0) {
        return Status::InvalidArgument("unsupported HTTP version");
      }
      const size_t question = request.target.find('?');
      request.path = request.target.substr(0, question);
      request.query = question == std::string::npos
                          ? ""
                          : request.target.substr(question + 1);
      first_line = false;
    } else if (!line.empty()) {
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("malformed HTTP header line");
      }
      request.headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                                   std::string(Trim(line.substr(colon + 1))));
    }
    if (line_end == head.size()) break;
    line_start = line_end + 2;
  }
  if (first_line) return Status::InvalidArgument("empty HTTP request");

  // Request-smuggling hygiene: every Content-Length occurrence must
  // parse and agree. Silently honoring the first of two conflicting
  // lengths is exactly the disagreement smuggling attacks exploit once a
  // proxy (or a future keep-alive implementation) picks the other one.
  size_t content_length = 0;
  bool have_content_length = false;
  for (const auto& [key, value] : request.headers) {
    if (key != "content-length") continue;
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end == value.c_str() || *end != '\0') {
      return Status::InvalidArgument("malformed Content-Length");
    }
    if (have_content_length && static_cast<size_t>(parsed) != content_length) {
      return Status::InvalidArgument("conflicting Content-Length headers");
    }
    content_length = static_cast<size_t>(parsed);
    have_content_length = true;
  }
  if (content_length > max_body) {
    return Status::InvalidArgument("request body exceeds limit");
  }

  request.body = buffer.substr(header_end + 4);
  while (request.body.size() < content_length) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::InvalidArgument("connection closed mid-body");
    }
    request.body.append(chunk, static_cast<size_t>(n));
  }
  request.body.resize(content_length);  // ignore pipelined extra bytes
  return request;
}

Status WriteHttpResponse(int fd, const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "Connection: close\r\n\r\n";
  out += response.body;

  size_t written = 0;
  while (written < out.size()) {
    ssize_t n = ::send(fd, out.data() + written, out.size() - written,
                       MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Internal(std::string("send failed: ") +
                              std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return Status::Ok();
}

const char* HttpReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

}  // namespace dtdevolve::server
