#include "server/http.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace dtdevolve::server {

namespace {

constexpr size_t kMaxHeaderBytes = 16 * 1024;

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' ||
                           text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

HttpParse ParseError(int status, std::string message) {
  HttpParse parse;
  parse.result = HttpParseResult::kError;
  parse.error_status = status;
  parse.error = std::move(message);
  return parse;
}

/// Does a (lower-cased) Connection header value contain `token` as a
/// comma-separated element?
bool ConnectionHas(std::string_view value, std::string_view token) {
  size_t pos = 0;
  while (pos <= value.size()) {
    size_t end = value.find(',', pos);
    if (end == std::string_view::npos) end = value.size();
    if (Trim(value.substr(pos, end - pos)) == token) return true;
    pos = end + 1;
  }
  return false;
}

const std::string* FindInHeaders(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  const std::string lowered = ToLower(name);
  for (const auto& [key, value] : headers) {
    if (key == lowered) return &value;
  }
  return nullptr;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  return FindInHeaders(headers, name);
}

const std::string* HttpClientResponse::FindHeader(
    std::string_view name) const {
  return FindInHeaders(headers, name);
}

bool HttpRequest::QueryFlag(std::string_view key) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string_view param(query.data() + pos, end - pos);
    if (param == key ||
        param == std::string(key) + "=1" ||
        param == std::string(key) + "=true") {
      return true;
    }
    pos = end + 1;
  }
  return false;
}

std::string HttpRequest::QueryValue(std::string_view key) const {
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    std::string_view param(query.data() + pos, end - pos);
    if (param.size() > key.size() && param.substr(0, key.size()) == key &&
        param[key.size()] == '=') {
      return std::string(param.substr(key.size() + 1));
    }
    pos = end + 1;
  }
  return "";
}

HttpParse ParseHttpRequest(std::string_view buffer, size_t max_body,
                           HttpRequest* out) {
  const size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    if (buffer.size() > kMaxHeaderBytes) {
      // 431 and not 400: the framing may be perfectly valid, the client
      // just sent more header than this server will buffer (an oversized
      // request line lands here too — it is part of the header block).
      return ParseError(431, "HTTP header block too large");
    }
    return HttpParse{};  // kNeedMore
  }
  if (header_end > kMaxHeaderBytes) {
    return ParseError(431, "HTTP header block too large");
  }

  HttpRequest request;
  const std::string_view head = buffer.substr(0, header_end);
  size_t line_start = 0;
  bool first_line = true;
  bool http10 = false;
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head.size();
    const std::string_view line =
        head.substr(line_start, line_end - line_start);
    if (first_line) {
      // METHOD SP TARGET SP VERSION
      const size_t sp1 = line.find(' ');
      const size_t sp2 = sp1 == std::string_view::npos
                             ? std::string_view::npos
                             : line.find(' ', sp1 + 1);
      if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
        return ParseError(400, "malformed HTTP request line");
      }
      request.method = std::string(line.substr(0, sp1));
      request.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
      const std::string_view version = line.substr(sp2 + 1);
      if (version.rfind("HTTP/1.", 0) != 0) {
        return ParseError(400, "unsupported HTTP version");
      }
      http10 = version == "HTTP/1.0";
      const size_t question = request.target.find('?');
      request.path = request.target.substr(0, question);
      request.query = question == std::string::npos
                          ? ""
                          : request.target.substr(question + 1);
      first_line = false;
    } else if (!line.empty()) {
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return ParseError(400, "malformed HTTP header line");
      }
      request.headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                                   std::string(Trim(line.substr(colon + 1))));
    }
    if (line_end == head.size()) break;
    line_start = line_end + 2;
  }
  if (first_line) return ParseError(400, "empty HTTP request");

  // Request-smuggling hygiene: every Content-Length occurrence must
  // parse and agree. Silently honoring the first of two conflicting
  // lengths is exactly the disagreement smuggling attacks exploit once
  // a proxy and this keep-alive parser pick different ones.
  size_t content_length = 0;
  bool have_content_length = false;
  for (const auto& [key, value] : request.headers) {
    if (key != "content-length") continue;
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end == value.c_str() || *end != '\0') {
      return ParseError(400, "malformed Content-Length");
    }
    if (have_content_length && static_cast<size_t>(parsed) != content_length) {
      return ParseError(400, "conflicting Content-Length headers");
    }
    content_length = static_cast<size_t>(parsed);
    have_content_length = true;
  }
  if (request.FindHeader("transfer-encoding") != nullptr) {
    return ParseError(400, "Transfer-Encoding is not supported");
  }
  if (content_length > max_body) {
    return ParseError(413, "request body exceeds limit");
  }
  const size_t total = header_end + 4 + content_length;
  if (buffer.size() < total) return HttpParse{};  // body still arriving

  request.body = std::string(buffer.substr(header_end + 4, content_length));

  HttpParse parse;
  parse.result = HttpParseResult::kDone;
  parse.consumed = total;
  parse.keep_alive = !http10;
  if (const std::string* connection = request.FindHeader("connection")) {
    const std::string value = ToLower(*connection);
    if (ConnectionHas(value, "close")) {
      parse.keep_alive = false;
    } else if (http10 && ConnectionHas(value, "keep-alive")) {
      parse.keep_alive = true;
    }
  }
  *out = std::move(request);
  return parse;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpReason(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n\r\n"
                    : "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

StatusOr<HttpClientResponse> ReadHttpResponse(int fd) {
  std::string buffer;
  size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    if (buffer.size() > kMaxHeaderBytes) {
      return Status::InvalidArgument("HTTP response header block too large");
    }
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Unavailable(
          buffer.empty() ? "connection closed before response"
                         : "connection closed mid-response");
    }
    buffer.append(chunk, static_cast<size_t>(n));
    header_end = buffer.find("\r\n\r\n");
  }

  HttpClientResponse response;
  const std::string_view head(buffer.data(), header_end);
  size_t line_start = 0;
  bool first_line = true;
  while (line_start <= head.size()) {
    size_t line_end = head.find("\r\n", line_start);
    if (line_end == std::string_view::npos) line_end = head.size();
    const std::string_view line =
        head.substr(line_start, line_end - line_start);
    if (first_line) {
      // HTTP/1.x SP STATUS SP REASON
      if (line.rfind("HTTP/1.", 0) != 0 || line.size() < 12) {
        return Status::InvalidArgument("malformed HTTP status line");
      }
      response.status = std::atoi(std::string(line.substr(9, 3)).c_str());
      if (response.status < 100 || response.status > 599) {
        return Status::InvalidArgument("malformed HTTP status code");
      }
      first_line = false;
    } else if (!line.empty()) {
      const size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("malformed HTTP response header");
      }
      response.headers.emplace_back(ToLower(Trim(line.substr(0, colon))),
                                    std::string(Trim(line.substr(colon + 1))));
    }
    if (line_end == head.size()) break;
    line_start = line_end + 2;
  }

  size_t content_length = 0;
  if (const std::string* value = response.FindHeader("content-length")) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(value->c_str(), &end, 10);
    if (errno != 0 || end == value->c_str() || *end != '\0') {
      return Status::InvalidArgument("malformed response Content-Length");
    }
    content_length = static_cast<size_t>(parsed);
  }

  response.body = buffer.substr(header_end + 4);
  while (response.body.size() < content_length) {
    char chunk[4096];
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::Unavailable("connection closed mid-response body");
    }
    response.body.append(chunk, static_cast<size_t>(n));
  }
  response.body.resize(content_length);
  return response;
}

const char* HttpReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 410: return "Gone";
    case 413: return "Payload Too Large";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default:  return "Unknown";
  }
}

}  // namespace dtdevolve::server
