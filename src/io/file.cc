#include "io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace dtdevolve::io {

namespace {

Status ErrnoStatus(const std::string& what, const std::string& path,
                   int err) {
  Status status = Status::Internal(what + " " + path + ": " +
                                   std::strerror(err));
  return status;
}

/// One injector consultation. Returns true when the op must fail;
/// `*persist` only matters for writes.
bool Injected(FaultOp op, size_t size, size_t* persist, int* err) {
  return FaultInjector::Instance().ShouldFail(op, size, persist, err);
}

StatusOr<File> OpenWithFlags(const std::string& path, int flags) {
  size_t persist = 0;
  int err = 0;
  if (Injected(FaultOp::kOpen, 0, &persist, &err)) {
    return ErrnoStatus("cannot open", path, err);
  }
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) return ErrnoStatus("cannot open", path, errno);
  return File(fd, path);
}

}  // namespace

File::File(File&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

File& File::operator=(File&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

File::~File() {
  if (fd_ >= 0) ::close(fd_);
}

StatusOr<File> File::OpenForWrite(const std::string& path) {
  return OpenWithFlags(path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC);
}

StatusOr<File> File::OpenForAppend(const std::string& path) {
  return OpenWithFlags(path, O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC);
}

StatusOr<File> File::OpenExisting(const std::string& path) {
  return OpenWithFlags(path, O_WRONLY | O_CLOEXEC);
}

Status File::Write(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("write on closed file");
  size_t persist = 0;
  int err = 0;
  bool injected = Injected(FaultOp::kWrite, data.size(), &persist, &err);
  // A torn write persists a prefix for real — recovery tests then see
  // exactly the on-disk state a crash mid-write would leave.
  const size_t limit = injected ? persist : data.size();
  size_t written = 0;
  while (written < limit) {
    ssize_t n = ::write(fd_, data.data() + written, limit - written);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) return ErrnoStatus("write failed on", path_, errno);
    if (n == 0) return ErrnoStatus("short write to", path_, ENOSPC);
    written += static_cast<size_t>(n);
  }
  if (injected) return ErrnoStatus("write failed on", path_, err);
  return Status::Ok();
}

Status File::Fsync() {
  if (fd_ < 0) return Status::FailedPrecondition("fsync on closed file");
  size_t persist = 0;
  int err = 0;
  if (Injected(FaultOp::kFsync, 0, &persist, &err)) {
    return ErrnoStatus("fsync failed on", path_, err);
  }
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync failed on", path_, errno);
  return Status::Ok();
}

Status File::Truncate(uint64_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("truncate on closed file");
  size_t persist = 0;
  int err = 0;
  if (Injected(FaultOp::kTruncate, 0, &persist, &err)) {
    return ErrnoStatus("truncate failed on", path_, err);
  }
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
    return ErrnoStatus("truncate failed on", path_, errno);
  }
  return Status::Ok();
}

Status File::Close() {
  if (fd_ < 0) return Status::Ok();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return ErrnoStatus("close failed on", path_, errno);
  return Status::Ok();
}

File::File(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

Status Rename(const std::string& from, const std::string& to) {
  size_t persist = 0;
  int err = 0;
  if (Injected(FaultOp::kRename, 0, &persist, &err)) {
    return ErrnoStatus("cannot rename", from + " -> " + to, err);
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("cannot rename", from + " -> " + to, errno);
  }
  return Status::Ok();
}

Status Unlink(const std::string& path) {
  size_t persist = 0;
  int err = 0;
  if (Injected(FaultOp::kUnlink, 0, &persist, &err)) {
    return ErrnoStatus("cannot unlink", path, err);
  }
  if (::unlink(path.c_str()) != 0) {
    if (errno == ENOENT) return Status::NotFound("no such file: " + path);
    return ErrnoStatus("cannot unlink", path, errno);
  }
  return Status::Ok();
}

Status FsyncDir(const std::string& dir) {
  size_t persist = 0;
  int err = 0;
  if (Injected(FaultOp::kFsyncDir, 0, &persist, &err)) {
    return ErrnoStatus("fsync failed on directory", dir, err);
  }
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return ErrnoStatus("cannot open directory", dir, errno);
  Status status;
  if (::fsync(fd) != 0) {
    status = ErrnoStatus("fsync failed on directory", dir, errno);
  }
  ::close(fd);
  return status;
}

Status CreateDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    return Status::Ok();
  }
  return ErrnoStatus("cannot create directory", path, errno);
}

std::string DirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteFileAtomic(const std::string& path, std::string_view data) {
  const std::string tmp = path + ".tmp";
  StatusOr<File> file = File::OpenForWrite(tmp);
  Status status = file.ok() ? Status::Ok() : file.status();
  if (status.ok()) status = file->Write(data);
  // fsync before rename: the rename must not become durable before the
  // bytes it points at.
  if (status.ok()) status = file->Fsync();
  if (status.ok()) status = file->Close();
  if (status.ok()) status = Rename(tmp, path);
  if (!status.ok()) {
    ::unlink(tmp.c_str());  // best effort; not a faultable op
    return status;
  }
  // The rename is only durable once the parent directory is fsynced.
  return FsyncDir(DirName(path));
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read error on " + path);
  return buffer.str();
}

}  // namespace dtdevolve::io
