#ifndef DTDEVOLVE_IO_FAULT_H_
#define DTDEVOLVE_IO_FAULT_H_

#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <mutex>

namespace dtdevolve::io {

/// The faultable operation classes of the `io` layer. Every durable-path
/// primitive (`File::Write`, `File::Fsync`, `Rename`, …) consults the
/// process-wide `FaultInjector` before touching the kernel, so tests and
/// the crash-recovery oracle can fail *exactly* the Nth operation of a
/// workload — deterministic disk-full, short writes, and torn-tail
/// crashes without root, ptrace, or a custom filesystem.
enum class FaultOp : uint32_t {
  kOpen = 1u << 0,
  kWrite = 1u << 1,
  kFsync = 1u << 2,
  kRename = 1u << 3,
  kUnlink = 1u << 4,
  kTruncate = 1u << 5,
  kFsyncDir = 1u << 6,
};

constexpr uint32_t kAllFaultOps = 0xFFFFFFFFu;

/// One armed fault. Operations matching `op_mask` are counted; the
/// `fail_at`-th one (1-based) fails with `error_code`. `fail_at == 0`
/// arms pure counting — nothing fails, but `ops_seen()` reports how many
/// matching operations a workload performs, which is how the crash
/// oracle enumerates its injection points.
struct FaultPlan {
  uint64_t fail_at = 0;
  uint32_t op_mask = kAllFaultOps;
  /// errno reported by the failing operation (ENOSPC for disk-full runs).
  int error_code = EIO;
  /// When the failing operation is a write, this fraction of the buffer
  /// is persisted before the failure — a torn tail, as a crash mid-write
  /// would leave. 0 persists nothing.
  double torn_fraction = 0.0;
  /// Crash simulation: after the fault fires, every subsequent faultable
  /// operation fails too — the process is "dead" to the disk. Combined
  /// with `torn_fraction` this models power loss mid-write; the caller
  /// then abandons its in-memory state and recovers from disk.
  bool crash = false;
};

/// Process-wide injector. Disarmed by default (one relaxed atomic load on
/// the hot path); `Arm` installs a plan and resets the counters. All
/// entry points are thread-safe — server connection threads hit the
/// injector concurrently under the `durability` test label.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  void Arm(const FaultPlan& plan);
  void Disarm();

  /// Decision for one operation about to run. Returns true when the op
  /// must fail, with `*error_code` set; for writes, `*persist_bytes` is
  /// how many leading bytes to persist before failing.
  bool ShouldFail(FaultOp op, size_t write_size, size_t* persist_bytes,
                  int* error_code);

  /// Matching operations observed since the last `Arm`.
  uint64_t ops_seen() const { return ops_seen_.load(); }
  /// True once a `crash = true` plan has fired.
  bool crash_triggered() const { return crashed_.load(); }

 private:
  FaultInjector() = default;

  std::mutex mutex_;
  FaultPlan plan_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<uint64_t> ops_seen_{0};
};

/// RAII guard for tests: arms on construction, disarms on destruction so
/// a failing assertion can never leak an armed plan into the next test.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) {
    FaultInjector::Instance().Arm(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::Instance().Disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace dtdevolve::io

#endif  // DTDEVOLVE_IO_FAULT_H_
