#include "io/fault.h"

namespace dtdevolve::io {

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  ops_seen_.store(0);
  crashed_.store(false);
  armed_.store(true);
}

void FaultInjector::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_.store(false);
  crashed_.store(false);
}

bool FaultInjector::ShouldFail(FaultOp op, size_t write_size,
                               size_t* persist_bytes, int* error_code) {
  if (!armed_.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_.load()) return false;
  if ((plan_.op_mask & static_cast<uint32_t>(op)) == 0) return false;
  const uint64_t seen = ops_seen_.fetch_add(1) + 1;
  if (crashed_.load()) {
    // The simulated process is dead: nothing reaches the disk any more.
    *persist_bytes = 0;
    *error_code = EIO;
    return true;
  }
  if (plan_.fail_at == 0 || seen != plan_.fail_at) return false;
  *error_code = plan_.error_code;
  *persist_bytes = 0;
  if (op == FaultOp::kWrite && plan_.torn_fraction > 0.0) {
    double fraction = plan_.torn_fraction;
    if (fraction > 1.0) fraction = 1.0;
    *persist_bytes = static_cast<size_t>(
        static_cast<double>(write_size) * fraction);
  }
  if (plan_.crash) crashed_.store(true);
  return true;
}

}  // namespace dtdevolve::io
