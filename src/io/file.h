#ifndef DTDEVOLVE_IO_FILE_H_
#define DTDEVOLVE_IO_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "io/fault.h"
#include "util/status.h"

namespace dtdevolve::io {

/// The file-I/O abstraction of the durability subsystem. Every write,
/// fsync, rename, unlink and truncate on a durable path — the write-ahead
/// log (`store/wal.h`) and the atomic snapshots (`evolve/persist.cc`) —
/// goes through this layer, which consults the process-wide
/// `FaultInjector` first. That is what makes failure paths *testable*:
/// a test can fail the 3rd fsync with ENOSPC, persist half of the 7th
/// write and then kill every later operation, and assert recovery.
///
/// All functions return `Status`; messages carry the path and
/// `strerror(errno)`. Reads are deliberately not faultable — losing
/// *written* data is the interesting failure class.

/// RAII file descriptor with faultable mutation primitives.
class File {
 public:
  /// Creates/truncates `path` for writing.
  static StatusOr<File> OpenForWrite(const std::string& path);
  /// Creates `path` if missing and positions every write at the end.
  static StatusOr<File> OpenForAppend(const std::string& path);
  /// Opens an existing file for in-place mutation (truncating a torn
  /// WAL tail) without clobbering its contents.
  static StatusOr<File> OpenExisting(const std::string& path);

  File() = default;
  /// Adopts an already-open descriptor (used by the Open factories).
  File(int fd, std::string path);
  File(File&& other) noexcept;
  File& operator=(File&& other) noexcept;
  File(const File&) = delete;
  File& operator=(const File&) = delete;
  ~File();

  bool is_open() const { return fd_ >= 0; }

  /// Writes all of `data` (looping over partial writes).
  Status Write(std::string_view data);
  Status Fsync();
  Status Truncate(uint64_t size);
  /// Closes and reports the close error, unlike the silent destructor.
  Status Close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Faultable directory-entry operations.
Status Rename(const std::string& from, const std::string& to);
/// `kNotFound` when the file does not exist.
Status Unlink(const std::string& path);
/// Fsyncs the directory itself — the only way to make a completed
/// `rename` or `unlink` durable.
Status FsyncDir(const std::string& dir);
/// mkdir; success when the directory already exists.
Status CreateDir(const std::string& path);

/// Everything up to the final '/' ("." when there is none).
std::string DirName(const std::string& path);

/// The canonical crash-safe file write: `path + ".tmp"` gets the bytes,
/// an fsync and a close, is renamed over `path`, and the parent directory
/// is fsynced so the rename itself survives a crash. Any failure removes
/// the temporary (best effort) and leaves the previous `path` intact.
Status WriteFileAtomic(const std::string& path, std::string_view data);

/// Whole-file read; `kNotFound` when missing. Not faultable.
StatusOr<std::string> ReadFile(const std::string& path);

}  // namespace dtdevolve::io

#endif  // DTDEVOLVE_IO_FILE_H_
