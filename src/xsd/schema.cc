#include "xsd/schema.h"

#include <cassert>
#include <utility>

namespace dtdevolve::xsd {

Particle::Ptr Particle::ElementRef(std::string name, Occurs occurs) {
  Ptr particle(new Particle(Kind::kElementRef));
  particle->ref_ = std::move(name);
  particle->occurs_ = occurs;
  return particle;
}

Particle::Ptr Particle::Sequence(std::vector<Ptr> children, Occurs occurs) {
  assert(!children.empty());
  Ptr particle(new Particle(Kind::kSequence));
  particle->children_ = std::move(children);
  particle->occurs_ = occurs;
  return particle;
}

Particle::Ptr Particle::Choice(std::vector<Ptr> children, Occurs occurs) {
  assert(!children.empty());
  Ptr particle(new Particle(Kind::kChoice));
  particle->children_ = std::move(children);
  particle->occurs_ = occurs;
  return particle;
}

Particle::Ptr Particle::Clone() const {
  Ptr copy(new Particle(kind_));
  copy->occurs_ = occurs_;
  copy->ref_ = ref_;
  copy->children_.reserve(children_.size());
  for (const Ptr& child : children_) {
    copy->children_.push_back(child->Clone());
  }
  return copy;
}

ElementDef& Schema::AddElement(std::string name) {
  auto it = elements_.find(name);
  if (it == elements_.end()) {
    order_.push_back(name);
    ElementDef def;
    def.name = name;
    it = elements_.emplace(std::move(name), std::move(def)).first;
  }
  return it->second;
}

const ElementDef* Schema::FindElement(const std::string& name) const {
  auto it = elements_.find(name);
  return it == elements_.end() ? nullptr : &it->second;
}

}  // namespace dtdevolve::xsd
