#include "xsd/writer.h"

#include "xml/text.h"

namespace dtdevolve::xsd {

namespace {

void Indent(std::string& out, int depth) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
}

void AppendOccursAttrs(const Occurs& occurs, std::string& out) {
  if (occurs.min != 1) {
    out += " minOccurs=\"" + std::to_string(occurs.min) + '"';
  }
  if (occurs.max == Occurs::kUnbounded) {
    out += " maxOccurs=\"unbounded\"";
  } else if (occurs.max != 1) {
    out += " maxOccurs=\"" + std::to_string(occurs.max) + '"';
  }
}

void WriteParticle(const Particle& particle, int depth, std::string& out) {
  Indent(out, depth);
  switch (particle.kind()) {
    case Particle::Kind::kElementRef:
      out += "<xs:element ref=\"" + xml::EscapeText(particle.ref()) + '"';
      AppendOccursAttrs(particle.occurs(), out);
      out += "/>\n";
      return;
    case Particle::Kind::kSequence:
    case Particle::Kind::kChoice: {
      const char* tag =
          particle.kind() == Particle::Kind::kSequence ? "xs:sequence"
                                                       : "xs:choice";
      out += '<';
      out += tag;
      AppendOccursAttrs(particle.occurs(), out);
      out += ">\n";
      for (const Particle::Ptr& child : particle.children()) {
        WriteParticle(*child, depth + 1, out);
      }
      Indent(out, depth);
      out += "</";
      out += tag;
      out += ">\n";
      return;
    }
  }
}

void WriteAttribute(const AttributeUse& attribute, int depth,
                    std::string& out) {
  Indent(out, depth);
  out += "<xs:attribute name=\"" + xml::EscapeText(attribute.name) + '"';
  if (!attribute.type.empty()) {
    out += " type=\"" + attribute.type + '"';
  }
  if (attribute.required) out += " use=\"required\"";
  if (!attribute.fixed_value.empty()) {
    out += " fixed=\"" + xml::EscapeText(attribute.fixed_value) + '"';
  } else if (!attribute.default_value.empty()) {
    out += " default=\"" + xml::EscapeText(attribute.default_value) + '"';
  }
  if (attribute.enumeration.empty()) {
    out += "/>\n";
    return;
  }
  out += ">\n";
  Indent(out, depth + 1);
  out += "<xs:simpleType>\n";
  Indent(out, depth + 2);
  out += "<xs:restriction base=\"xs:string\">\n";
  for (const std::string& value : attribute.enumeration) {
    Indent(out, depth + 3);
    out += "<xs:enumeration value=\"" + xml::EscapeText(value) + "\"/>\n";
  }
  Indent(out, depth + 2);
  out += "</xs:restriction>\n";
  Indent(out, depth + 1);
  out += "</xs:simpleType>\n";
  Indent(out, depth);
  out += "</xs:attribute>\n";
}

void WriteElement(const ElementDef& def, std::string& out) {
  Indent(out, 1);
  out += "<xs:element name=\"" + xml::EscapeText(def.name) + '"';

  // Simple and any content without attributes can use a type reference.
  if (def.attributes.empty()) {
    if (def.content == ElementDef::ContentKind::kSimple) {
      out += " type=\"xs:string\"/>\n";
      return;
    }
    if (def.content == ElementDef::ContentKind::kAny) {
      out += " type=\"xs:anyType\"/>\n";
      return;
    }
  }
  out += ">\n";

  Indent(out, 2);
  out += "<xs:complexType";
  if (def.content == ElementDef::ContentKind::kMixed) {
    out += " mixed=\"true\"";
  }
  out += ">\n";
  if (def.content == ElementDef::ContentKind::kSimple) {
    // Simple content with attributes: extend xs:string.
    Indent(out, 3);
    out += "<xs:simpleContent>\n";
    Indent(out, 4);
    out += "<xs:extension base=\"xs:string\">\n";
    for (const AttributeUse& attribute : def.attributes) {
      WriteAttribute(attribute, 5, out);
    }
    Indent(out, 4);
    out += "</xs:extension>\n";
    Indent(out, 3);
    out += "</xs:simpleContent>\n";
  } else {
    if (def.particle != nullptr) {
      // Strict XSD requires a model group under complexType; wrap a bare
      // element reference in a sequence.
      if (def.particle->kind() == Particle::Kind::kElementRef) {
        Indent(out, 3);
        out += "<xs:sequence>\n";
        WriteParticle(*def.particle, 4, out);
        Indent(out, 3);
        out += "</xs:sequence>\n";
      } else {
        WriteParticle(*def.particle, 3, out);
      }
    }
    for (const AttributeUse& attribute : def.attributes) {
      WriteAttribute(attribute, 3, out);
    }
  }
  Indent(out, 2);
  out += "</xs:complexType>\n";
  Indent(out, 1);
  out += "</xs:element>\n";
}

}  // namespace

std::string WriteSchema(const Schema& schema) {
  std::string out =
      "<?xml version=\"1.0\"?>\n"
      "<xs:schema xmlns:xs=\"http://www.w3.org/2001/XMLSchema\">\n";
  // Root element first, then the rest in declaration order.
  const ElementDef* root = schema.FindElement(schema.root_name());
  if (root != nullptr) WriteElement(*root, out);
  for (const std::string& name : schema.ElementNames()) {
    if (name == schema.root_name()) continue;
    WriteElement(*schema.FindElement(name), out);
  }
  out += "</xs:schema>\n";
  return out;
}

}  // namespace dtdevolve::xsd
