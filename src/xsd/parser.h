#ifndef DTDEVOLVE_XSD_PARSER_H_
#define DTDEVOLVE_XSD_PARSER_H_

#include <string_view>

#include "util/status.h"
#include "xsd/schema.h"

namespace dtdevolve::xsd {

/// Parses a W3C XML Schema document (the subset `WriteSchema` emits:
/// global elements, complex types with one sequence/choice particle,
/// element refs with occurrence bounds, mixed content, attributes with
/// enumeration restrictions). `WriteSchema` output round-trips exactly;
/// unsupported constructs are rejected with a ParseError naming them.
StatusOr<Schema> ParseSchema(std::string_view text);

}  // namespace dtdevolve::xsd

#endif  // DTDEVOLVE_XSD_PARSER_H_
