#ifndef DTDEVOLVE_XSD_SCHEMA_H_
#define DTDEVOLVE_XSD_SCHEMA_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace dtdevolve::xsd {

/// Occurrence bounds of a particle (minOccurs / maxOccurs).
struct Occurs {
  static constexpr uint32_t kUnbounded =
      std::numeric_limits<uint32_t>::max();

  uint32_t min = 1;
  uint32_t max = 1;

  bool IsDefault() const { return min == 1 && max == 1; }
  friend bool operator==(const Occurs&, const Occurs&) = default;
};

/// A content particle: a global-element reference, a sequence or a
/// choice — the fragment of XML Schema that DTD content models map onto
/// (the "salami slice" design: every element is declared globally, which
/// matches DTD semantics where element declarations are global).
class Particle {
 public:
  enum class Kind { kElementRef, kSequence, kChoice };

  using Ptr = std::unique_ptr<Particle>;

  static Ptr ElementRef(std::string name, Occurs occurs = {});
  static Ptr Sequence(std::vector<Ptr> children, Occurs occurs = {});
  static Ptr Choice(std::vector<Ptr> children, Occurs occurs = {});

  Particle(const Particle&) = delete;
  Particle& operator=(const Particle&) = delete;

  Kind kind() const { return kind_; }
  const Occurs& occurs() const { return occurs_; }
  Occurs& occurs() { return occurs_; }
  /// Referenced element name (kElementRef only).
  const std::string& ref() const { return ref_; }
  const std::vector<Ptr>& children() const { return children_; }

  Ptr Clone() const;

 private:
  explicit Particle(Kind kind) : kind_(kind) {}

  Kind kind_;
  Occurs occurs_;
  std::string ref_;
  std::vector<Ptr> children_;
};

/// One attribute use on a complex type.
struct AttributeUse {
  std::string name;
  /// XML Schema type name (xs:string, xs:ID, …) or empty when
  /// `enumeration` is used instead.
  std::string type = "xs:string";
  /// Enumeration facet values (empty unless the DTD type was enumerated).
  std::vector<std::string> enumeration;
  bool required = false;
  std::string fixed_value;    // non-empty for #FIXED
  std::string default_value;  // non-empty for a plain default
};

/// A global element declaration.
struct ElementDef {
  enum class ContentKind {
    kSimple,   // xs:string content (DTD (#PCDATA))
    kEmpty,    // empty content (DTD EMPTY)
    kAny,      // xs:anyType (DTD ANY)
    kComplex,  // element-only content with a particle
    kMixed,    // mixed content with a particle
  };

  std::string name;
  ContentKind content = ContentKind::kSimple;
  Particle::Ptr particle;  // kComplex / kMixed
  std::vector<AttributeUse> attributes;
};

/// An XML Schema document (the subset DTDs map onto).
class Schema {
 public:
  Schema() = default;
  Schema(Schema&&) = default;
  Schema& operator=(Schema&&) = default;

  const std::string& root_name() const { return root_name_; }
  void set_root_name(std::string name) { root_name_ = std::move(name); }

  ElementDef& AddElement(std::string name);
  const ElementDef* FindElement(const std::string& name) const;
  std::vector<std::string> ElementNames() const { return order_; }
  size_t size() const { return elements_.size(); }

 private:
  std::string root_name_;
  std::vector<std::string> order_;
  std::map<std::string, ElementDef> elements_;
};

}  // namespace dtdevolve::xsd

#endif  // DTDEVOLVE_XSD_SCHEMA_H_
