#ifndef DTDEVOLVE_XSD_WRITER_H_
#define DTDEVOLVE_XSD_WRITER_H_

#include <string>

#include "xsd/schema.h"

namespace dtdevolve::xsd {

/// Serializes a Schema as a W3C XML Schema document (`xs:schema` with
/// global `xs:element` declarations, `xs:complexType`, `xs:sequence`,
/// `xs:choice`, `minOccurs`/`maxOccurs`, `mixed="true"`, `xs:attribute`
/// with enumeration restrictions). The output is well-formed XML and
/// round-trips through the library's own XML parser.
std::string WriteSchema(const Schema& schema);

}  // namespace dtdevolve::xsd

#endif  // DTDEVOLVE_XSD_WRITER_H_
