#include "xsd/from_dtd.h"

#include <utility>
#include <vector>

#include "util/string_util.h"

namespace dtdevolve::xsd {

namespace {

using Kind = dtd::ContentModel::Kind;

/// Multiplies occurrence bounds (wrapping an already-bounded particle in
/// another unary operator).
Occurs Scale(Occurs inner, Occurs outer) {
  Occurs result;
  result.min = inner.min * outer.min;  // 0/1 factors only — no overflow
  if (inner.max == Occurs::kUnbounded || outer.max == Occurs::kUnbounded) {
    result.max = Occurs::kUnbounded;
  } else {
    result.max = inner.max * outer.max;
  }
  return result;
}

/// True when `model` is mixed content: Star(Choice(#PCDATA, names…)) or a
/// bare/starred #PCDATA variant that still admits elements.
bool IsMixed(const dtd::ContentModel& model) {
  const dtd::ContentModel* inner = &model;
  if (model.kind() == Kind::kStar) inner = &model.child();
  if (inner->kind() != Kind::kOr) return false;
  for (const auto& child : inner->children()) {
    if (child->kind() == Kind::kPcdata) return true;
  }
  return false;
}

Particle::Ptr ConvertModel(const dtd::ContentModel& model) {
  switch (model.kind()) {
    case Kind::kName:
      return Particle::ElementRef(model.name());
    case Kind::kPcdata:
    case Kind::kAny:
    case Kind::kEmpty:
      return nullptr;  // handled at the element level
    case Kind::kAnd: {
      std::vector<Particle::Ptr> children;
      for (const auto& child : model.children()) {
        Particle::Ptr particle = ConvertModel(*child);
        if (particle != nullptr) children.push_back(std::move(particle));
      }
      if (children.empty()) return nullptr;
      if (children.size() == 1) return std::move(children.front());
      return Particle::Sequence(std::move(children));
    }
    case Kind::kOr: {
      std::vector<Particle::Ptr> children;
      for (const auto& child : model.children()) {
        Particle::Ptr particle = ConvertModel(*child);
        if (particle != nullptr) children.push_back(std::move(particle));
      }
      if (children.empty()) return nullptr;
      if (children.size() == 1) return std::move(children.front());
      return Particle::Choice(std::move(children));
    }
    case Kind::kOptional:
    case Kind::kStar:
    case Kind::kPlus: {
      Particle::Ptr inner = ConvertModel(model.child());
      if (inner == nullptr) return nullptr;
      Occurs outer;
      switch (model.kind()) {
        case Kind::kOptional:
          outer = {0, 1};
          break;
        case Kind::kStar:
          outer = {0, Occurs::kUnbounded};
          break;
        default:
          outer = {1, Occurs::kUnbounded};
          break;
      }
      inner->occurs() = Scale(inner->occurs(), outer);
      return inner;
    }
  }
  return nullptr;
}

std::string MapAttributeType(const std::string& dtd_type) {
  if (dtd_type == "CDATA") return "xs:string";
  if (dtd_type == "ID") return "xs:ID";
  if (dtd_type == "IDREF") return "xs:IDREF";
  if (dtd_type == "IDREFS") return "xs:IDREFS";
  if (dtd_type == "NMTOKEN") return "xs:NMTOKEN";
  if (dtd_type == "NMTOKENS") return "xs:NMTOKENS";
  if (dtd_type == "ENTITY") return "xs:ENTITY";
  if (dtd_type == "ENTITIES") return "xs:ENTITIES";
  if (dtd_type == "NOTATION") return "xs:NOTATION";
  return "xs:string";
}

AttributeUse ConvertAttribute(const dtd::AttributeDecl& decl) {
  AttributeUse use;
  use.name = decl.name;
  if (!decl.type.empty() && decl.type.front() == '(') {
    use.type.clear();
    use.enumeration =
        Split(decl.type.substr(1, decl.type.size() - 2), '|');
  } else {
    use.type = MapAttributeType(decl.type);
  }
  switch (decl.default_kind) {
    case dtd::AttributeDecl::DefaultKind::kRequired:
      use.required = true;
      break;
    case dtd::AttributeDecl::DefaultKind::kImplied:
      break;
    case dtd::AttributeDecl::DefaultKind::kFixed:
      use.fixed_value = decl.default_value;
      break;
    case dtd::AttributeDecl::DefaultKind::kDefault:
      use.default_value = decl.default_value;
      break;
  }
  return use;
}

}  // namespace

Schema FromDtd(const dtd::Dtd& dtd) {
  Schema schema;
  schema.set_root_name(dtd.root_name());
  for (const std::string& name : dtd.ElementNames()) {
    const dtd::ElementDecl* decl = dtd.FindElement(name);
    ElementDef& def = schema.AddElement(name);
    for (const dtd::AttributeDecl& attribute : decl->attributes) {
      def.attributes.push_back(ConvertAttribute(attribute));
    }
    if (decl->content == nullptr) {
      def.content = ElementDef::ContentKind::kAny;
      continue;
    }
    const dtd::ContentModel& model = *decl->content;
    switch (model.kind()) {
      case Kind::kPcdata:
        def.content = ElementDef::ContentKind::kSimple;
        continue;
      case Kind::kEmpty:
        def.content = ElementDef::ContentKind::kEmpty;
        continue;
      case Kind::kAny:
        def.content = ElementDef::ContentKind::kAny;
        continue;
      default:
        break;
    }
    Particle::Ptr particle = ConvertModel(model);
    if (IsMixed(model)) {
      def.content = ElementDef::ContentKind::kMixed;
      if (particle != nullptr) {
        // The paper-side mixed form is (#PCDATA | a | …)*: the element
        // alternatives may repeat freely.
        particle->occurs() = {0, Occurs::kUnbounded};
      }
      def.particle = std::move(particle);
    } else if (particle == nullptr) {
      // A model with no element leaves that is not literally (#PCDATA) —
      // e.g. (#PCDATA)* — still has simple content.
      def.content = ElementDef::ContentKind::kSimple;
    } else {
      def.content = ElementDef::ContentKind::kComplex;
      def.particle = std::move(particle);
    }
  }
  return schema;
}

}  // namespace dtdevolve::xsd
