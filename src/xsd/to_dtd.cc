#include "xsd/to_dtd.h"

#include <utility>
#include <vector>

#include "dtd/rewrite.h"

namespace dtdevolve::xsd {

namespace {

using Ptr = dtd::ContentModel::Ptr;

/// Bounds beyond which {m,n} expansion widens instead.
constexpr uint32_t kMaxExpansion = 4;

Ptr ConvertParticle(const Particle& particle);

/// Applies occurrence bounds to a converted particle body.
Ptr ApplyOccurs(Ptr body, const Occurs& occurs) {
  const uint32_t min = occurs.min;
  const uint32_t max = occurs.max;
  if (min == 1 && max == 1) return body;
  if (min == 0 && max == 1) return dtd::ContentModel::Opt(std::move(body));
  if (min == 0 && max == Occurs::kUnbounded) {
    return dtd::ContentModel::Star(std::move(body));
  }
  if (min >= 1 && max == Occurs::kUnbounded) {
    // {m,∞}: m−1 required copies then a +.
    std::vector<Ptr> parts;
    for (uint32_t i = 1; i < min && i <= kMaxExpansion; ++i) {
      parts.push_back(body->Clone());
    }
    parts.push_back(dtd::ContentModel::Plus(std::move(body)));
    if (parts.size() == 1) return std::move(parts.front());
    return dtd::ContentModel::Seq(std::move(parts));
  }
  // Finite {m,n}.
  if (max <= kMaxExpansion) {
    std::vector<Ptr> parts;
    for (uint32_t i = 0; i < min; ++i) parts.push_back(body->Clone());
    for (uint32_t i = min; i < max; ++i) {
      parts.push_back(dtd::ContentModel::Opt(body->Clone()));
    }
    if (parts.empty()) return dtd::ContentModel::Opt(std::move(body));
    if (parts.size() == 1) return std::move(parts.front());
    return dtd::ContentModel::Seq(std::move(parts));
  }
  // Too large to expand: widen to the closest DTD operator.
  return min == 0 ? dtd::ContentModel::Star(std::move(body))
                  : dtd::ContentModel::Plus(std::move(body));
}

Ptr ConvertParticle(const Particle& particle) {
  Ptr body;
  switch (particle.kind()) {
    case Particle::Kind::kElementRef:
      body = dtd::ContentModel::Name(particle.ref());
      break;
    case Particle::Kind::kSequence:
    case Particle::Kind::kChoice: {
      std::vector<Ptr> children;
      children.reserve(particle.children().size());
      for (const Particle::Ptr& child : particle.children()) {
        children.push_back(ConvertParticle(*child));
      }
      if (children.size() == 1) {
        body = std::move(children.front());
      } else if (particle.kind() == Particle::Kind::kSequence) {
        body = dtd::ContentModel::Seq(std::move(children));
      } else {
        body = dtd::ContentModel::Choice(std::move(children));
      }
      break;
    }
  }
  return ApplyOccurs(std::move(body), particle.occurs());
}

std::string MapXsdType(const std::string& xsd_type) {
  if (xsd_type == "xs:ID") return "ID";
  if (xsd_type == "xs:IDREF") return "IDREF";
  if (xsd_type == "xs:IDREFS") return "IDREFS";
  if (xsd_type == "xs:NMTOKEN") return "NMTOKEN";
  if (xsd_type == "xs:NMTOKENS") return "NMTOKENS";
  if (xsd_type == "xs:ENTITY") return "ENTITY";
  if (xsd_type == "xs:ENTITIES") return "ENTITIES";
  return "CDATA";
}

dtd::AttributeDecl ConvertAttribute(const AttributeUse& use) {
  dtd::AttributeDecl decl;
  decl.name = use.name;
  if (!use.enumeration.empty()) {
    std::string enumeration = "(";
    for (size_t i = 0; i < use.enumeration.size(); ++i) {
      if (i > 0) enumeration += '|';
      enumeration += use.enumeration[i];
    }
    enumeration += ')';
    decl.type = std::move(enumeration);
  } else {
    decl.type = MapXsdType(use.type);
  }
  if (!use.fixed_value.empty()) {
    decl.default_kind = dtd::AttributeDecl::DefaultKind::kFixed;
    decl.default_value = use.fixed_value;
  } else if (!use.default_value.empty()) {
    decl.default_kind = dtd::AttributeDecl::DefaultKind::kDefault;
    decl.default_value = use.default_value;
  } else if (use.required) {
    decl.default_kind = dtd::AttributeDecl::DefaultKind::kRequired;
  } else {
    decl.default_kind = dtd::AttributeDecl::DefaultKind::kImplied;
  }
  return decl;
}

}  // namespace

StatusOr<dtd::Dtd> ToDtd(const Schema& schema) {
  if (schema.size() == 0) {
    return Status::InvalidArgument("schema declares no elements");
  }
  dtd::Dtd dtd(schema.root_name());
  for (const std::string& name : schema.ElementNames()) {
    const ElementDef* def = schema.FindElement(name);
    Ptr content;
    switch (def->content) {
      case ElementDef::ContentKind::kSimple:
        content = dtd::ContentModel::Pcdata();
        break;
      case ElementDef::ContentKind::kEmpty:
        content = dtd::ContentModel::Empty();
        break;
      case ElementDef::ContentKind::kAny:
        content = dtd::ContentModel::Any();
        break;
      case ElementDef::ContentKind::kComplex:
        if (def->particle == nullptr) {
          return Status::InvalidArgument("complex element '" + name +
                                         "' has no particle");
        }
        content = dtd::Simplify(ConvertParticle(*def->particle));
        break;
      case ElementDef::ContentKind::kMixed: {
        std::vector<Ptr> alternatives;
        alternatives.push_back(dtd::ContentModel::Pcdata());
        if (def->particle != nullptr) {
          for (const std::string& label : [&] {
                 // All element names referenced by the particle.
                 Ptr converted = ConvertParticle(*def->particle);
                 std::set<std::string> symbols = converted->SymbolSet();
                 return std::vector<std::string>(symbols.begin(),
                                                 symbols.end());
               }()) {
            alternatives.push_back(dtd::ContentModel::Name(label));
          }
        }
        Ptr inner = alternatives.size() == 1
                        ? std::move(alternatives.front())
                        : dtd::ContentModel::Choice(std::move(alternatives));
        content = dtd::ContentModel::Star(std::move(inner));
        break;
      }
    }
    dtd::ElementDecl& decl = dtd.DeclareElement(name, std::move(content));
    for (const AttributeUse& use : def->attributes) {
      decl.attributes.push_back(ConvertAttribute(use));
    }
  }
  return dtd;
}

}  // namespace dtdevolve::xsd
