#ifndef DTDEVOLVE_XSD_FROM_DTD_H_
#define DTDEVOLVE_XSD_FROM_DTD_H_

#include "dtd/dtd.h"
#include "xsd/schema.h"

namespace dtdevolve::xsd {

/// Converts a DTD into the equivalent XML Schema — the §6 direction
/// "since a DTD can be considered as a kind of XML schema, we are
/// currently extending the approach to the evolution of XML schemas".
/// With this exporter, an *evolved* DTD becomes an evolved schema.
///
/// Mapping:
///   (a, b)         → xs:sequence of element refs
///   (a | b)        → xs:choice
///   x?             → minOccurs="0"
///   x*             → minOccurs="0" maxOccurs="unbounded"
///   x+             → maxOccurs="unbounded"
///   (#PCDATA)      → xs:string simple content
///   (#PCDATA|a|…)* → mixed complex type over a choice of the elements
///   EMPTY          → empty complex type
///   ANY            → xs:anyType
///   ATTLIST        → xs:attribute uses (CDATA→xs:string, ID/IDREF/
///                    NMTOKEN(S)/ENTITY mapped to the xs built-ins,
///                    enumerations → xs:string restriction facets,
///                    #REQUIRED → use="required", #FIXED → fixed="…")
Schema FromDtd(const dtd::Dtd& dtd);

}  // namespace dtdevolve::xsd

#endif  // DTDEVOLVE_XSD_FROM_DTD_H_
