#include "xsd/parser.h"

#include <cstdlib>

#include "xml/parser.h"

namespace dtdevolve::xsd {

namespace {

/// Strips an `xs:`/`xsd:` prefix from a tag for matching.
std::string_view LocalName(std::string_view tag) {
  size_t colon = tag.find(':');
  return colon == std::string_view::npos ? tag : tag.substr(colon + 1);
}

StatusOr<Occurs> ParseOccurs(const xml::Element& element) {
  Occurs occurs;
  if (const std::string* min = element.FindAttribute("minOccurs")) {
    occurs.min = static_cast<uint32_t>(std::strtoul(min->c_str(), nullptr, 10));
  }
  if (const std::string* max = element.FindAttribute("maxOccurs")) {
    if (*max == "unbounded") {
      occurs.max = Occurs::kUnbounded;
    } else {
      occurs.max =
          static_cast<uint32_t>(std::strtoul(max->c_str(), nullptr, 10));
    }
  }
  if (occurs.max != Occurs::kUnbounded && occurs.max < occurs.min) {
    return Status::ParseError("maxOccurs < minOccurs");
  }
  return occurs;
}

StatusOr<Particle::Ptr> ParseParticle(const xml::Element& element) {
  std::string_view local = LocalName(element.tag());
  StatusOr<Occurs> occurs = ParseOccurs(element);
  if (!occurs.ok()) return occurs.status();
  if (local == "element") {
    const std::string* ref = element.FindAttribute("ref");
    if (ref == nullptr) {
      return Status::ParseError(
          "only global-element references are supported inside particles");
    }
    return Particle::ElementRef(*ref, *occurs);
  }
  if (local == "sequence" || local == "choice") {
    std::vector<Particle::Ptr> children;
    for (const xml::Element* child : element.ChildElements()) {
      StatusOr<Particle::Ptr> particle = ParseParticle(*child);
      if (!particle.ok()) return particle.status();
      children.push_back(std::move(*particle));
    }
    if (children.empty()) {
      return Status::ParseError("empty " + std::string(local));
    }
    return local == "sequence"
               ? Particle::Sequence(std::move(children), *occurs)
               : Particle::Choice(std::move(children), *occurs);
  }
  return Status::ParseError("unsupported particle <" +
                            std::string(element.tag()) + ">");
}

StatusOr<AttributeUse> ParseAttribute(const xml::Element& element) {
  AttributeUse use;
  const std::string* name = element.FindAttribute("name");
  if (name == nullptr) {
    return Status::ParseError("xs:attribute without a name");
  }
  use.name = *name;
  if (const std::string* type = element.FindAttribute("type")) {
    use.type = *type;
  }
  if (const std::string* required = element.FindAttribute("use")) {
    use.required = *required == "required";
  }
  if (const std::string* fixed = element.FindAttribute("fixed")) {
    use.fixed_value = *fixed;
  }
  if (const std::string* dflt = element.FindAttribute("default")) {
    use.default_value = *dflt;
  }
  // Inline enumeration restriction.
  for (const xml::Element* child : element.ChildElements()) {
    if (LocalName(child->tag()) != "simpleType") continue;
    use.type.clear();
    for (const xml::Element* restriction : child->ChildElements()) {
      if (LocalName(restriction->tag()) != "restriction") continue;
      for (const xml::Element* facet : restriction->ChildElements()) {
        if (LocalName(facet->tag()) != "enumeration") continue;
        if (const std::string* value = facet->FindAttribute("value")) {
          use.enumeration.push_back(*value);
        }
      }
    }
  }
  return use;
}

Status ParseElement(const xml::Element& element, Schema& schema) {
  const std::string* name = element.FindAttribute("name");
  if (name == nullptr) {
    return Status::ParseError("global xs:element without a name");
  }
  ElementDef& def = schema.AddElement(*name);

  if (const std::string* type = element.FindAttribute("type")) {
    def.content = (*type == "xs:anyType") ? ElementDef::ContentKind::kAny
                                          : ElementDef::ContentKind::kSimple;
    return Status::Ok();
  }

  const xml::Element* complex_type = nullptr;
  for (const xml::Element* child : element.ChildElements()) {
    if (LocalName(child->tag()) == "complexType") {
      complex_type = child;
      break;
    }
  }
  if (complex_type == nullptr) {
    def.content = ElementDef::ContentKind::kSimple;
    return Status::Ok();
  }

  bool mixed = false;
  if (const std::string* m = complex_type->FindAttribute("mixed")) {
    mixed = *m == "true";
  }

  for (const xml::Element* child : complex_type->ChildElements()) {
    std::string_view local = LocalName(child->tag());
    if (local == "sequence" || local == "choice" || local == "element") {
      StatusOr<Particle::Ptr> particle = ParseParticle(*child);
      if (!particle.ok()) return particle.status();
      def.particle = std::move(*particle);
    } else if (local == "attribute") {
      StatusOr<AttributeUse> use = ParseAttribute(*child);
      if (!use.ok()) return use.status();
      def.attributes.push_back(std::move(*use));
    } else if (local == "simpleContent") {
      def.content = ElementDef::ContentKind::kSimple;
      for (const xml::Element* extension : child->ChildElements()) {
        if (LocalName(extension->tag()) != "extension") continue;
        for (const xml::Element* attr : extension->ChildElements()) {
          if (LocalName(attr->tag()) != "attribute") continue;
          StatusOr<AttributeUse> use = ParseAttribute(*attr);
          if (!use.ok()) return use.status();
          def.attributes.push_back(std::move(*use));
        }
      }
      return Status::Ok();
    } else {
      return Status::ParseError("unsupported schema construct <" +
                                std::string(child->tag()) + ">");
    }
  }

  if (def.particle == nullptr) {
    def.content = ElementDef::ContentKind::kEmpty;
  } else {
    def.content = mixed ? ElementDef::ContentKind::kMixed
                        : ElementDef::ContentKind::kComplex;
  }
  return Status::Ok();
}

}  // namespace

StatusOr<Schema> ParseSchema(std::string_view text) {
  StatusOr<xml::Document> doc = xml::ParseDocument(text);
  if (!doc.ok()) return doc.status();
  if (LocalName(doc->root().tag()) != "schema") {
    return Status::ParseError("root element is not xs:schema");
  }
  Schema schema;
  for (const xml::Element* child : doc->root().ChildElements()) {
    std::string_view local = LocalName(child->tag());
    if (local == "element") {
      DTDEVOLVE_RETURN_IF_ERROR(ParseElement(*child, schema));
    } else if (local == "annotation" || local == "import" ||
               local == "include") {
      continue;  // tolerated and ignored
    } else {
      return Status::ParseError("unsupported top-level construct <" +
                                std::string(child->tag()) + ">");
    }
  }
  if (schema.size() == 0) {
    return Status::ParseError("schema declares no elements");
  }
  schema.set_root_name(schema.ElementNames().front());
  return schema;
}

}  // namespace dtdevolve::xsd
