#ifndef DTDEVOLVE_XSD_TO_DTD_H_
#define DTDEVOLVE_XSD_TO_DTD_H_

#include "dtd/dtd.h"
#include "util/status.h"
#include "xsd/schema.h"

namespace dtdevolve::xsd {

/// Converts a Schema back into a DTD — the inverse of `FromDtd`, closing
/// the §6 loop: a source can ingest an XML Schema, evolve it as a DTD,
/// and re-export it. Occurrence bounds map onto DTD operators exactly
/// when they are one of {1,1}, {0,1}, {0,∞}, {1,∞}; other finite bounds
/// {m,n} are expanded into m required plus (n−m) optional copies up to a
/// small limit, beyond which they widen to `*`/`+` (the closest DTD can
/// express; this is the only lossy case and it only ever *widens*).
StatusOr<dtd::Dtd> ToDtd(const Schema& schema);

}  // namespace dtdevolve::xsd

#endif  // DTDEVOLVE_XSD_TO_DTD_H_
