#include "evolve/windows.h"

#include <algorithm>

namespace dtdevolve::evolve {

Window ClassifyWindow(double invalidity_ratio, double psi) {
  psi = std::clamp(psi, 0.0, 0.5);
  if (invalidity_ratio <= psi) return Window::kOld;
  if (invalidity_ratio >= 1.0 - psi) return Window::kNew;
  return Window::kMisc;
}

std::string WindowName(Window window) {
  switch (window) {
    case Window::kOld:
      return "old";
    case Window::kMisc:
      return "misc";
    case Window::kNew:
      return "new";
  }
  return "?";
}

}  // namespace dtdevolve::evolve
