#include "evolve/policies.h"

#include <algorithm>
#include <map>
#include <utility>

namespace dtdevolve::evolve {

namespace {

using Kind = dtd::ContentModel::Kind;
using Ptr = dtd::ContentModel::Ptr;

/// Joins label names for trace messages.
std::string JoinLabels(const std::set<std::string>& labels) {
  std::string out;
  for (const std::string& label : labels) {
    if (!out.empty()) out += ',';
    out += label;
  }
  return out;
}

}  // namespace

PolicyEngine::PolicyEngine(const mining::SequenceRuleOracle& oracle,
                           const ElementStats& stats, PolicyOptions options)
    : oracle_(&oracle), stats_(&stats), options_(options) {}

void PolicyEngine::Fire(std::vector<PolicyTrace>* trace, int policy,
                        std::string description) const {
  if (trace != nullptr) trace->push_back({policy, std::move(description)});
}

double PolicyEngine::MeanPosition(const std::string& label) const {
  auto it = stats_->labels().find(label);
  if (it == stats_->labels().end()) return 0.5;
  return it->second.invalid.MeanPosition();
}

bool PolicyEngine::IsRepeated(const std::string& label) const {
  auto it = stats_->labels().find(label);
  if (it == stats_->labels().end()) return false;
  return it->second.invalid.repeated > 0;
}

uint32_t PolicyEngine::UniformCount(const std::string& label) const {
  auto it = stats_->labels().find(label);
  if (it == stats_->labels().end()) return 0;
  return it->second.invalid.UniformCount();
}

bool PolicyEngine::HasGroup(const std::set<std::string>& labels,
                            uint32_t count) const {
  GroupKey key;
  key.labels = labels;
  key.repeat_count = count;
  auto it = stats_->groups().find(key);
  return it != stats_->groups().end() && it->second > 0;
}

bool PolicyEngine::TreePresent(const std::set<std::string>& labels,
                               const std::set<std::string>& sequence) const {
  for (const std::string& label : labels) {
    if (sequence.count(label) > 0) return true;
  }
  return false;
}

bool PolicyEngine::TreeSometimesAbsent(
    const std::set<std::string>& labels) const {
  for (const auto& [sequence, count] : oracle_->frequent_sequences()) {
    if (!TreePresent(labels, sequence)) return true;
  }
  return false;
}

bool PolicyEngine::TreesMutuallyImply(const std::set<std::string>& a,
                                      const std::set<std::string>& b) const {
  bool seen = false;
  for (const auto& [sequence, count] : oracle_->frequent_sequences()) {
    bool pa = TreePresent(a, sequence);
    bool pb = TreePresent(b, sequence);
    if (pa != pb) return false;
    if (pa) seen = true;
  }
  return seen;
}

bool PolicyEngine::TreesMutuallyExclude(const std::set<std::string>& a,
                                        const std::set<std::string>& b) const {
  if (oracle_->frequent_sequences().empty()) return false;
  for (const auto& [sequence, count] : oracle_->frequent_sequences()) {
    bool pa = TreePresent(a, sequence);
    bool pb = TreePresent(b, sequence);
    if (pa == pb) return false;  // both or neither — not an alternative
  }
  return true;
}

namespace {

/// Position interval spanned by an entry's labels.
struct Interval {
  double lo = 1.0;
  double hi = 0.0;
};

}  // namespace

bool PolicyEngine::ContiguousForAnd(const std::vector<Entry>& c, size_t i,
                                    size_t j) const {
  if (!options_.contiguity_guard) return true;
  auto interval_of = [&](const Entry& entry) {
    Interval interval;
    for (const std::string& label : entry.labels) {
      double pos = MeanPosition(label);
      interval.lo = std::min(interval.lo, pos);
      interval.hi = std::max(interval.hi, pos);
    }
    return interval;
  };
  Interval a = interval_of(c[i]);
  Interval b = interval_of(c[j]);
  // The gap between the two intervals (empty when they overlap). An AND
  // binding is only allowed when no third entry's label sits inside it —
  // otherwise that entry could never be placed between them afterwards.
  double gap_lo = std::min(a.hi, b.hi);
  double gap_hi = std::max(a.lo, b.lo);
  if (gap_lo >= gap_hi) return true;
  for (size_t k = 0; k < c.size(); ++k) {
    if (k == i || k == j) continue;
    for (const std::string& label : c[k].labels) {
      double pos = MeanPosition(label);
      if (pos > gap_lo && pos < gap_hi) return false;
    }
  }
  return true;
}

Ptr PolicyEngine::WrapAlternative(const std::string& label) const {
  Ptr name = dtd::ContentModel::Name(label);
  if (IsRepeated(label)) return dtd::ContentModel::Plus(std::move(name));
  return name;
}

PolicyEngine::Entry PolicyEngine::MakeEntry(Ptr tree,
                                            std::set<std::string> labels) const {
  Entry entry;
  double sum = 0.0;
  for (const std::string& label : labels) sum += MeanPosition(label);
  entry.position = labels.empty() ? 0.5 : sum / static_cast<double>(labels.size());
  entry.tree = std::move(tree);
  entry.labels = std::move(labels);
  return entry;
}

// ---------------------------------------------------------------------------
// Policy 1: AND-binding among a maximal mutually-implying element set.
// ---------------------------------------------------------------------------
bool PolicyEngine::Policy1(std::vector<Entry>& c,
                           std::vector<PolicyTrace>* trace) {
  // Mutual implication with confidence 1 means identical presence
  // profiles across the frequent sequences — an equivalence relation, so
  // the maximal sets L_k are exactly the profile classes.
  const auto& sequences = oracle_->frequent_sequences();
  if (sequences.empty()) return false;
  std::map<std::vector<bool>, std::set<std::string>> classes;
  for (const Entry& entry : c) {
    if (!entry.IsElement()) continue;
    const std::string& label = *entry.labels.begin();
    std::vector<bool> profile;
    profile.reserve(sequences.size());
    bool occurs = false;
    for (const auto& [sequence, count] : sequences) {
      bool present = sequence.count(label) > 0;
      profile.push_back(present);
      occurs = occurs || present;
    }
    if (occurs) classes[profile].insert(label);
  }

  bool fired = false;
  for (auto& [profile, class_members] : classes) {
    if (class_members.size() < 2) continue;
    // Members ordered by mean recorded position.
    std::vector<std::string> class_ordered(class_members.begin(),
                                           class_members.end());
    std::stable_sort(class_ordered.begin(), class_ordered.end(),
                     [&](const std::string& a, const std::string& b) {
                       return MeanPosition(a) < MeanPosition(b);
                     });

    // Contiguity refinement: an AND group must not jump over unrelated
    // content. Recorded sequences are order-free, so mean positions are
    // the only adjacency signal — split the class wherever some label
    // outside it falls strictly between two consecutive members.
    std::vector<double> outside_positions;
    for (const Entry& entry : c) {
      for (const std::string& label : entry.labels) {
        if (class_members.count(label) == 0) {
          outside_positions.push_back(MeanPosition(label));
        }
      }
    }
    std::vector<std::vector<std::string>> runs;
    runs.emplace_back();
    runs.back().push_back(class_ordered.front());
    for (size_t i = 1; i < class_ordered.size(); ++i) {
      double lo = MeanPosition(class_ordered[i - 1]);
      double hi = MeanPosition(class_ordered[i]);
      bool interleaved = false;
      for (double pos : outside_positions) {
        if (options_.contiguity_guard && pos > lo && pos < hi) {
          interleaved = true;
          break;
        }
      }
      if (interleaved) runs.emplace_back();
      runs.back().push_back(class_ordered[i]);
    }

    for (const std::vector<std::string>& ordered : runs) {
    if (ordered.size() < 2) continue;
    std::set<std::string> members(ordered.begin(), ordered.end());

    // Repetition sub-cases of the appendix.
    bool all_once = true;
    uint32_t shared_count = UniformCount(ordered.front());
    bool all_same = shared_count > 0;
    for (const std::string& label : ordered) {
      uint32_t u = UniformCount(label);
      if (u != 1) all_once = false;
      if (u == 0 || u != shared_count) all_same = false;
    }

    Ptr tree;
    if (all_once) {
      // Case 1: every member always occurs exactly once — a plain AND.
      tree = dtd::SeqOfNames(ordered);
      Fire(trace, 1, "AND(" + JoinLabels(members) + ")");
    } else if (all_same && shared_count > 1 &&
               HasGroup(members, shared_count)) {
      // Case 2: all members repeated the same number of times, recorded
      // as a group — a repeatable AND.
      tree = dtd::ContentModel::Star(dtd::SeqOfNames(ordered));
      Fire(trace, 1, "AND*(" + JoinLabels(members) + ")");
    } else {
      // Case 3: mixed repetitions. Take maximal disjoint recorded groups
      // inside the class; leftovers repeat independently (wrapped in +)
      // or occur once.
      std::vector<std::set<std::string>> chosen_groups;
      {
        // Greedy by descending counter.
        std::vector<std::pair<uint64_t, const GroupKey*>> candidates;
        for (const auto& [key, counter] : stats_->groups()) {
          if (key.labels.size() < 2 || counter == 0) continue;
          if (!std::includes(members.begin(), members.end(),
                             key.labels.begin(), key.labels.end())) {
            continue;
          }
          candidates.emplace_back(counter, &key);
        }
        std::stable_sort(candidates.begin(), candidates.end(),
                         [](const auto& a, const auto& b) {
                           return a.first > b.first;
                         });
        std::set<std::string> used;
        for (const auto& [counter, key] : candidates) {
          bool overlap = false;
          for (const std::string& label : key->labels) {
            if (used.count(label) > 0) {
              overlap = true;
              break;
            }
          }
          if (overlap) continue;
          chosen_groups.push_back(key->labels);
          used.insert(key->labels.begin(), key->labels.end());
        }
      }
      std::set<std::string> grouped;
      for (const auto& group : chosen_groups) {
        grouped.insert(group.begin(), group.end());
      }

      struct Piece {
        Ptr tree;
        double position;
      };
      std::vector<Piece> pieces;
      for (const auto& group : chosen_groups) {
        std::vector<std::string> group_ordered(group.begin(), group.end());
        std::stable_sort(group_ordered.begin(), group_ordered.end(),
                         [&](const std::string& a, const std::string& b) {
                           return MeanPosition(a) < MeanPosition(b);
                         });
        double sum = 0.0;
        for (const std::string& label : group) sum += MeanPosition(label);
        pieces.push_back(
            {dtd::ContentModel::Plus(dtd::SeqOfNames(group_ordered)),
             sum / static_cast<double>(group.size())});
      }
      for (const std::string& label : ordered) {
        if (grouped.count(label) > 0) continue;
        Ptr leaf = dtd::ContentModel::Name(label);
        if (IsRepeated(label)) {
          leaf = dtd::ContentModel::Plus(std::move(leaf));
        }
        pieces.push_back({std::move(leaf), MeanPosition(label)});
      }
      std::stable_sort(pieces.begin(), pieces.end(),
                       [](const Piece& a, const Piece& b) {
                         return a.position < b.position;
                       });
      std::vector<Ptr> children;
      children.reserve(pieces.size());
      for (Piece& piece : pieces) children.push_back(std::move(piece.tree));
      tree = children.size() == 1 ? std::move(children.front())
                                  : dtd::ContentModel::Seq(std::move(children));
      Fire(trace, 1, "AND-mixed(" + JoinLabels(members) + ")");
    }

    // Replace the member entries with the combined tree.
    std::erase_if(c, [&](const Entry& entry) {
      return entry.IsElement() && members.count(*entry.labels.begin()) > 0;
    });
    c.push_back(MakeEntry(std::move(tree), members));
    fired = true;
    }  // runs
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Policies 2 and 3: AND-binding between an element and an operator tree.
// ---------------------------------------------------------------------------
bool PolicyEngine::Policy2and3(std::vector<Entry>& c,
                               std::vector<PolicyTrace>* trace) {
  bool fired = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t t = 0; t < c.size() && !progress; ++t) {
      Kind root = c[t].tree->kind();
      bool star_like = root == Kind::kStar || root == Kind::kPlus;
      bool and_like = root == Kind::kAnd;
      if (!star_like && !and_like) continue;
      for (size_t x = 0; x < c.size(); ++x) {
        if (x == t || !c[x].IsElement()) continue;
        const std::string& label = *c[x].labels.begin();
        bool bind;
        int policy;
        if (star_like) {
          // Policy 2: the tree's labels imply the element's presence.
          bind = oracle_->Implies(c[t].labels, {}, label, /*rhs_present=*/true);
          policy = 2;
        } else {
          // Policy 3: mutual implication between the element and every
          // label of the AND tree.
          bind = oracle_->Implies(c[t].labels, {}, label, /*rhs_present=*/true);
          for (const std::string& l : c[t].labels) {
            bind = bind && oracle_->Implies({label}, {}, l, /*rhs_present=*/true);
          }
          policy = 3;
        }
        if (!bind || !ContiguousForAnd(c, t, x)) continue;
        Ptr element_tree = std::move(c[x].tree);
        std::set<std::string> labels = c[t].labels;
        labels.insert(label);
        std::vector<Ptr> children;
        if (MeanPosition(label) < c[t].position) {
          children.push_back(std::move(element_tree));
          children.push_back(std::move(c[t].tree));
        } else {
          children.push_back(std::move(c[t].tree));
          children.push_back(std::move(element_tree));
        }
        Ptr combined = dtd::ContentModel::Seq(std::move(children));
        Fire(trace, policy,
             "AND(" + JoinLabels(labels) + ")");
        size_t low = std::min(t, x);
        size_t high = std::max(t, x);
        c.erase(c.begin() + high);
        c.erase(c.begin() + low);
        c.push_back(MakeEntry(std::move(combined), std::move(labels)));
        fired = true;
        progress = true;
        break;
      }
    }
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Policies 4 and 5: OR-binding among mutually exclusive elements.
// ---------------------------------------------------------------------------
bool PolicyEngine::Policy4and5(std::vector<Entry>& c,
                               std::vector<PolicyTrace>* trace) {
  if (!options_.enable_or) return false;
  bool fired = false;
  bool progress = true;
  while (progress) {
    progress = false;
    // Element labels currently in C, ordered by position for determinism.
    std::vector<std::string> elements;
    for (const Entry& entry : c) {
      if (entry.IsElement()) elements.push_back(*entry.labels.begin());
    }
    std::stable_sort(elements.begin(), elements.end(),
                     [&](const std::string& a, const std::string& b) {
                       return MeanPosition(a) < MeanPosition(b);
                     });
    for (const std::string& seed : elements) {
      // Grow the candidate set by pairwise exclusion (never co-occurring),
      // then verify the exactly-one property collectively — pairwise
      // ExactlyOneOf cannot grow beyond two alternatives.
      std::set<std::string> members = {seed};
      for (const std::string& candidate : elements) {
        if (members.count(candidate) > 0) continue;
        bool disjoint = true;
        for (const std::string& member : members) {
          if (oracle_->Support({member, candidate}) > 0.0) {
            disjoint = false;
            break;
          }
        }
        if (disjoint) members.insert(candidate);
      }
      if (members.size() < 2 || !oracle_->ExactlyOneOf(members)) continue;
      // Alternative order is semantically irrelevant; use the (sorted)
      // label order for deterministic, readable output.
      std::vector<std::string> ordered(members.begin(), members.end());
      std::vector<Ptr> alternatives;
      alternatives.reserve(ordered.size());
      for (const std::string& label : ordered) {
        alternatives.push_back(WrapAlternative(label));
      }
      Ptr tree = dtd::ContentModel::Choice(std::move(alternatives));
      Fire(trace, members.size() == 2 ? 4 : 5,
           "OR(" + JoinLabels(members) + ")");
      std::erase_if(c, [&](const Entry& entry) {
        return entry.IsElement() && members.count(*entry.labels.begin()) > 0;
      });
      c.push_back(MakeEntry(std::move(tree), members));
      fired = true;
      progress = true;
      break;
    }
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Policies 6–8: OR-binding between an element and an operator tree.
// ---------------------------------------------------------------------------
bool PolicyEngine::Policy678(std::vector<Entry>& c,
                             std::vector<PolicyTrace>* trace) {
  if (!options_.enable_or) return false;
  bool fired = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t t = 0; t < c.size() && !progress; ++t) {
      if (c[t].IsElement()) continue;
      for (size_t x = 0; x < c.size(); ++x) {
        if (x == t || !c[x].IsElement()) continue;
        const std::string& label = *c[x].labels.begin();
        if (!TreesMutuallyExclude({label}, c[t].labels)) continue;
        int policy;
        switch (c[t].tree->kind()) {
          case Kind::kStar:
          case Kind::kPlus:
          case Kind::kOptional:
            policy = 6;
            break;
          case Kind::kAnd:
            policy = 7;
            break;
          default:
            policy = 8;
            break;
        }
        std::set<std::string> labels = c[t].labels;
        labels.insert(label);
        std::vector<Ptr> alternatives;
        alternatives.push_back(WrapAlternative(label));
        alternatives.push_back(std::move(c[t].tree));
        Ptr tree = dtd::ContentModel::Choice(std::move(alternatives));
        Fire(trace, policy, "OR(" + JoinLabels(labels) + ")");
        size_t low = std::min(t, x);
        size_t high = std::max(t, x);
        c.erase(c.begin() + high);
        c.erase(c.begin() + low);
        c.push_back(MakeEntry(std::move(tree), std::move(labels)));
        fired = true;
        progress = true;
        break;
      }
    }
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Policy 9: unary wrap of leftover elements (repetition / optionality).
// ---------------------------------------------------------------------------
bool PolicyEngine::Policy9(std::vector<Entry>& c,
                           std::vector<PolicyTrace>* trace) {
  bool fired = false;
  for (Entry& entry : c) {
    if (!entry.IsElement()) continue;
    const std::string label = *entry.labels.begin();
    bool repeated = IsRepeated(label);
    bool optional = !oracle_->AlwaysPresent(label);
    if (!repeated && !optional) continue;
    Ptr name = std::move(entry.tree);
    if (repeated && optional) {
      entry.tree = dtd::ContentModel::Star(std::move(name));
      Fire(trace, 9, label + "*");
    } else if (repeated) {
      entry.tree = dtd::ContentModel::Plus(std::move(name));
      Fire(trace, 9, label + "+");
    } else {
      entry.tree = dtd::ContentModel::Opt(std::move(name));
      Fire(trace, 9, label + "?");
    }
    fired = true;
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Policies 10–12: binding between two operator trees.
// ---------------------------------------------------------------------------
bool PolicyEngine::Policy10to12(std::vector<Entry>& c,
                                std::vector<PolicyTrace>* trace) {
  bool fired = false;
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < c.size() && !progress; ++i) {
      for (size_t j = i + 1; j < c.size(); ++j) {
        if (c[i].IsElement() || c[j].IsElement()) continue;
        bool both_or = c[i].tree->kind() == Kind::kOr &&
                       c[j].tree->kind() == Kind::kOr;
        std::set<std::string> labels = c[i].labels;
        labels.insert(c[j].labels.begin(), c[j].labels.end());
        Ptr tree;
        int policy = 0;
        if (options_.enable_or && both_or &&
            TreesMutuallyExclude(c[i].labels, c[j].labels)) {
          // Policy 10: merge two OR trees into one alternative list.
          std::vector<Ptr> alternatives;
          for (Ptr& child : c[i].tree->children()) {
            alternatives.push_back(std::move(child));
          }
          for (Ptr& child : c[j].tree->children()) {
            alternatives.push_back(std::move(child));
          }
          tree = dtd::ContentModel::Choice(std::move(alternatives));
          policy = 10;
        } else if (TreesMutuallyImply(c[i].labels, c[j].labels) &&
                   ContiguousForAnd(c, i, j)) {
          // Policy 11: the groups always occur together — AND.
          std::vector<Ptr> children;
          if (c[i].position <= c[j].position) {
            children.push_back(std::move(c[i].tree));
            children.push_back(std::move(c[j].tree));
          } else {
            children.push_back(std::move(c[j].tree));
            children.push_back(std::move(c[i].tree));
          }
          tree = dtd::ContentModel::Seq(std::move(children));
          policy = 11;
        } else if (options_.enable_or &&
                   TreesMutuallyExclude(c[i].labels, c[j].labels)) {
          // Policy 12: the groups are alternatives — OR.
          std::vector<Ptr> alternatives;
          alternatives.push_back(std::move(c[i].tree));
          alternatives.push_back(std::move(c[j].tree));
          tree = dtd::ContentModel::Choice(std::move(alternatives));
          policy = 12;
        } else {
          continue;
        }
        Fire(trace, policy,
             (policy == 11 ? "AND(" : "OR(") + JoinLabels(labels) + ")");
        c.erase(c.begin() + j);
        c.erase(c.begin() + i);
        c.push_back(MakeEntry(std::move(tree), std::move(labels)));
        fired = true;
        progress = true;
        break;
      }
    }
  }
  return fired;
}

// ---------------------------------------------------------------------------
// Policy 13: fallback AND over everything left.
// ---------------------------------------------------------------------------
Ptr PolicyEngine::Policy13(std::vector<Entry>& c,
                           std::vector<PolicyTrace>* trace) {
  std::stable_sort(c.begin(), c.end(), [](const Entry& a, const Entry& b) {
    return a.position < b.position;
  });
  std::vector<Ptr> children;
  std::set<std::string> all_labels;
  children.reserve(c.size());
  for (Entry& entry : c) {
    Ptr tree = std::move(entry.tree);
    if (!tree->Nullable() && TreeSometimesAbsent(entry.labels)) {
      tree = dtd::ContentModel::Opt(std::move(tree));
    }
    all_labels.insert(entry.labels.begin(), entry.labels.end());
    children.push_back(std::move(tree));
  }
  if (children.size() == 1) {
    // Basic case: C was already a singleton.
    Fire(trace, 0, "basic(" + JoinLabels(all_labels) + ")");
    return std::move(children.front());
  }
  Fire(trace, 13, "AND(" + JoinLabels(all_labels) + ")");
  return dtd::ContentModel::Seq(std::move(children));
}

dtd::ContentModel::Ptr PolicyEngine::Run(const std::set<std::string>& labels,
                                         std::vector<PolicyTrace>* trace) {
  if (labels.empty()) return nullptr;
  std::vector<Entry> c;
  c.reserve(labels.size());
  for (const std::string& label : labels) {
    c.push_back(MakeEntry(dtd::ContentModel::Name(label), {label}));
  }
  // The paper's pipeline: each policy applied exhaustively, in turn,
  // never revisiting an earlier one; policy 13 terminates.
  Policy1(c, trace);
  if (c.size() > 1) Policy2and3(c, trace);
  if (c.size() > 1) Policy4and5(c, trace);
  if (c.size() > 1) Policy678(c, trace);
  Policy9(c, trace);
  if (c.size() > 1) Policy10to12(c, trace);
  return Policy13(c, trace);
}

}  // namespace dtdevolve::evolve
