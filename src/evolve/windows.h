#ifndef DTDEVOLVE_EVOLVE_WINDOWS_H_
#define DTDEVOLVE_EVOLVE_WINDOWS_H_

#include <string>

namespace dtdevolve::evolve {

/// The three evolution windows of §4.1, selected by the invalidity ratio
/// I(e) and the threshold ψ ∈ [0, 0.5]:
///  * old  — I(e) ∈ [0, ψ]:       keep the declaration (possibly restrict
///                                 operators to the valid instances);
///  * new  — I(e) ∈ [1−ψ, 1]:     rebuild the declaration from the
///                                 recorded structures;
///  * misc — I(e) ∈ (ψ, 1−ψ):     OR the rebuilt structure with the old
///                                 declaration, then simplify.
enum class Window { kOld, kMisc, kNew };

/// Classifies an invalidity ratio. ψ is clamped into [0, 0.5]; with
/// ψ = 0.5 the misc window is empty and 0.5 itself falls in `old`.
Window ClassifyWindow(double invalidity_ratio, double psi);

/// "old" / "misc" / "new" for reports.
std::string WindowName(Window window);

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_WINDOWS_H_
