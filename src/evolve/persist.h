#ifndef DTDEVOLVE_EVOLVE_PERSIST_H_
#define DTDEVOLVE_EVOLVE_PERSIST_H_

#include <string>
#include <string_view>

#include "evolve/extended_dtd.h"
#include "util/status.h"

namespace dtdevolve::evolve {

/// Serialization of the extended DTD — the DTD itself plus every
/// recording structure (counters, label statistics with repetition
/// histograms, sequences, groups, nested plus structures) and the
/// document-level aggregates. A source persisted mid-stream resumes
/// recording exactly where it left off: the round-trip is lossless
/// (property-tested), so an evolution after save/load produces the same
/// DTD as one without.
///
/// The format is a line-oriented text format versioned by its header;
/// XML names never contain whitespace, so tokens are space-separated.
std::string SerializeExtendedDtd(const ExtendedDtd& ext);

/// Parses a serialization produced by `SerializeExtendedDtd`.
StatusOr<ExtendedDtd> DeserializeExtendedDtd(std::string_view data);

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_PERSIST_H_
