#ifndef DTDEVOLVE_EVOLVE_PERSIST_H_
#define DTDEVOLVE_EVOLVE_PERSIST_H_

#include <string>
#include <string_view>

#include "evolve/extended_dtd.h"
#include "util/status.h"

namespace dtdevolve::evolve {

/// Serialization of the extended DTD — the DTD itself plus every
/// recording structure (counters, label statistics with repetition
/// histograms, sequences, groups, nested plus structures) and the
/// document-level aggregates. A source persisted mid-stream resumes
/// recording exactly where it left off: the round-trip is lossless
/// (property-tested), so an evolution after save/load produces the same
/// DTD as one without.
///
/// The format is a line-oriented text format versioned by its header;
/// XML names never contain whitespace, so tokens are space-separated.
std::string SerializeExtendedDtd(const ExtendedDtd& ext);

/// Parses a serialization produced by `SerializeExtendedDtd`.
StatusOr<ExtendedDtd> DeserializeExtendedDtd(std::string_view data);

/// Writes the serialization of `ext` to `path` **atomically** via
/// `io::WriteFileAtomic`: the bytes go to `path + ".tmp"` in the same
/// directory, are fsynced, the temporary is renamed over `path`, and the
/// parent directory is fsynced so the rename itself survives a crash. A
/// crash at any point leaves either the previous snapshot or the new one
/// — never a torn file. Going through the `io` layer also makes the
/// failure paths fault-injectable (`io/fault.h`).
Status SaveExtendedDtdFile(const ExtendedDtd& ext, const std::string& path);

/// Reads and parses a snapshot written by `SaveExtendedDtdFile`.
/// A missing file yields `kNotFound`; a truncated or corrupted snapshot
/// yields a clean `kParseError` from the deserializer.
StatusOr<ExtendedDtd> LoadExtendedDtdFile(const std::string& path);

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_PERSIST_H_
