#ifndef DTDEVOLVE_EVOLVE_POLICIES_H_
#define DTDEVOLVE_EVOLVE_POLICIES_H_

#include <set>
#include <string>
#include <vector>

#include "dtd/content_model.h"
#include "evolve/stats.h"
#include "mining/rules.h"

namespace dtdevolve::evolve {

/// One policy application, for the policy-distribution experiment and for
/// explaining an evolution decision. Policy 0 denotes the basic cases.
struct PolicyTrace {
  int policy = 0;
  std::string description;
};

struct PolicyOptions {
  /// When false, the OR-producing policies (4–8, 10, 12) are disabled —
  /// the ablation that mimics approaches unable to generate the OR
  /// operator (Moh–Lim–Ng, §5).
  bool enable_or = true;
  /// When false, the contiguity guard on AND-binding (P1/P11) is
  /// disabled — the ablation showing why AND groups must not jump over
  /// interleaved content (DESIGN.md §3).
  bool contiguity_guard = true;
};

/// The policy engine of §4.2 / Appendix A. Starting from the set C of
/// trees (initially one per subelement tag), it applies the 13 heuristic
/// policies in turn — each exhaustively, never revisiting an earlier one —
/// until C is a singleton; that tree is the new binding of the
/// subelements. Policies 1–3 follow the appendix verbatim; the appendix
/// is truncated after policy 3 in the available paper text, so 4–13 are
/// reconstructed from the constraints the paper states (see DESIGN.md):
///
///   1  AND among a maximal mutually-implying element set (three
///      repetition sub-cases, with recorded groups);
///   2  AND between a *-rooted tree and an element its labels imply;
///   3  AND between an AND-rooted tree and a mutually-implying element;
///   4  OR between two mutually-exclusive elements (exactly one present);
///   5  OR among a maximal exclusive element set (> 2 elements);
///   6  OR between an element and a */+-rooted tree (mutual exclusion);
///   7  OR between an element and an AND-rooted tree;
///   8  OR between an element and an OR-rooted tree (added alternative);
///   9  unary wrap of leftover elements: repeated → +/*, optional → ?;
///   10 merge of two OR-rooted trees under mutual exclusion;
///   11 AND of two operator-rooted trees under mutual implication;
///   12 OR of two operator-rooted trees under mutual exclusion;
///   13 fallback: AND of everything left, wrapping sometimes-absent
///      non-nullable subtrees in ? — guarantees termination.
///
/// AND children are ordered by the mean recorded position of their labels
/// (recorded sequences are order-free, so this is the only order signal).
class PolicyEngine {
 public:
  /// `oracle` answers confidence-1 rule queries over the frequent
  /// sequences; `stats` supplies repetition histograms, groups and
  /// positions. Both must outlive the engine.
  PolicyEngine(const mining::SequenceRuleOracle& oracle,
               const ElementStats& stats, PolicyOptions options = {});

  /// Builds the binding of `labels` (the tags found in the frequent
  /// sequences). Returns null when `labels` is empty. Appends one
  /// PolicyTrace per application when `trace` is non-null.
  dtd::ContentModel::Ptr Run(const std::set<std::string>& labels,
                             std::vector<PolicyTrace>* trace);

 private:
  struct Entry {
    dtd::ContentModel::Ptr tree;
    std::set<std::string> labels;  // λ(T)
    double position = 0.5;         // mean recorded position, for ordering

    bool IsElement() const {
      return tree->kind() == dtd::ContentModel::Kind::kName;
    }
  };

  void Fire(std::vector<PolicyTrace>* trace, int policy,
            std::string description) const;

  // Label-level queries against the recorded statistics.
  double MeanPosition(const std::string& label) const;
  bool IsRepeated(const std::string& label) const;
  uint32_t UniformCount(const std::string& label) const;
  bool HasGroup(const std::set<std::string>& labels, uint32_t count) const;

  // Sequence-level queries about trees (presence = any λ(T) label).
  bool TreePresent(const std::set<std::string>& labels,
                   const std::set<std::string>& sequence) const;
  bool TreeSometimesAbsent(const std::set<std::string>& labels) const;
  bool TreesMutuallyImply(const std::set<std::string>& a,
                          const std::set<std::string>& b) const;
  bool TreesMutuallyExclude(const std::set<std::string>& a,
                            const std::set<std::string>& b) const;

  /// True when entries i and j of C may be AND-bound without jumping over
  /// a third entry's recorded position range.
  bool ContiguousForAnd(const std::vector<Entry>& c, size_t i,
                        size_t j) const;

  /// Wraps a member of an OR alternative per its repetition evidence.
  dtd::ContentModel::Ptr WrapAlternative(const std::string& label) const;

  /// Entry for a freshly built tree over `labels`.
  Entry MakeEntry(dtd::ContentModel::Ptr tree,
                  std::set<std::string> labels) const;

  // The policies; each returns true when it fired at least once.
  bool Policy1(std::vector<Entry>& c, std::vector<PolicyTrace>* trace);
  bool Policy2and3(std::vector<Entry>& c, std::vector<PolicyTrace>* trace);
  bool Policy4and5(std::vector<Entry>& c, std::vector<PolicyTrace>* trace);
  bool Policy678(std::vector<Entry>& c, std::vector<PolicyTrace>* trace);
  bool Policy9(std::vector<Entry>& c, std::vector<PolicyTrace>* trace);
  bool Policy10to12(std::vector<Entry>& c, std::vector<PolicyTrace>* trace);
  dtd::ContentModel::Ptr Policy13(std::vector<Entry>& c,
                                  std::vector<PolicyTrace>* trace);

  const mining::SequenceRuleOracle* oracle_;
  const ElementStats* stats_;
  PolicyOptions options_;
};

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_POLICIES_H_
