#include "evolve/extended_dtd.h"

namespace dtdevolve::evolve {

void ExtendedDtd::RecordDocumentDivergence(uint64_t total_elements,
                                           uint64_t invalid_elements) {
  ++documents_recorded_;
  total_elements_ += total_elements;
  invalid_elements_ += invalid_elements;
  if (total_elements > 0) {
    divergence_sum_ += static_cast<double>(invalid_elements) /
                       static_cast<double>(total_elements);
  }
}

double ExtendedDtd::MeanDivergence() const {
  if (documents_recorded_ == 0) return 0.0;
  return divergence_sum_ / static_cast<double>(documents_recorded_);
}

void ExtendedDtd::ResetStats() {
  stats_.clear();
  documents_recorded_ = 0;
  total_elements_ = 0;
  invalid_elements_ = 0;
  divergence_sum_ = 0.0;
}

size_t ExtendedDtd::MemoryFootprint() const {
  size_t bytes = sizeof(ExtendedDtd);
  for (const auto& [name, stats] : stats_) {
    bytes += name.size() + stats.MemoryFootprint();
  }
  return bytes;
}

}  // namespace dtdevolve::evolve
