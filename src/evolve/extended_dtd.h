#ifndef DTDEVOLVE_EVOLVE_EXTENDED_DTD_H_
#define DTDEVOLVE_EVOLVE_EXTENDED_DTD_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>

#include "dtd/dtd.h"
#include "evolve/stats.h"

namespace dtdevolve::evolve {

/// The *extended DTD* (§3.2): a DTD enriched with per-element recording
/// structures plus the per-document divergence aggregates the check phase
/// needs. The recorded information is aggregate-only — once a document is
/// recorded it never needs to be analyzed again (§2).
class ExtendedDtd {
 public:
  explicit ExtendedDtd(dtd::Dtd dtd) : dtd_(std::move(dtd)) {}

  ExtendedDtd(ExtendedDtd&&) = default;
  ExtendedDtd& operator=(ExtendedDtd&&) = default;

  const dtd::Dtd& dtd() const { return dtd_; }
  dtd::Dtd& mutable_dtd() { return dtd_; }

  /// Stats attached to the declaration of `name`, created on demand.
  /// Transparent lookup: the recorder probes with tag views and pays a
  /// key materialization only on first sight of a tag.
  ElementStats& StatsFor(std::string_view name) {
    auto it = stats_.find(name);
    if (it == stats_.end()) {
      it = stats_.emplace(std::string(name), ElementStats()).first;
    }
    return it->second;
  }
  const ElementStats* FindStats(std::string_view name) const {
    auto it = stats_.find(name);
    return it == stats_.end() ? nullptr : &it->second;
  }
  const std::map<std::string, ElementStats, std::less<>>& all_stats() const {
    return stats_;
  }

  /// Adds one classified document's contribution to the trigger aggregate:
  /// `invalid / total` is the document's non-valid-element fraction.
  void RecordDocumentDivergence(uint64_t total_elements,
                                uint64_t invalid_elements);

  uint64_t documents_recorded() const { return documents_recorded_; }
  uint64_t total_elements_recorded() const { return total_elements_; }
  uint64_t invalid_elements_recorded() const { return invalid_elements_; }

  /// The left-hand side of the paper's activation condition:
  ///   Σ_D (#nonvalid(D) / #elements(D)) / #Doc_T.
  /// 0 when no documents were recorded.
  double MeanDivergence() const;

  /// Clears all recorded information (after an evolution round the newly
  /// classified documents start a fresh DOC_cur).
  void ResetStats();

  /// Rough storage footprint of the auxiliary structures, in bytes.
  size_t MemoryFootprint() const;

  // --- Restore hooks (used by the persistence module only) -----------------

  double divergence_sum() const { return divergence_sum_; }
  void RestoreAggregates(uint64_t documents, uint64_t total_elements,
                         uint64_t invalid_elements, double divergence_sum) {
    documents_recorded_ = documents;
    total_elements_ = total_elements;
    invalid_elements_ = invalid_elements;
    divergence_sum_ = divergence_sum;
  }

 private:
  dtd::Dtd dtd_;
  std::map<std::string, ElementStats, std::less<>> stats_;
  uint64_t documents_recorded_ = 0;
  uint64_t total_elements_ = 0;
  uint64_t invalid_elements_ = 0;
  double divergence_sum_ = 0.0;
};

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_EXTENDED_DTD_H_
