#ifndef DTDEVOLVE_EVOLVE_STRUCTURE_BUILDER_H_
#define DTDEVOLVE_EVOLVE_STRUCTURE_BUILDER_H_

#include <cstddef>
#include <vector>

#include "dtd/content_model.h"
#include "evolve/policies.h"
#include "evolve/stats.h"

namespace dtdevolve::evolve {

struct BuildOptions {
  /// Minimum support µ of a sequence to be considered representative.
  double min_support = 0.1;
  /// Forwarded to the policy engine (OR ablation).
  bool enable_or = true;
  /// Forwarded to the policy engine (contiguity-guard ablation).
  bool contiguity_guard = true;
};

struct BuildOutcome {
  /// The inferred content model; null when nothing was recorded to infer
  /// from (no invalid instances).
  dtd::ContentModel::Ptr model;
  /// Policy applications performed, for the distribution experiment.
  std::vector<PolicyTrace> trace;
  /// Sequences that survived / failed the µ filter.
  size_t frequent_sequences = 0;
  size_t discarded_sequences = 0;
};

/// Determines a new content model for an element in the *new* window
/// (§4.2), from its recorded statistics alone:
///  1. the recorded sequences are completed with absent elements and the
///     most frequent ones (support > µ) are kept;
///  2. association rules with confidence 1 are extracted over them;
///  3. the 13 heuristic policies bind the subelement tags into a tree.
/// Instances carrying character data produce a `(#PCDATA | …)*` mixed
/// model (the only text-admitting form a DTD allows); instances with no
/// element children at all yield `(#PCDATA)` or `EMPTY`.
BuildOutcome BuildElementStructure(const ElementStats& stats,
                                   const BuildOptions& options = {});

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_STRUCTURE_BUILDER_H_
