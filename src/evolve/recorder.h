#ifndef DTDEVOLVE_EVOLVE_RECORDER_H_
#define DTDEVOLVE_EVOLVE_RECORDER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "evolve/extended_dtd.h"
#include "obs/metrics.h"
#include "validate/validator.h"
#include "xml/arena.h"
#include "xml/document.h"

namespace dtdevolve::evolve {

/// The recording phase (§3): after a document is classified into a DTD,
/// extract its structural information into the extended DTD so the
/// evolution phase never has to re-read documents.
///
/// Per element instance e_d matched to declaration e (by tag):
///  * full local similarity ⇒ the valid-instance counters are bumped
///    (plus label occurrence stats, which the operator restriction uses);
///  * otherwise the non-valid counters, the labels of αβ(e_d), the
///    sequence (tag set), per-label repetition stats and the repetition
///    groups are recorded, and the subtrees of *plus* labels (labels not
///    in the declaration) are recorded recursively so a declaration can
///    later be extracted for them.
///
/// The recorder caches a Validator over the target DTD; build a fresh
/// Recorder after the DTD evolves.
class Recorder {
 public:
  explicit Recorder(ExtendedDtd& target);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Records a whole classified document (its divergence contribution
  /// included). Returns the document's non-valid-element fraction.
  double RecordDocument(const xml::Document& doc);

  /// Arena twin for the streaming parse path: records the identical
  /// statistics (tag sequences, text flags, attribute names, plus
  /// structures, divergence) without a DOM — text presence comes from
  /// the parse-time `has_text` flag instead of a child rescan.
  double RecordDocument(const xml::ArenaDocument& doc);

  /// Records an element subtree (no document-level divergence update).
  void RecordTree(const xml::Element& root);
  void RecordTree(const xml::ArenaElement& root);

  /// Optional instrumentation: `documents` bumps once per recorded
  /// document, `elements` by the element count of each. Either may be
  /// null; the pointees must outlive the recorder.
  void set_metrics(obs::Counter* documents, obs::Counter* elements) {
    documents_recorded_metric_ = documents;
    elements_recorded_metric_ = elements;
  }

 private:
  /// One traversal shared by the DOM and arena paths (instantiated in
  /// the .cc for `xml::Element` and `xml::ArenaElement`); small shape
  /// adapters bridge the representation differences.
  /// Tag views stay valid for the traversal (they point into the
  /// document being recorded), so the per-document valid/invalid tag
  /// sets never copy a string.
  template <typename ElementT>
  void Walk(const ElementT& element, std::set<std::string_view>& doc_valid,
            std::set<std::string_view>& doc_invalid, uint64_t& total,
            uint64_t& invalid);
  /// Recursively records a plus-element instance against an implicit
  /// empty declaration: every child is again a plus element.
  template <typename ElementT>
  void RecordPlusInstance(ElementStats& stats, const ElementT& element);
  template <typename ElementT>
  void RecordTreeImpl(const ElementT& root);
  template <typename ElementT>
  double RecordRootImpl(const ElementT& root);

  /// Sorted symbol set of a declaration's content model, computed once
  /// per declaration instead of once per invalid instance. Keyed by
  /// declaration address — safe because the recorder's documented
  /// lifetime ends when the target DTD changes.
  const std::vector<std::string>& DeclaredSymbolsOf(const dtd::ElementDecl& decl);

  /// The three per-element name resolutions (declaration, content
  /// automaton, stats slot), cached against the element's interned tag
  /// id. All three pointees are node-stable and live as long as the
  /// recorder (the stats map only grows; the validator's automata are
  /// fixed at construction). Dense ids above the cap and unresolved
  /// (`kNoSymbol`) tags take the uncached string path.
  struct TagLookup {
    bool resolved = false;
    const dtd::ElementDecl* decl = nullptr;
    const dtd::Automaton* automaton = nullptr;
    ElementStats* stats = nullptr;
  };
  static constexpr size_t kMaxDenseTagIds = 4096;
  TagLookup ResolveTag(std::string_view tag);

  ExtendedDtd* target_;
  std::unique_ptr<validate::Validator> validator_;
  std::vector<TagLookup> tag_lookup_;
  std::map<const void*, std::vector<std::string>> declared_symbols_;
  obs::Counter* documents_recorded_metric_ = nullptr;
  obs::Counter* elements_recorded_metric_ = nullptr;
};

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_RECORDER_H_
