#ifndef DTDEVOLVE_EVOLVE_RECORDER_H_
#define DTDEVOLVE_EVOLVE_RECORDER_H_

#include <memory>
#include <set>
#include <string>

#include "evolve/extended_dtd.h"
#include "obs/metrics.h"
#include "validate/validator.h"
#include "xml/document.h"

namespace dtdevolve::evolve {

/// The recording phase (§3): after a document is classified into a DTD,
/// extract its structural information into the extended DTD so the
/// evolution phase never has to re-read documents.
///
/// Per element instance e_d matched to declaration e (by tag):
///  * full local similarity ⇒ the valid-instance counters are bumped
///    (plus label occurrence stats, which the operator restriction uses);
///  * otherwise the non-valid counters, the labels of αβ(e_d), the
///    sequence (tag set), per-label repetition stats and the repetition
///    groups are recorded, and the subtrees of *plus* labels (labels not
///    in the declaration) are recorded recursively so a declaration can
///    later be extracted for them.
///
/// The recorder caches a Validator over the target DTD; build a fresh
/// Recorder after the DTD evolves.
class Recorder {
 public:
  explicit Recorder(ExtendedDtd& target);

  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Records a whole classified document (its divergence contribution
  /// included). Returns the document's non-valid-element fraction.
  double RecordDocument(const xml::Document& doc);

  /// Records an element subtree (no document-level divergence update).
  void RecordTree(const xml::Element& root);

  /// Optional instrumentation: `documents` bumps once per recorded
  /// document, `elements` by the element count of each. Either may be
  /// null; the pointees must outlive the recorder.
  void set_metrics(obs::Counter* documents, obs::Counter* elements) {
    documents_recorded_metric_ = documents;
    elements_recorded_metric_ = elements;
  }

 private:
  void Walk(const xml::Element& element, std::set<std::string>& doc_valid,
            std::set<std::string>& doc_invalid, uint64_t& total,
            uint64_t& invalid);
  /// Recursively records a plus-element instance against an implicit
  /// empty declaration: every child is again a plus element.
  void RecordPlusInstance(ElementStats& stats, const xml::Element& element);

  ExtendedDtd* target_;
  std::unique_ptr<validate::Validator> validator_;
  obs::Counter* documents_recorded_metric_ = nullptr;
  obs::Counter* elements_recorded_metric_ = nullptr;
};

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_RECORDER_H_
