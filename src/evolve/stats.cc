#include "evolve/stats.h"

namespace dtdevolve::evolve {

void OccurrenceStats::RecordInstance(uint32_t count_in_instance) {
  if (count_in_instance == 0) return;
  ++instances;
  if (count_in_instance > 1) ++repeated;
  occurrences += count_in_instance;
  ++count_histogram[count_in_instance];
}

uint32_t OccurrenceStats::UniformCount() const {
  if (count_histogram.size() != 1) return 0;
  return count_histogram.begin()->first;
}

void OccurrenceStats::MergeFrom(const OccurrenceStats& other) {
  instances += other.instances;
  repeated += other.repeated;
  occurrences += other.occurrences;
  for (const auto& [count, n] : other.count_histogram) {
    count_histogram[count] += n;
  }
  position_sum += other.position_sum;
}

std::set<std::string> ElementStats::RecordInstance(
    const std::vector<std::string>& child_tags, bool locally_valid,
    bool has_text) {
  // Per-label occurrence counts and positions within this instance.
  std::map<std::string, uint32_t> counts;
  std::map<std::string, double> positions;
  const double denom =
      child_tags.size() > 1 ? static_cast<double>(child_tags.size() - 1) : 1.0;
  for (size_t i = 0; i < child_tags.size(); ++i) {
    ++counts[child_tags[i]];
    positions[child_tags[i]] += static_cast<double>(i) / denom;
  }

  if (has_text) ++text_instances_;
  if (child_tags.empty() && !has_text) ++empty_instances_;

  std::set<std::string> label_set;
  for (const auto& [label, count] : counts) label_set.insert(label);

  if (locally_valid) {
    ++valid_instances_;
    for (const auto& [label, count] : counts) {
      OccurrenceStats& occ = labels_[label].valid;
      occ.RecordInstance(count);
      occ.position_sum += positions[label];
    }
    return label_set;
  }

  ++invalid_instances_;
  ++sequences_[label_set];
  for (const auto& [label, count] : counts) {
    OccurrenceStats& occ = labels_[label].invalid;
    occ.RecordInstance(count);
    occ.position_sum += positions[label];
  }
  // Groups: for each repetition count m > 1, the set of labels repeated
  // exactly m times in this instance (§3.2).
  std::map<uint32_t, std::set<std::string>> by_count;
  for (const auto& [label, count] : counts) {
    if (count > 1) by_count[count].insert(label);
  }
  for (auto& [count, labels] : by_count) {
    GroupKey key;
    key.labels = std::move(labels);
    key.repeat_count = count;
    ++groups_[key];
  }
  return label_set;
}

double ElementStats::InvalidityRatio() const {
  uint64_t n = total_instances();
  if (n == 0) return 0.0;
  return static_cast<double>(invalid_instances_) / static_cast<double>(n);
}

std::vector<std::pair<std::set<std::string>, uint32_t>>
ElementStats::SequenceList() const {
  std::vector<std::pair<std::set<std::string>, uint32_t>> out;
  out.reserve(sequences_.size());
  for (const auto& [labels, count] : sequences_) {
    out.emplace_back(labels, static_cast<uint32_t>(count));
  }
  return out;
}

std::set<std::string> ElementStats::LabelUniverse() const {
  std::set<std::string> out;
  for (const auto& [labels, count] : sequences_) {
    out.insert(labels.begin(), labels.end());
  }
  return out;
}

void ElementStats::RecordAttributes(const std::vector<std::string>& names) {
  for (const std::string& name : names) ++attribute_counts_[name];
}

ElementStats& ElementStats::PlusStructureFor(const std::string& label) {
  LabelStats& entry = labels_[label];
  if (!entry.plus_structure) {
    entry.plus_structure = std::make_unique<ElementStats>();
  }
  return *entry.plus_structure;
}

void ElementStats::Clear() { *this = ElementStats(); }

void ElementStats::RestoreCounters(uint64_t valid, uint64_t invalid,
                                   uint64_t docs_valid, uint64_t docs_invalid,
                                   uint64_t text, uint64_t empty) {
  valid_instances_ = valid;
  invalid_instances_ = invalid;
  docs_with_valid_ = docs_valid;
  docs_with_invalid_ = docs_invalid;
  text_instances_ = text;
  empty_instances_ = empty;
}

size_t ElementStats::MemoryFootprint() const {
  size_t bytes = sizeof(ElementStats);
  for (const auto& [label, stats] : labels_) {
    bytes += label.size() + sizeof(LabelStats);
    bytes += stats.valid.count_histogram.size() * sizeof(uint64_t) * 2;
    bytes += stats.invalid.count_histogram.size() * sizeof(uint64_t) * 2;
    if (stats.plus_structure) bytes += stats.plus_structure->MemoryFootprint();
  }
  for (const auto& [labels, count] : sequences_) {
    bytes += sizeof(uint64_t);
    for (const std::string& label : labels) bytes += label.size() + 16;
  }
  for (const auto& [key, count] : groups_) {
    bytes += sizeof(uint64_t) * 2;
    for (const std::string& label : key.labels) bytes += label.size() + 16;
  }
  return bytes;
}

}  // namespace dtdevolve::evolve
