#include "evolve/stats.h"

#include <algorithm>

namespace dtdevolve::evolve {

void OccurrenceStats::RecordInstance(uint32_t count_in_instance) {
  if (count_in_instance == 0) return;
  ++instances;
  if (count_in_instance > 1) ++repeated;
  occurrences += count_in_instance;
  ++count_histogram[count_in_instance];
}

uint32_t OccurrenceStats::UniformCount() const {
  if (count_histogram.size() != 1) return 0;
  return count_histogram.begin()->first;
}

void OccurrenceStats::MergeFrom(const OccurrenceStats& other) {
  instances += other.instances;
  repeated += other.repeated;
  occurrences += other.occurrences;
  for (const auto& [count, n] : other.count_histogram) {
    count_histogram[count] += n;
  }
  position_sum += other.position_sum;
}

namespace {

/// Per-label aggregate of one instance, kept in a reused scratch vector:
/// instances are small (direct children of one element), so a linear
/// probe beats a node-based map and leaves the hot path allocation-free.
struct LabelAgg {
  std::string_view label;
  uint32_t count = 0;
  double position_sum = 0.0;
};

thread_local std::vector<LabelAgg> label_agg_scratch;

}  // namespace

std::set<std::string> ElementStats::RecordInstance(
    const std::vector<std::string>& child_tags, bool locally_valid,
    bool has_text) {
  thread_local std::vector<std::string_view> views;
  views.clear();
  views.reserve(child_tags.size());
  for (const std::string& tag : child_tags) views.emplace_back(tag);
  RecordInstance(views.data(), views.size(), locally_valid, has_text);
  return std::set<std::string>(child_tags.begin(), child_tags.end());
}

void ElementStats::RecordInstance(const std::string_view* child_tags,
                                  size_t tag_count, bool locally_valid,
                                  bool has_text) {
  // Per-label occurrence counts and positions within this instance,
  // aggregated in sorted order so map insertions match the ordered
  // traversal the map-based implementation used.
  std::vector<LabelAgg>& aggs = label_agg_scratch;
  aggs.clear();
  const double denom =
      tag_count > 1 ? static_cast<double>(tag_count - 1) : 1.0;
  for (size_t i = 0; i < tag_count; ++i) {
    const std::string_view tag = child_tags[i];
    const double position = static_cast<double>(i) / denom;
    auto it = std::lower_bound(
        aggs.begin(), aggs.end(), tag,
        [](const LabelAgg& agg, std::string_view t) { return agg.label < t; });
    if (it == aggs.end() || it->label != tag) {
      it = aggs.insert(it, LabelAgg{tag, 0, 0.0});
    }
    ++it->count;
    it->position_sum += position;
  }

  if (has_text) ++text_instances_;
  if (tag_count == 0 && !has_text) ++empty_instances_;

  if (locally_valid) {
    ++valid_instances_;
    for (const LabelAgg& agg : aggs) {
      auto it = labels_.find(agg.label);
      if (it == labels_.end()) {
        it = labels_.emplace(std::string(agg.label), LabelStats()).first;
      }
      OccurrenceStats& occ = it->second.valid;
      occ.RecordInstance(agg.count);
      occ.position_sum += agg.position_sum;
    }
    return;
  }

  ++invalid_instances_;
  // aggs is sorted and unique by label, so it is already the ordered
  // label set; probe without building a key and pay the set
  // materialization only on first sight of a sequence.
  thread_local std::vector<std::string_view> label_views;
  label_views.clear();
  for (const LabelAgg& agg : aggs) label_views.push_back(agg.label);
  auto seq_it = sequences_.find(label_views);
  if (seq_it == sequences_.end()) {
    std::set<std::string> label_set;
    for (const LabelAgg& agg : aggs) label_set.emplace(agg.label);
    seq_it = sequences_.emplace(std::move(label_set), 0).first;
  }
  ++seq_it->second;
  for (const LabelAgg& agg : aggs) {
    auto it = labels_.find(agg.label);
    if (it == labels_.end()) {
      it = labels_.emplace(std::string(agg.label), LabelStats()).first;
    }
    OccurrenceStats& occ = it->second.invalid;
    occ.RecordInstance(agg.count);
    occ.position_sum += agg.position_sum;
  }
  // Groups: for each repetition count m > 1, the set of labels repeated
  // exactly m times in this instance (§3.2).
  std::map<uint32_t, std::set<std::string>> by_count;
  for (const LabelAgg& agg : aggs) {
    if (agg.count > 1) by_count[agg.count].emplace(agg.label);
  }
  for (auto& [count, labels] : by_count) {
    GroupKey key;
    key.labels = std::move(labels);
    key.repeat_count = count;
    ++groups_[key];
  }
}

double ElementStats::InvalidityRatio() const {
  uint64_t n = total_instances();
  if (n == 0) return 0.0;
  return static_cast<double>(invalid_instances_) / static_cast<double>(n);
}

std::vector<std::pair<std::set<std::string>, uint32_t>>
ElementStats::SequenceList() const {
  std::vector<std::pair<std::set<std::string>, uint32_t>> out;
  out.reserve(sequences_.size());
  for (const auto& [labels, count] : sequences_) {
    out.emplace_back(labels, static_cast<uint32_t>(count));
  }
  return out;
}

std::set<std::string> ElementStats::LabelUniverse() const {
  std::set<std::string> out;
  for (const auto& [labels, count] : sequences_) {
    out.insert(labels.begin(), labels.end());
  }
  return out;
}

void ElementStats::RecordAttributes(const std::vector<std::string>& names) {
  for (const std::string& name : names) ++attribute_counts_[name];
}

void ElementStats::RecordAttributes(const std::string_view* names,
                                    size_t count) {
  for (size_t i = 0; i < count; ++i) {
    auto it = attribute_counts_.find(names[i]);
    if (it == attribute_counts_.end()) {
      it = attribute_counts_.emplace(std::string(names[i]), 0).first;
    }
    ++it->second;
  }
}

ElementStats& ElementStats::PlusStructureFor(std::string_view label) {
  auto it = labels_.find(label);
  if (it == labels_.end()) {
    it = labels_.emplace(std::string(label), LabelStats()).first;
  }
  LabelStats& entry = it->second;
  if (!entry.plus_structure) {
    entry.plus_structure = std::make_unique<ElementStats>();
  }
  return *entry.plus_structure;
}

void ElementStats::Clear() { *this = ElementStats(); }

void ElementStats::RestoreCounters(uint64_t valid, uint64_t invalid,
                                   uint64_t docs_valid, uint64_t docs_invalid,
                                   uint64_t text, uint64_t empty) {
  valid_instances_ = valid;
  invalid_instances_ = invalid;
  docs_with_valid_ = docs_valid;
  docs_with_invalid_ = docs_invalid;
  text_instances_ = text;
  empty_instances_ = empty;
}

size_t ElementStats::MemoryFootprint() const {
  size_t bytes = sizeof(ElementStats);
  for (const auto& [label, stats] : labels_) {
    bytes += label.size() + sizeof(LabelStats);
    bytes += stats.valid.count_histogram.size() * sizeof(uint64_t) * 2;
    bytes += stats.invalid.count_histogram.size() * sizeof(uint64_t) * 2;
    if (stats.plus_structure) bytes += stats.plus_structure->MemoryFootprint();
  }
  for (const auto& [labels, count] : sequences_) {
    bytes += sizeof(uint64_t);
    for (const std::string& label : labels) bytes += label.size() + 16;
  }
  for (const auto& [key, count] : groups_) {
    bytes += sizeof(uint64_t) * 2;
    for (const std::string& label : key.labels) bytes += label.size() + 16;
  }
  return bytes;
}

}  // namespace dtdevolve::evolve
