#include "evolve/restriction.h"

namespace dtdevolve::evolve {

namespace {

using Kind = dtd::ContentModel::Kind;
using Ptr = dtd::ContentModel::Ptr;

struct LabelEvidence {
  bool always_present = false;
  bool never_repeated = false;
  bool seen = false;
};

LabelEvidence EvidenceFor(const std::string& label,
                          const ElementStats& stats) {
  LabelEvidence evidence;
  uint64_t valid_total = stats.valid_instances();
  if (valid_total == 0) return evidence;
  auto it = stats.labels().find(label);
  const OccurrenceStats* occ =
      it == stats.labels().end() ? nullptr : &it->second.valid;
  uint64_t present = occ == nullptr ? 0 : occ->instances;
  uint64_t repeated = occ == nullptr ? 0 : occ->repeated;
  evidence.seen = present > 0;
  evidence.always_present = present == valid_total;
  evidence.never_repeated = repeated == 0;
  return evidence;
}

Ptr RestrictRec(Ptr node, const ElementStats& stats, bool& changed) {
  if (node->is_leaf()) return node;

  if (node->is_unary() && node->child().kind() == Kind::kName) {
    const std::string label = node->child().name();
    LabelEvidence evidence = EvidenceFor(label, stats);
    if (!evidence.seen) return node;  // no positive evidence — keep
    Ptr name = dtd::ContentModel::Name(label);
    switch (node->kind()) {
      case Kind::kStar:
        if (evidence.always_present && evidence.never_repeated) {
          changed = true;
          return name;
        }
        if (evidence.always_present) {
          changed = true;
          return dtd::ContentModel::Plus(std::move(name));
        }
        if (evidence.never_repeated) {
          changed = true;
          return dtd::ContentModel::Opt(std::move(name));
        }
        return node;
      case Kind::kPlus:
        if (evidence.never_repeated) {
          changed = true;
          return name;
        }
        return node;
      case Kind::kOptional:
        if (evidence.always_present) {
          changed = true;
          return name;
        }
        return node;
      default:
        return node;
    }
  }

  std::vector<Ptr> children;
  children.reserve(node->children().size());
  bool any_child_changed = false;
  for (Ptr& child : node->children()) {
    bool child_changed = false;
    children.push_back(RestrictRec(std::move(child), stats, child_changed));
    any_child_changed = any_child_changed || child_changed;
  }
  if (!any_child_changed) {
    node->children() = std::move(children);
    return node;
  }
  changed = true;
  switch (node->kind()) {
    case Kind::kAnd:
      return dtd::ContentModel::Seq(std::move(children));
    case Kind::kOr:
      return dtd::ContentModel::Choice(std::move(children));
    case Kind::kOptional:
      return dtd::ContentModel::Opt(std::move(children.front()));
    case Kind::kStar:
      return dtd::ContentModel::Star(std::move(children.front()));
    case Kind::kPlus:
      return dtd::ContentModel::Plus(std::move(children.front()));
    default:
      return node;
  }
}

}  // namespace

RestrictionResult RestrictOperators(dtd::ContentModel::Ptr model,
                                    const ElementStats& stats) {
  RestrictionResult result;
  bool changed = false;
  result.model = RestrictRec(std::move(model), stats, changed);
  result.changed = changed;
  return result;
}

}  // namespace dtdevolve::evolve
