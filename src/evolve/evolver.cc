#include "evolve/evolver.h"

#include <set>
#include <utility>

#include "dtd/glushkov.h"
#include "dtd/rewrite.h"
#include "evolve/restriction.h"

namespace dtdevolve::evolve {

namespace {

using Ptr = dtd::ContentModel::Ptr;

BuildOptions MakeBuildOptions(const EvolutionOptions& options) {
  BuildOptions build;
  build.min_support = options.min_support;
  build.enable_or = options.enable_or_policies;
  build.contiguity_guard = options.contiguity_guard;
  return build;
}

/// Adds declarations for every name referenced by `model` that the DTD
/// does not declare yet, extracting each from the recorded plus structure
/// under `parent_stats` (a missing structure falls back to #PCDATA).
/// Names detected as renames reuse the renamed-from declaration's content
/// instead. Recurses into the structures of the added declarations.
void AddPlusDeclarations(dtd::Dtd& dtd, const ElementStats& parent_stats,
                         const dtd::ContentModel& model,
                         const EvolutionOptions& options,
                         const std::vector<RenameCandidate>& renames,
                         std::vector<std::string>& added) {
  for (const std::string& name : model.SymbolSet()) {
    if (dtd.HasElement(name)) continue;
    // A renamed element inherits the declaration of its old name.
    const RenameCandidate* rename = nullptr;
    for (const RenameCandidate& candidate : renames) {
      if (candidate.to == name) {
        rename = &candidate;
        break;
      }
    }
    if (rename != nullptr && dtd.HasElement(rename->from)) {
      const dtd::ElementDecl* from = dtd.FindElement(rename->from);
      dtd.DeclareElement(name, from->content ? from->content->Clone()
                                             : dtd::ContentModel::Pcdata());
      added.push_back(name);
      continue;
    }
    auto it = parent_stats.labels().find(name);
    const ElementStats* plus_stats =
        (it != parent_stats.labels().end() && it->second.plus_structure)
            ? it->second.plus_structure.get()
            : nullptr;
    Ptr content;
    if (plus_stats != nullptr) {
      BuildOutcome outcome =
          BuildElementStructure(*plus_stats, MakeBuildOptions(options));
      content = std::move(outcome.model);
    }
    if (content == nullptr) content = dtd::ContentModel::Pcdata();
    if (options.simplify) content = dtd::Simplify(std::move(content));
    dtd::ElementDecl& new_decl =
        dtd.DeclareElement(name, std::move(content));
    added.push_back(name);
    if (plus_stats != nullptr) {
      if (options.evolve_attributes) {
        for (const auto& [attr_name, count] :
             plus_stats->attribute_counts()) {
          dtd::AttributeDecl attribute;
          attribute.name = attr_name;
          attribute.type = "CDATA";
          attribute.default_kind =
              count == plus_stats->total_instances()
                  ? dtd::AttributeDecl::DefaultKind::kRequired
                  : dtd::AttributeDecl::DefaultKind::kImplied;
          new_decl.attributes.push_back(std::move(attribute));
        }
      }
      AddPlusDeclarations(dtd, *plus_stats, *new_decl.content, options,
                          renames, added);
    }
  }
}

}  // namespace

EvolutionResult EvolveDtd(ExtendedDtd& ext, const EvolutionOptions& options) {
  EvolutionResult result;
  dtd::Dtd& dtd = ext.mutable_dtd();

  // Snapshot: evolution only touches declarations that recorded instances.
  std::vector<std::string> names = dtd.ElementNames();
  for (const std::string& name : names) {
    const ElementStats* stats = ext.FindStats(name);
    if (stats == nullptr || stats->total_instances() == 0) continue;
    dtd::ElementDecl* decl = dtd.FindElement(name);
    if (decl == nullptr || decl->content == nullptr) continue;

    ElementEvolution record;
    record.name = name;
    record.instances = stats->total_instances();
    record.invalidity = stats->InvalidityRatio();
    record.window = ClassifyWindow(record.invalidity, options.psi);
    record.old_model = decl->content->ToString();

    if (options.thesaurus != nullptr && record.window != Window::kOld) {
      record.renames =
          DetectRenames(*stats, decl->content->SymbolSet(),
                        *options.thesaurus, options.rename_min_score);
    }

    switch (record.window) {
      case Window::kOld: {
        if (options.restrict_operators && stats->valid_instances() > 0) {
          RestrictionResult restricted =
              RestrictOperators(std::move(decl->content), *stats);
          decl->content = std::move(restricted.model);
          record.changed = restricted.changed;
        }
        break;
      }
      case Window::kNew: {
        BuildOutcome outcome =
            BuildElementStructure(*stats, MakeBuildOptions(options));
        record.trace = std::move(outcome.trace);
        if (outcome.model != nullptr) {
          decl->content = options.simplify
                              ? dtd::Simplify(std::move(outcome.model))
                              : std::move(outcome.model);
          record.changed = true;
          AddPlusDeclarations(dtd, *stats, *decl->content, options,
                              record.renames, result.added_declarations);
        }
        break;
      }
      case Window::kMisc: {
        BuildOutcome outcome =
            BuildElementStructure(*stats, MakeBuildOptions(options));
        record.trace = std::move(outcome.trace);
        if (outcome.model != nullptr &&
            !outcome.model->Equals(*decl->content)) {
          std::vector<Ptr> alternatives;
          alternatives.push_back(std::move(decl->content));
          alternatives.push_back(std::move(outcome.model));
          Ptr combined = dtd::ContentModel::Choice(std::move(alternatives));
          decl->content = options.simplify ? dtd::Simplify(std::move(combined))
                                           : std::move(combined);
          record.changed = true;
          AddPlusDeclarations(dtd, *stats, *decl->content, options,
                              record.renames, result.added_declarations);
        }
        break;
      }
    }

    if (options.evolve_attributes) {
      for (const auto& [attr_name, count] : stats->attribute_counts()) {
        bool declared = false;
        for (const dtd::AttributeDecl& existing : decl->attributes) {
          if (existing.name == attr_name) {
            declared = true;
            break;
          }
        }
        if (declared) continue;
        dtd::AttributeDecl attribute;
        attribute.name = attr_name;
        attribute.type = "CDATA";
        attribute.default_kind =
            count == stats->total_instances()
                ? dtd::AttributeDecl::DefaultKind::kRequired
                : dtd::AttributeDecl::DefaultKind::kImplied;
        decl->attributes.push_back(std::move(attribute));
        record.added_attributes.push_back(attr_name);
        record.changed = true;
      }
    }

    record.new_model = decl->content->ToString();
    record.deterministic =
        dtd::Automaton::Build(*decl->content).IsDeterministic();
    result.any_change = result.any_change || record.changed;
    result.elements.push_back(std::move(record));
  }

  if (options.drop_orphan_declarations) {
    for (const std::string& orphan : dtd.UnreachableFromRoot()) {
      dtd.RemoveElement(orphan);
      result.removed_declarations.push_back(orphan);
    }
  }

  result.any_change = result.any_change ||
                      !result.added_declarations.empty() ||
                      !result.removed_declarations.empty();
  ext.ResetStats();
  return result;
}

}  // namespace dtdevolve::evolve
