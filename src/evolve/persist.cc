#include "evolve/persist.h"

#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "io/file.h"

namespace dtdevolve::evolve {

namespace {

constexpr char kHeader[] = "dtdevolve-stats 1";

/// Nesting bound for `plus` structures. Legitimate snapshots are bounded
/// by the XML parser's element-depth limit (a plus structure is recorded
/// per document level), so anything deeper is a corrupted or hostile
/// snapshot — rejected instead of recursing off the stack.
constexpr int kMaxPlusDepth = 512;

void AppendOccurrence(const OccurrenceStats& occ, std::string& out) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "occ %" PRIu64 " %" PRIu64 " %" PRIu64 " %.17g %zu",
                occ.instances, occ.repeated, occ.occurrences,
                occ.position_sum, occ.count_histogram.size());
  out += buffer;
  for (const auto& [count, n] : occ.count_histogram) {
    std::snprintf(buffer, sizeof(buffer), " %u %" PRIu64, count, n);
    out += buffer;
  }
  out += '\n';
}

void AppendElementStats(const ElementStats& stats, std::string& out) {
  char buffer[192];
  std::snprintf(buffer, sizeof(buffer),
                "counters %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
                " %" PRIu64 " %" PRIu64 "\n",
                stats.valid_instances(), stats.invalid_instances(),
                stats.docs_with_valid(), stats.docs_with_invalid(),
                stats.text_instances(), stats.empty_instances());
  out += buffer;

  std::snprintf(buffer, sizeof(buffer), "labels %zu\n",
                stats.labels().size());
  out += buffer;
  for (const auto& [label, label_stats] : stats.labels()) {
    out += "label " + label + "\n";
    AppendOccurrence(label_stats.valid, out);
    AppendOccurrence(label_stats.invalid, out);
    if (label_stats.plus_structure != nullptr) {
      out += "plus 1\n";
      AppendElementStats(*label_stats.plus_structure, out);
    } else {
      out += "plus 0\n";
    }
  }

  std::snprintf(buffer, sizeof(buffer), "sequences %zu\n",
                stats.sequences().size());
  out += buffer;
  for (const auto& [labels, count] : stats.sequences()) {
    std::snprintf(buffer, sizeof(buffer), "seq %" PRIu64 " %zu", count,
                  labels.size());
    out += buffer;
    for (const std::string& label : labels) {
      out += ' ';
      out += label;
    }
    out += '\n';
  }

  std::snprintf(buffer, sizeof(buffer), "groups %zu\n",
                stats.groups().size());
  out += buffer;
  for (const auto& [key, count] : stats.groups()) {
    std::snprintf(buffer, sizeof(buffer), "group %" PRIu64 " %u %zu", count,
                  key.repeat_count, key.labels.size());
    out += buffer;
    for (const std::string& label : key.labels) {
      out += ' ';
      out += label;
    }
    out += '\n';
  }

  std::snprintf(buffer, sizeof(buffer), "attrs %zu\n",
                stats.attribute_counts().size());
  out += buffer;
  // Attribute names are unbounded — concatenate instead of routing them
  // through the fixed-size buffer, which would silently truncate.
  for (const auto& [name, count] : stats.attribute_counts()) {
    out += "attr ";
    out += name;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
}

/// Token reader over the serialized form.
class Reader {
 public:
  explicit Reader(std::string_view data) : stream_(std::string(data)) {}

  Status ExpectWord(std::string_view word) {
    std::string token;
    if (!(stream_ >> token) || token != word) {
      return Status::ParseError("expected '" + std::string(word) +
                                "', got '" + token + "'");
    }
    return Status::Ok();
  }

  StatusOr<std::string> Word() {
    std::string token;
    if (!(stream_ >> token)) {
      return Status::ParseError("unexpected end of stats data");
    }
    return token;
  }

  StatusOr<uint64_t> U64() {
    uint64_t value = 0;
    if (!(stream_ >> value)) {
      return Status::ParseError("expected an integer");
    }
    return value;
  }

  StatusOr<double> Double() {
    double value = 0;
    if (!(stream_ >> value)) {
      return Status::ParseError("expected a number");
    }
    return value;
  }

  /// Reads the remainder of the current line plus `lines` further lines.
  StatusOr<std::string> RawLines(uint64_t lines) {
    std::string out;
    std::string line;
    std::getline(stream_, line);  // rest of current line
    for (uint64_t i = 0; i < lines; ++i) {
      if (!std::getline(stream_, line)) {
        return Status::ParseError("truncated raw block");
      }
      out += line;
      out += '\n';
    }
    return out;
  }

 private:
  std::istringstream stream_;
};

Status ParseOccurrence(Reader& reader, OccurrenceStats& occ) {
  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("occ"));
  StatusOr<uint64_t> instances = reader.U64();
  if (!instances.ok()) return instances.status();
  StatusOr<uint64_t> repeated = reader.U64();
  if (!repeated.ok()) return repeated.status();
  StatusOr<uint64_t> occurrences = reader.U64();
  if (!occurrences.ok()) return occurrences.status();
  StatusOr<double> position_sum = reader.Double();
  if (!position_sum.ok()) return position_sum.status();
  StatusOr<uint64_t> hist_size = reader.U64();
  if (!hist_size.ok()) return hist_size.status();
  occ.instances = *instances;
  occ.repeated = *repeated;
  occ.occurrences = *occurrences;
  occ.position_sum = *position_sum;
  for (uint64_t i = 0; i < *hist_size; ++i) {
    StatusOr<uint64_t> key = reader.U64();
    if (!key.ok()) return key.status();
    StatusOr<uint64_t> value = reader.U64();
    if (!value.ok()) return value.status();
    occ.count_histogram[static_cast<uint32_t>(*key)] = *value;
  }
  return Status::Ok();
}

Status ParseElementStats(Reader& reader, ElementStats& stats, int depth) {
  if (depth > kMaxPlusDepth) {
    return Status::ParseError("plus structures nested deeper than " +
                              std::to_string(kMaxPlusDepth));
  }
  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("counters"));
  uint64_t counters[6];
  for (uint64_t& counter : counters) {
    StatusOr<uint64_t> value = reader.U64();
    if (!value.ok()) return value.status();
    counter = *value;
  }
  stats.RestoreCounters(counters[0], counters[1], counters[2], counters[3],
                        counters[4], counters[5]);

  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("labels"));
  StatusOr<uint64_t> num_labels = reader.U64();
  if (!num_labels.ok()) return num_labels.status();
  for (uint64_t i = 0; i < *num_labels; ++i) {
    DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("label"));
    StatusOr<std::string> name = reader.Word();
    if (!name.ok()) return name.status();
    LabelStats& label_stats = stats.labels()[*name];
    DTDEVOLVE_RETURN_IF_ERROR(ParseOccurrence(reader, label_stats.valid));
    DTDEVOLVE_RETURN_IF_ERROR(ParseOccurrence(reader, label_stats.invalid));
    DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("plus"));
    StatusOr<uint64_t> has_plus = reader.U64();
    if (!has_plus.ok()) return has_plus.status();
    if (*has_plus != 0) {
      label_stats.plus_structure = std::make_unique<ElementStats>();
      DTDEVOLVE_RETURN_IF_ERROR(
          ParseElementStats(reader, *label_stats.plus_structure, depth + 1));
    }
  }

  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("sequences"));
  StatusOr<uint64_t> num_sequences = reader.U64();
  if (!num_sequences.ok()) return num_sequences.status();
  for (uint64_t i = 0; i < *num_sequences; ++i) {
    DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("seq"));
    StatusOr<uint64_t> count = reader.U64();
    if (!count.ok()) return count.status();
    StatusOr<uint64_t> size = reader.U64();
    if (!size.ok()) return size.status();
    std::set<std::string> labels;
    for (uint64_t l = 0; l < *size; ++l) {
      StatusOr<std::string> label = reader.Word();
      if (!label.ok()) return label.status();
      labels.insert(std::move(*label));
    }
    stats.RestoreSequence(std::move(labels), *count);
  }

  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("groups"));
  StatusOr<uint64_t> num_groups = reader.U64();
  if (!num_groups.ok()) return num_groups.status();
  for (uint64_t i = 0; i < *num_groups; ++i) {
    DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("group"));
    StatusOr<uint64_t> count = reader.U64();
    if (!count.ok()) return count.status();
    StatusOr<uint64_t> repeat = reader.U64();
    if (!repeat.ok()) return repeat.status();
    StatusOr<uint64_t> size = reader.U64();
    if (!size.ok()) return size.status();
    GroupKey key;
    key.repeat_count = static_cast<uint32_t>(*repeat);
    for (uint64_t l = 0; l < *size; ++l) {
      StatusOr<std::string> label = reader.Word();
      if (!label.ok()) return label.status();
      key.labels.insert(std::move(*label));
    }
    stats.RestoreGroup(std::move(key), *count);
  }

  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("attrs"));
  StatusOr<uint64_t> num_attrs = reader.U64();
  if (!num_attrs.ok()) return num_attrs.status();
  for (uint64_t i = 0; i < *num_attrs; ++i) {
    DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("attr"));
    StatusOr<std::string> name = reader.Word();
    if (!name.ok()) return name.status();
    StatusOr<uint64_t> count = reader.U64();
    if (!count.ok()) return count.status();
    stats.RestoreAttributeCount(*name, *count);
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeExtendedDtd(const ExtendedDtd& ext) {
  std::string out = kHeader;
  out += '\n';

  std::string dtd_text = dtd::WriteDtd(ext.dtd());
  size_t dtd_lines = 0;
  for (char c : dtd_text) {
    if (c == '\n') ++dtd_lines;
  }
  // The root name is caller-controlled and unbounded — never route it
  // through a fixed-size buffer, or long names truncate and the
  // serialization stops being a deserialization fixed point.
  out += "dtd ";
  out += ext.dtd().root_name();
  out += ' ';
  out += std::to_string(dtd_lines);
  out += '\n';
  out += dtd_text;
  char buffer[160];

  std::snprintf(buffer, sizeof(buffer),
                "aggregates %" PRIu64 " %" PRIu64 " %" PRIu64 " %.17g\n",
                ext.documents_recorded(), ext.total_elements_recorded(),
                ext.invalid_elements_recorded(), ext.divergence_sum());
  out += buffer;

  std::snprintf(buffer, sizeof(buffer), "stats %zu\n",
                ext.all_stats().size());
  out += buffer;
  for (const auto& [name, stats] : ext.all_stats()) {
    out += "element " + name + "\n";
    AppendElementStats(stats, out);
  }
  return out;
}

StatusOr<ExtendedDtd> DeserializeExtendedDtd(std::string_view data) {
  Reader reader(data);
  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("dtdevolve-stats"));
  StatusOr<uint64_t> version = reader.U64();
  if (!version.ok()) return version.status();
  if (*version != 1) {
    return Status::InvalidArgument("unsupported stats version " +
                                   std::to_string(*version));
  }

  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("dtd"));
  StatusOr<std::string> root = reader.Word();
  if (!root.ok()) return root.status();
  StatusOr<uint64_t> dtd_lines = reader.U64();
  if (!dtd_lines.ok()) return dtd_lines.status();
  StatusOr<std::string> dtd_text = reader.RawLines(*dtd_lines);
  if (!dtd_text.ok()) return dtd_text.status();
  StatusOr<dtd::Dtd> parsed = dtd::ParseDtd(*dtd_text, std::move(*root));
  if (!parsed.ok()) return parsed.status();
  ExtendedDtd ext(std::move(*parsed));

  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("aggregates"));
  StatusOr<uint64_t> documents = reader.U64();
  if (!documents.ok()) return documents.status();
  StatusOr<uint64_t> total = reader.U64();
  if (!total.ok()) return total.status();
  StatusOr<uint64_t> invalid = reader.U64();
  if (!invalid.ok()) return invalid.status();
  StatusOr<double> divergence_sum = reader.Double();
  if (!divergence_sum.ok()) return divergence_sum.status();
  ext.RestoreAggregates(*documents, *total, *invalid, *divergence_sum);

  DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("stats"));
  StatusOr<uint64_t> num_elements = reader.U64();
  if (!num_elements.ok()) return num_elements.status();
  for (uint64_t i = 0; i < *num_elements; ++i) {
    DTDEVOLVE_RETURN_IF_ERROR(reader.ExpectWord("element"));
    StatusOr<std::string> name = reader.Word();
    if (!name.ok()) return name.status();
    DTDEVOLVE_RETURN_IF_ERROR(
        ParseElementStats(reader, ext.StatsFor(*name), /*depth=*/0));
  }
  return ext;
}

Status SaveExtendedDtdFile(const ExtendedDtd& ext, const std::string& path) {
  return io::WriteFileAtomic(path, SerializeExtendedDtd(ext));
}

StatusOr<ExtendedDtd> LoadExtendedDtdFile(const std::string& path) {
  StatusOr<std::string> data = io::ReadFile(path);
  if (!data.ok()) return data.status();
  return DeserializeExtendedDtd(*data);
}

}  // namespace dtdevolve::evolve
