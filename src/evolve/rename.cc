#include "evolve/rename.h"

#include <algorithm>

namespace dtdevolve::evolve {

std::vector<RenameCandidate> DetectRenames(
    const ElementStats& stats, const std::set<std::string>& declared_symbols,
    const similarity::Thesaurus& thesaurus, double min_score) {
  // Candidate observed tags: recorded labels not in the declaration.
  std::vector<RenameCandidate> candidates;
  for (const auto& [label, label_stats] : stats.labels()) {
    if (declared_symbols.count(label) > 0) continue;
    if (label_stats.invalid.instances == 0) continue;
    for (const std::string& declared : declared_symbols) {
      double score = thesaurus.Score(label, declared);
      if (score < min_score) continue;
      // Complementarity over the recorded sequences.
      uint64_t with_to = 0;
      bool co_occur = false;
      for (const auto& [sequence, count] : stats.sequences()) {
        bool has_to = sequence.count(label) > 0;
        bool has_from = sequence.count(declared) > 0;
        if (has_to) with_to += count;
        if (has_to && has_from) {
          co_occur = true;
          break;
        }
      }
      if (co_occur || with_to == 0) continue;
      RenameCandidate candidate;
      candidate.from = declared;
      candidate.to = label;
      candidate.score = score;
      candidate.evidence = with_to;
      candidates.push_back(std::move(candidate));
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const RenameCandidate& a, const RenameCandidate& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.evidence > b.evidence;
                   });
  // Enforce a 1:1 mapping, best first.
  std::set<std::string> used_from, used_to;
  std::vector<RenameCandidate> unique;
  for (RenameCandidate& candidate : candidates) {
    if (used_from.count(candidate.from) || used_to.count(candidate.to)) {
      continue;
    }
    used_from.insert(candidate.from);
    used_to.insert(candidate.to);
    unique.push_back(std::move(candidate));
  }
  return unique;
}

}  // namespace dtdevolve::evolve
