#include "evolve/recorder.h"

#include <algorithm>

#include "util/string_util.h"

namespace dtdevolve::evolve {

Recorder::Recorder(ExtendedDtd& target)
    : target_(&target),
      validator_(std::make_unique<validate::Validator>(target.dtd())) {}

const std::vector<std::string>& Recorder::DeclaredSymbolsOf(
    const dtd::ElementDecl& decl) {
  auto it = declared_symbols_.find(&decl);
  if (it == declared_symbols_.end()) {
    std::set<std::string> symbols = decl.content->SymbolSet();
    it = declared_symbols_
             .emplace(&decl,
                      std::vector<std::string>(symbols.begin(), symbols.end()))
             .first;
  }
  return it->second;
}

namespace {

/// Shape of one element instance — child-element tags in order plus
/// whether any non-blank text is present — gathered in a single pass
/// over the children (the DOM used to rescan once per signal) into a
/// reused scratch vector. The views point into the document being
/// recorded and are consumed before any recursion reuses the scratch.
thread_local std::vector<std::string_view> shape_scratch;
thread_local std::vector<std::string_view> attr_scratch;

bool FillShape(const xml::Element& element,
               std::vector<std::string_view>& tags) {
  bool has_text = false;
  for (const auto& child : element.children()) {
    if (child->is_element()) {
      tags.emplace_back(child->AsElement().tag());
    } else if (!has_text &&
               !IsBlank(static_cast<const xml::Text&>(*child).value())) {
      has_text = true;
    }
  }
  return has_text;
}

bool FillShape(const xml::ArenaElement& element,
               std::vector<std::string_view>& tags) {
  for (const xml::ArenaElement& child : element.child_elements()) {
    tags.emplace_back(child.tag);
  }
  // Known at parse time: the streaming pass sets the flag as it flushes
  // non-blank text runs.
  return element.has_text;
}

std::string_view TagOf(const xml::Element& element) { return element.tag(); }

std::string_view TagOf(const xml::ArenaElement& element) {
  return element.tag;
}

int32_t TagIdOf(const xml::Element& element) { return element.tag_id(); }

int32_t TagIdOf(const xml::ArenaElement& element) { return element.tag_id; }

void FillAttributeNames(const xml::Element& element,
                        std::vector<std::string_view>& names) {
  for (const xml::Attribute& attribute : element.attributes()) {
    names.emplace_back(attribute.name);
  }
}

void FillAttributeNames(const xml::ArenaElement& element,
                        std::vector<std::string_view>& names) {
  for (const xml::ArenaAttribute& attribute : element.attributes()) {
    names.emplace_back(attribute.name);
  }
}

/// Records one instance into `stats` via the scratch buffers; safe to
/// call at any recursion depth because the buffers are consumed before
/// the caller recurses.
template <typename ElementT>
bool RecordInstanceOf(const ElementT& element, ElementStats& stats,
                      bool locally_valid) {
  shape_scratch.clear();
  const bool has_text = FillShape(element, shape_scratch);
  stats.RecordInstance(shape_scratch.data(), shape_scratch.size(),
                       locally_valid, has_text);
  attr_scratch.clear();
  FillAttributeNames(element, attr_scratch);
  stats.RecordAttributes(attr_scratch.data(), attr_scratch.size());
  return has_text;
}

}  // namespace

template <typename ElementT>
void Recorder::RecordPlusInstance(ElementStats& stats,
                                  const ElementT& element) {
  RecordInstanceOf(element, stats, /*locally_valid=*/false);
  for (const auto& child : element.child_elements()) {
    RecordPlusInstance(stats.PlusStructureFor(TagOf(child)), child);
  }
}

Recorder::TagLookup Recorder::ResolveTag(std::string_view tag) {
  TagLookup lookup;
  lookup.resolved = true;
  lookup.decl = target_->dtd().FindElement(tag);
  if (lookup.decl != nullptr && lookup.decl->content != nullptr) {
    lookup.automaton = validator_->AutomatonFor(tag);
    lookup.stats = &target_->StatsFor(tag);
  }
  return lookup;
}

template <typename ElementT>
void Recorder::Walk(const ElementT& element,
                    std::set<std::string_view>& doc_valid,
                    std::set<std::string_view>& doc_invalid, uint64_t& total,
                    uint64_t& invalid) {
  ++total;
  const std::string_view tag = TagOf(element);
  TagLookup lookup;
  const int32_t tag_id = TagIdOf(element);
  if (tag_id >= 0 && static_cast<size_t>(tag_id) < kMaxDenseTagIds) {
    if (static_cast<size_t>(tag_id) >= tag_lookup_.size()) {
      tag_lookup_.resize(tag_id + 1);
    }
    TagLookup& cached = tag_lookup_[tag_id];
    if (!cached.resolved) cached = ResolveTag(tag);
    lookup = cached;
  } else {
    lookup = ResolveTag(tag);
  }
  const dtd::ElementDecl* decl = lookup.decl;
  if (decl != nullptr && decl->content != nullptr) {
    bool valid = lookup.automaton != nullptr &&
                 validator_->ElementLocallyValid(element, *lookup.automaton);
    ElementStats& stats = *lookup.stats;
    RecordInstanceOf(element, stats, valid);
    if (valid) {
      doc_valid.insert(tag);
    } else {
      doc_invalid.insert(tag);
      ++invalid;
      // Record the structure of plus labels (present in the instance,
      // absent from the declaration) for later extraction.
      const std::vector<std::string>& declared = DeclaredSymbolsOf(*decl);
      for (const auto& child : element.child_elements()) {
        const std::string_view child_tag = TagOf(child);
        if (!std::binary_search(declared.begin(), declared.end(), child_tag,
                                [](const auto& a, const auto& b) {
                                  return std::string_view(a) <
                                         std::string_view(b);
                                })) {
          RecordPlusInstance(stats.PlusStructureFor(child_tag), child);
        }
      }
    }
  } else {
    // Element with no declaration at all: non-valid by definition. Its
    // structure is captured as a plus element under its parent.
    ++invalid;
  }
  for (const auto& child : element.child_elements()) {
    Walk(child, doc_valid, doc_invalid, total, invalid);
  }
}

template <typename ElementT>
void Recorder::RecordTreeImpl(const ElementT& root) {
  std::set<std::string_view> doc_valid;
  std::set<std::string_view> doc_invalid;
  uint64_t total = 0;
  uint64_t invalid = 0;
  Walk(root, doc_valid, doc_invalid, total, invalid);
  for (const std::string_view tag : doc_valid) {
    target_->StatsFor(tag).BumpDocsWithValid();
  }
  for (const std::string_view tag : doc_invalid) {
    target_->StatsFor(tag).BumpDocsWithInvalid();
  }
}

void Recorder::RecordTree(const xml::Element& root) { RecordTreeImpl(root); }

void Recorder::RecordTree(const xml::ArenaElement& root) {
  RecordTreeImpl(root);
}

template <typename ElementT>
double Recorder::RecordRootImpl(const ElementT& root) {
  std::set<std::string_view> doc_valid;
  std::set<std::string_view> doc_invalid;
  uint64_t total = 0;
  uint64_t invalid = 0;
  Walk(root, doc_valid, doc_invalid, total, invalid);
  for (const std::string_view tag : doc_valid) {
    target_->StatsFor(tag).BumpDocsWithValid();
  }
  for (const std::string_view tag : doc_invalid) {
    target_->StatsFor(tag).BumpDocsWithInvalid();
  }
  target_->RecordDocumentDivergence(total, invalid);
  if (documents_recorded_metric_ != nullptr) {
    documents_recorded_metric_->Increment();
  }
  if (elements_recorded_metric_ != nullptr && total > 0) {
    elements_recorded_metric_->Increment(total);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(invalid) / static_cast<double>(total);
}

double Recorder::RecordDocument(const xml::Document& doc) {
  if (!doc.has_root()) return 0.0;
  return RecordRootImpl(doc.root());
}

double Recorder::RecordDocument(const xml::ArenaDocument& doc) {
  if (!doc.has_root()) return 0.0;
  return RecordRootImpl(doc.root());
}

}  // namespace dtdevolve::evolve
