#include "evolve/recorder.h"

namespace dtdevolve::evolve {

Recorder::Recorder(ExtendedDtd& target)
    : target_(&target),
      validator_(std::make_unique<validate::Validator>(target.dtd())) {}

namespace {

std::vector<std::string> AttributeNames(const xml::Element& element) {
  std::vector<std::string> names;
  names.reserve(element.attributes().size());
  for (const xml::Attribute& attribute : element.attributes()) {
    names.push_back(attribute.name);
  }
  return names;
}

}  // namespace

void Recorder::RecordPlusInstance(ElementStats& stats,
                                  const xml::Element& element) {
  stats.RecordInstance(element.ChildTagSequence(), /*locally_valid=*/false,
                       element.HasTextContent());
  stats.RecordAttributes(AttributeNames(element));
  for (const xml::Element* child : element.ChildElements()) {
    RecordPlusInstance(stats.PlusStructureFor(child->tag()), *child);
  }
}

void Recorder::Walk(const xml::Element& element,
                    std::set<std::string>& doc_valid,
                    std::set<std::string>& doc_invalid, uint64_t& total,
                    uint64_t& invalid) {
  ++total;
  const dtd::ElementDecl* decl = target_->dtd().FindElement(element.tag());
  if (decl != nullptr && decl->content != nullptr) {
    bool valid = validator_->ElementLocallyValid(element);
    ElementStats& stats = target_->StatsFor(element.tag());
    stats.RecordInstance(element.ChildTagSequence(), valid,
                         element.HasTextContent());
    stats.RecordAttributes(AttributeNames(element));
    if (valid) {
      doc_valid.insert(element.tag());
    } else {
      doc_invalid.insert(element.tag());
      ++invalid;
      // Record the structure of plus labels (present in the instance,
      // absent from the declaration) for later extraction.
      std::set<std::string> declared = decl->content->SymbolSet();
      for (const xml::Element* child : element.ChildElements()) {
        if (declared.count(child->tag()) == 0) {
          RecordPlusInstance(stats.PlusStructureFor(child->tag()), *child);
        }
      }
    }
  } else {
    // Element with no declaration at all: non-valid by definition. Its
    // structure is captured as a plus element under its parent.
    ++invalid;
  }
  for (const xml::Element* child : element.ChildElements()) {
    Walk(*child, doc_valid, doc_invalid, total, invalid);
  }
}

void Recorder::RecordTree(const xml::Element& root) {
  std::set<std::string> doc_valid;
  std::set<std::string> doc_invalid;
  uint64_t total = 0;
  uint64_t invalid = 0;
  Walk(root, doc_valid, doc_invalid, total, invalid);
  for (const std::string& tag : doc_valid) {
    target_->StatsFor(tag).BumpDocsWithValid();
  }
  for (const std::string& tag : doc_invalid) {
    target_->StatsFor(tag).BumpDocsWithInvalid();
  }
}

double Recorder::RecordDocument(const xml::Document& doc) {
  if (!doc.has_root()) return 0.0;
  std::set<std::string> doc_valid;
  std::set<std::string> doc_invalid;
  uint64_t total = 0;
  uint64_t invalid = 0;
  Walk(doc.root(), doc_valid, doc_invalid, total, invalid);
  for (const std::string& tag : doc_valid) {
    target_->StatsFor(tag).BumpDocsWithValid();
  }
  for (const std::string& tag : doc_invalid) {
    target_->StatsFor(tag).BumpDocsWithInvalid();
  }
  target_->RecordDocumentDivergence(total, invalid);
  if (documents_recorded_metric_ != nullptr) {
    documents_recorded_metric_->Increment();
  }
  if (elements_recorded_metric_ != nullptr && total > 0) {
    elements_recorded_metric_->Increment(total);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(invalid) / static_cast<double>(total);
}

}  // namespace dtdevolve::evolve
