#ifndef DTDEVOLVE_EVOLVE_EVOLVER_H_
#define DTDEVOLVE_EVOLVE_EVOLVER_H_

#include <string>
#include <vector>

#include "evolve/extended_dtd.h"
#include "evolve/rename.h"
#include "evolve/structure_builder.h"
#include "evolve/windows.h"
#include "similarity/thesaurus.h"

namespace dtdevolve::evolve {

/// Knobs of the evolution phase.
struct EvolutionOptions {
  /// Window threshold ψ ∈ [0, 0.5] (§4.1).
  double psi = 0.1;
  /// Minimum sequence support µ for the mining step (§4.2).
  double min_support = 0.1;
  /// Apply old-window operator restriction.
  bool restrict_operators = true;
  /// Allow OR-producing policies (ablation of §5's comparison).
  bool enable_or_policies = true;
  /// Keep the AND-contiguity guard (ablation of a DESIGN.md refinement).
  bool contiguity_guard = true;
  /// Simplify evolved declarations with the re-writing rules.
  bool simplify = true;
  /// Optional thesaurus enabling tag-rename detection (§6 extension);
  /// null disables it.
  const similarity::Thesaurus* thesaurus = nullptr;
  /// Minimum thesaurus score for a rename candidate.
  double rename_min_score = 0.5;
  /// Remove declarations that become unreachable from the root after
  /// evolution (e.g. the old name of a renamed element).
  bool drop_orphan_declarations = false;
  /// Add ATTLIST entries for observed undeclared attributes (the paper
  /// leaves attributes out of scope; an engineering extension). An
  /// attribute present on every recorded instance becomes #REQUIRED,
  /// otherwise #IMPLIED; the type is CDATA.
  bool evolve_attributes = true;
};

/// What happened to one element declaration.
struct ElementEvolution {
  std::string name;
  Window window = Window::kOld;
  double invalidity = 0.0;
  uint64_t instances = 0;
  std::string old_model;
  std::string new_model;
  bool changed = false;
  /// Whether the (possibly new) declaration is deterministic
  /// (1-unambiguous), as strict XML validity requires. The misc window's
  /// OR of old and new declarations is a common source of
  /// nondeterminism — reported so applications can decide.
  bool deterministic = true;
  std::vector<PolicyTrace> trace;
  /// Tag renames detected for this element's subelements (§6 extension).
  std::vector<RenameCandidate> renames;
  /// Attribute names newly declared on this element.
  std::vector<std::string> added_attributes;
};

/// Outcome of one evolution round over a DTD.
struct EvolutionResult {
  std::vector<ElementEvolution> elements;
  /// Declarations newly added for plus elements, in insertion order.
  std::vector<std::string> added_declarations;
  /// Declarations removed by the orphan cleanup.
  std::vector<std::string> removed_declarations;
  bool any_change = false;
};

/// The evolution phase (§4): walks every declared element that recorded
/// instances, classifies it into a window by its invalidity ratio, and
///  * old  — keeps the declaration (optionally restricting operators to
///           the valid instances);
///  * new  — replaces the declaration with the structure built from the
///           recorded sequences by mining + policies;
///  * misc — ORs the built structure with the old declaration and
///           simplifies, giving old and new documents equal relevance.
/// Declarations are then added for every *plus* element referenced by an
/// evolved declaration, extracted recursively from the recorded plus
/// structures ("considering as DTD an empty DTD"). Finally the recorded
/// statistics are reset — the evolved DTD starts a fresh DOC_cur.
EvolutionResult EvolveDtd(ExtendedDtd& ext,
                          const EvolutionOptions& options = {});

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_EVOLVER_H_
