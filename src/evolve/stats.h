#ifndef DTDEVOLVE_EVOLVE_STATS_H_
#define DTDEVOLVE_EVOLVE_STATS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dtdevolve::evolve {

/// Occurrence statistics of one child label across the recorded instances
/// of a DTD element.
struct OccurrenceStats {
  /// Instances whose content contained the label at least once.
  uint64_t instances = 0;
  /// Instances where the label occurred more than once (the paper's
  /// "number of non valid instances ... in which l is repeated").
  uint64_t repeated = 0;
  /// Total occurrences of the label, over all instances.
  uint64_t occurrences = 0;
  /// Histogram: occurrence count per instance → number of instances.
  /// Backs the R(T) repetition queries of the evolution policies.
  std::map<uint32_t, uint64_t> count_histogram;
  /// Sum of normalized positions (index / max(1, len−1)) of the label's
  /// occurrences; `occurrences` is the denominator. Lets the structure
  /// builder order AND children by where the labels actually appeared —
  /// recorded sequences are order-free sets, so this is the only order
  /// signal kept (a documented extension of the paper's structures).
  double position_sum = 0.0;

  void RecordInstance(uint32_t count_in_instance);

  /// Mean normalized position in [0, 1]; 0.5 when never seen.
  double MeanPosition() const {
    return occurrences == 0 ? 0.5 : position_sum / static_cast<double>(occurrences);
  }

  /// If every containing instance had exactly the same occurrence count m,
  /// returns m; otherwise returns 0 ("varied"). 0 when never seen.
  uint32_t UniformCount() const;

  void MergeFrom(const OccurrenceStats& other);
};

class ElementStats;

/// Per-label record inside an element's statistics.
struct LabelStats {
  /// Statistics over locally *valid* instances of the element. The paper
  /// records only counters for valid instances; we additionally keep
  /// label occurrences because the old-window *operator restriction*
  /// needs to know what the valid instances actually contained.
  OccurrenceStats valid;
  /// Statistics over locally *invalid* instances (§3.2 proper).
  OccurrenceStats invalid;
  /// For labels not in the declaration's symbol set (*plus* elements):
  /// recursively recorded structure of the label's instances, "used for
  /// extracting from the instances with the same label a DTD declaration
  /// for l".
  std::unique_ptr<ElementStats> plus_structure;

  LabelStats() = default;
  LabelStats(LabelStats&&) = default;
  LabelStats& operator=(LabelStats&&) = default;
};

/// A recorded group (§3.2): a set of sibling labels that were repeated the
/// same number of times within one instance.
struct GroupKey {
  std::set<std::string> labels;
  uint32_t repeat_count = 0;

  friend bool operator<(const GroupKey& a, const GroupKey& b) {
    if (a.repeat_count != b.repeat_count) return a.repeat_count < b.repeat_count;
    return a.labels < b.labels;
  }
};

/// All structural information recorded against one element declaration —
/// the per-node payload of the *extended DTD*. Aggregate only: documents
/// never need to be re-read during evolution.
class ElementStats {
 public:
  ElementStats() = default;
  ElementStats(ElementStats&&) = default;
  ElementStats& operator=(ElementStats&&) = default;

  /// Records one instance of the element. `child_tags` are the tags of
  /// the direct subelements in document order; `locally_valid` is whether
  /// the content satisfied the declaration; `has_text` whether the
  /// instance carried non-blank character data.
  /// Returns the labels of this instance for the caller's convenience.
  std::set<std::string> RecordInstance(
      const std::vector<std::string>& child_tags, bool locally_valid,
      bool has_text);

  /// Allocation-lean twin for the recorder's per-element hot path: same
  /// recorded state, fed tag views and backed by reused scratch. The
  /// valid-instance case (the common one on a repetitive stream) touches
  /// only existing map nodes after warm-up.
  void RecordInstance(const std::string_view* child_tags, size_t tag_count,
                      bool locally_valid, bool has_text);

  uint64_t valid_instances() const { return valid_instances_; }
  uint64_t invalid_instances() const { return invalid_instances_; }
  uint64_t total_instances() const {
    return valid_instances_ + invalid_instances_;
  }
  uint64_t text_instances() const { return text_instances_; }
  uint64_t empty_instances() const { return empty_instances_; }

  /// Documents-containing counters (§3.2); bumped by the recorder once
  /// per document.
  uint64_t docs_with_valid() const { return docs_with_valid_; }
  uint64_t docs_with_invalid() const { return docs_with_invalid_; }
  void BumpDocsWithValid() { ++docs_with_valid_; }
  void BumpDocsWithInvalid() { ++docs_with_invalid_; }

  /// The invalidity ratio I(e) = m / n (§3.2); 0 when nothing recorded.
  double InvalidityRatio() const;

  /// Label map with transparent comparison, so the recording hot path
  /// can probe by `string_view` without materializing a key.
  using LabelMap = std::map<std::string, LabelStats, std::less<>>;

  /// Labels found in the recorded instances (the element's `Label` set).
  const LabelMap& labels() const { return labels_; }
  LabelMap& labels() { return labels_; }

  /// Transparent element-wise lexicographic order over label sets, so
  /// the recording hot path can probe `sequences_` with a sorted vector
  /// of views — same ordering as `std::less<std::set<std::string>>`.
  struct SequenceLess {
    using is_transparent = void;
    template <typename A, typename B>
    bool operator()(const A& a, const B& b) const {
      return std::lexicographical_compare(a.begin(), a.end(), b.begin(),
                                          b.end());
    }
  };
  using SequenceMap = std::map<std::set<std::string>, uint64_t, SequenceLess>;

  /// The sequences recorded from invalid instances: child-tag sets
  /// (order and repetition disregarded) with multiplicities.
  const SequenceMap& sequences() const { return sequences_; }

  /// Recorded groups with their counters r.
  const std::map<GroupKey, uint64_t>& groups() const { return groups_; }

  /// Sequences as (set, count) pairs for the rule oracle.
  std::vector<std::pair<std::set<std::string>, uint32_t>> SequenceList() const;

  /// Label universe of the recorded sequences.
  std::set<std::string> LabelUniverse() const;

  /// Gets or creates the nested stats of a plus label.
  ElementStats& PlusStructureFor(std::string_view label);

  /// Records the attribute names one instance carried (the paper leaves
  /// attributes out; this backs the attribute-evolution extension).
  void RecordAttributes(const std::vector<std::string>& names);
  /// View twin for the recorder hot path; allocates only on first sight
  /// of a name.
  void RecordAttributes(const std::string_view* names, size_t count);
  /// Instances carrying each attribute name, over all instances.
  const std::map<std::string, uint64_t, std::less<>>& attribute_counts()
      const {
    return attribute_counts_;
  }
  void RestoreAttributeCount(const std::string& name, uint64_t count) {
    attribute_counts_[name] += count;
  }

  /// Resets everything — recording starts over after an evolution round.
  void Clear();

  /// Rough storage footprint in bytes, for the recording experiment.
  size_t MemoryFootprint() const;

  // --- Restore hooks (used by the persistence module only) -----------------

  void RestoreCounters(uint64_t valid, uint64_t invalid, uint64_t docs_valid,
                       uint64_t docs_invalid, uint64_t text, uint64_t empty);
  void RestoreSequence(std::set<std::string> labels, uint64_t count) {
    sequences_[std::move(labels)] += count;
  }
  void RestoreGroup(GroupKey key, uint64_t count) {
    groups_[std::move(key)] += count;
  }

 private:
  uint64_t valid_instances_ = 0;
  uint64_t invalid_instances_ = 0;
  uint64_t docs_with_valid_ = 0;
  uint64_t docs_with_invalid_ = 0;
  uint64_t text_instances_ = 0;
  uint64_t empty_instances_ = 0;
  LabelMap labels_;
  SequenceMap sequences_;
  std::map<GroupKey, uint64_t> groups_;
  std::map<std::string, uint64_t, std::less<>> attribute_counts_;
};

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_STATS_H_
