#include "evolve/structure_builder.h"

#include <set>
#include <string>
#include <utility>

#include "mining/rules.h"

namespace dtdevolve::evolve {

BuildOutcome BuildElementStructure(const ElementStats& stats,
                                   const BuildOptions& options) {
  BuildOutcome outcome;
  if (stats.invalid_instances() == 0) return outcome;  // nothing recorded

  mining::SequenceRuleOracle oracle(stats.SequenceList(),
                                    stats.LabelUniverse(),
                                    options.min_support);
  outcome.frequent_sequences = oracle.frequent_sequences().size();
  outcome.discarded_sequences =
      stats.sequences().size() - outcome.frequent_sequences;

  // Labels appearing in at least one representative sequence; labels seen
  // only in discarded sequences are not representative enough to keep.
  std::set<std::string> labels;
  for (const auto& [sequence, count] : oracle.frequent_sequences()) {
    labels.insert(sequence.begin(), sequence.end());
  }

  if (labels.empty()) {
    // The representative instances had no element children at all.
    outcome.model = stats.text_instances() > 0 ? dtd::ContentModel::Pcdata()
                                               : dtd::ContentModel::Empty();
    return outcome;
  }

  if (stats.text_instances() > 0) {
    // Character data was observed alongside element children; the only
    // DTD form admitting both is mixed content (#PCDATA | a | …)*.
    std::vector<dtd::ContentModel::Ptr> alternatives;
    alternatives.push_back(dtd::ContentModel::Pcdata());
    for (const std::string& label : labels) {
      alternatives.push_back(dtd::ContentModel::Name(label));
    }
    outcome.model = dtd::ContentModel::Star(
        dtd::ContentModel::Choice(std::move(alternatives)));
    return outcome;
  }

  PolicyOptions policy_options;
  policy_options.enable_or = options.enable_or;
  policy_options.contiguity_guard = options.contiguity_guard;
  PolicyEngine engine(oracle, stats, policy_options);
  outcome.model = engine.Run(labels, &outcome.trace);
  return outcome;
}

}  // namespace dtdevolve::evolve
