#ifndef DTDEVOLVE_EVOLVE_RESTRICTION_H_
#define DTDEVOLVE_EVOLVE_RESTRICTION_H_

#include "dtd/content_model.h"
#include "evolve/stats.h"

namespace dtdevolve::evolve {

/// Operator restriction (§4.1, old window): when almost all recorded
/// instances conform to the declaration, the declaration may still be
/// *tightened* to the valid instances actually seen — e.g. if every
/// instance of `a` contained at least one `b`, `b*` becomes `b+`.
///
/// Restrictions are applied to unary operators over single element names,
/// judged against the label statistics of the *valid* instances:
///  * `x*` → `x`   when x was always present and never repeated;
///  * `x*` → `x+`  when x was always present (and repeated somewhere);
///  * `x*` → `x?`  when x was never repeated (but sometimes absent);
///  * `x+` → `x`   when x was never repeated;
///  * `x?` → `x`   when x was always present.
/// A restriction only fires with positive evidence: at least one valid
/// instance recorded, and (for presence-based rules) the label seen at
/// least once. Labels under OR alternatives are naturally protected —
/// an alternative not taken by every instance is never "always present".
struct RestrictionResult {
  dtd::ContentModel::Ptr model;
  bool changed = false;
};

RestrictionResult RestrictOperators(dtd::ContentModel::Ptr model,
                                    const ElementStats& stats);

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_RESTRICTION_H_
