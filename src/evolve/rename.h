#ifndef DTDEVOLVE_EVOLVE_RENAME_H_
#define DTDEVOLVE_EVOLVE_RENAME_H_

#include <set>
#include <string>
#include <vector>

#include "evolve/stats.h"
#include "similarity/thesaurus.h"

namespace dtdevolve::evolve {

/// A detected tag rename: documents stopped using the declared tag `from`
/// and consistently use the thesaurus-similar tag `to` in its place.
struct RenameCandidate {
  std::string from;  // declared subelement tag
  std::string to;    // observed replacement tag
  double score = 0.0;       // thesaurus similarity
  uint64_t evidence = 0;    // sequences exhibiting the replacement
};

/// The §6 extension "evolving tag names as well as their structure by
/// relying on the use of a Thesaurus": a plus label `to` is a rename of a
/// declared label `from` when
///  * `to` is not declared while `from` is,
///  * the thesaurus scores the pair ≥ `min_score`, and
///  * the two are complementary in the recorded sequences — `from` never
///    co-occurs with `to`, and `to` does occur.
/// Candidates are returned best-score-first; each observed tag maps to at
/// most one declared tag and vice versa.
std::vector<RenameCandidate> DetectRenames(
    const ElementStats& stats, const std::set<std::string>& declared_symbols,
    const similarity::Thesaurus& thesaurus, double min_score = 0.5);

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_RENAME_H_
