#ifndef DTDEVOLVE_EVOLVE_TRIGGER_H_
#define DTDEVOLVE_EVOLVE_TRIGGER_H_

#include <cstdint>

#include "evolve/extended_dtd.h"

namespace dtdevolve::evolve {

/// Outcome of the check phase for one DTD.
struct CheckResult {
  bool should_evolve = false;
  /// Mean per-document non-valid-element fraction (the condition's LHS).
  double divergence = 0.0;
  uint64_t documents = 0;
};

/// The check phase (§2): evolution of DTD T triggers when
///   Σ_{D ∈ Doc_T} (#nonvalid(D) / #elements(D)) / #Doc_T  >  τ.
CheckResult CheckEvolutionTrigger(const ExtendedDtd& ext, double tau);

}  // namespace dtdevolve::evolve

#endif  // DTDEVOLVE_EVOLVE_TRIGGER_H_
