#include "evolve/trigger.h"

namespace dtdevolve::evolve {

CheckResult CheckEvolutionTrigger(const ExtendedDtd& ext, double tau) {
  CheckResult result;
  result.documents = ext.documents_recorded();
  result.divergence = ext.MeanDivergence();
  result.should_evolve = result.documents > 0 && result.divergence > tau;
  return result;
}

}  // namespace dtdevolve::evolve
