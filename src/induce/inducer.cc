#include "induce/inducer.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "evolve/recorder.h"
#include "similarity/similarity.h"
#include "validate/validator.h"

namespace dtdevolve::induce {

namespace {

/// Most frequent root tag among the members; ties break toward the
/// lexicographically smallest (std::map iteration order).
std::string PickRootName(const std::vector<const xml::Document*>& docs) {
  std::map<std::string, size_t> counts;
  for (const xml::Document* doc : docs) ++counts[doc->root().tag()];
  std::string best;
  size_t best_count = 0;
  for (const auto& [tag, count] : counts) {
    if (count > best_count) {
      best = tag;
      best_count = count;
    }
  }
  return best;
}

std::string ProposeName(const std::string& root,
                        const std::set<std::string>& taken,
                        const std::string& prefix) {
  std::string base = prefix + root;
  if (taken.find(base) == taken.end()) return base;
  for (int n = 2;; ++n) {
    std::string name = base + "-" + std::to_string(n);
    if (taken.find(name) == taken.end()) return name;
  }
}

}  // namespace

std::vector<Candidate> InduceClusterCandidates(
    const std::vector<Cluster>& clusters,
    const classify::Repository& repository,
    const classify::Classifier* classifier,
    std::vector<std::string> taken_names, const InduceOptions& options) {
  std::set<std::string> taken(taken_names.begin(), taken_names.end());
  std::vector<Candidate> candidates;

  for (const Cluster& cluster : clusters) {
    std::vector<const xml::Document*> docs;
    std::vector<const xml::Element*> roots;
    std::vector<int> doc_ids;
    docs.reserve(cluster.members.size());
    for (int id : cluster.members) {
      const xml::Document& doc = repository.Get(id);
      if (!doc.has_root()) continue;
      docs.push_back(&doc);
      roots.push_back(&doc.root());
      doc_ids.push_back(id);
    }
    if (docs.empty()) continue;

    const std::string root_name = PickRootName(docs);
    dtd::Dtd skeleton =
        baseline::InferXtractDtd(roots, root_name, options.xtract);
    if (!skeleton.Check().ok()) continue;

    // Record every member against the skeleton; when the skeleton leaves
    // divergence, one round of the evolution machinery (mining + the 13
    // policies) rebuilds the deviating declarations.
    evolve::ExtendedDtd ext(std::move(skeleton));
    {
      evolve::Recorder recorder(ext);
      for (const xml::Document* doc : docs) recorder.RecordDocument(*doc);
    }
    if (options.refine && ext.MeanDivergence() > 0.0) {
      evolve::EvolveDtd(ext, options.evolution);
      if (!ext.dtd().Check().ok()) continue;
    }
    ext.ResetStats();

    Candidate candidate;
    {
      validate::Validator validator(ext.dtd());
      for (size_t i = 0; i < docs.size(); ++i) {
        if (validator.Validate(*docs[i]).valid) {
          candidate.validated.push_back(doc_ids[i]);
        }
      }
    }
    candidate.coverage = static_cast<double>(candidate.validated.size()) /
                         static_cast<double>(docs.size());
    if (candidate.coverage < options.min_coverage ||
        candidate.validated.empty()) {
      continue;
    }

    similarity::SimilarityEvaluator evaluator(ext.dtd(),
                                              options.cluster.similarity);
    double margin_sum = 0.0;
    for (const xml::Document* doc : docs) {
      double own = evaluator.DocumentSimilarity(*doc);
      double existing = 0.0;
      if (classifier != nullptr && classifier->size() > 0) {
        existing = classifier->Classify(*doc).similarity;
      }
      margin_sum += own - existing;
    }
    candidate.margin = margin_sum / static_cast<double>(docs.size());

    candidate.name = ProposeName(root_name, taken, options.name_prefix);
    taken.insert(candidate.name);
    candidate.members = cluster.members;
    candidate.ext = std::move(ext);
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

}  // namespace dtdevolve::induce
