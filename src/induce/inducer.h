#ifndef DTDEVOLVE_INDUCE_INDUCER_H_
#define DTDEVOLVE_INDUCE_INDUCER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "baseline/xtract.h"
#include "classify/classifier.h"
#include "classify/repository.h"
#include "evolve/evolver.h"
#include "evolve/extended_dtd.h"
#include "induce/cluster.h"

namespace dtdevolve::induce {

/// Knobs of the candidate-DTD induction step.
struct InduceOptions {
  ClusterOptions cluster;
  /// MDL weighting of the XTRACT skeleton inference.
  baseline::XtractOptions xtract;
  /// When the XTRACT skeleton leaves cluster members invalid, refine it
  /// with one round of the evolution machinery (recording + structure
  /// builder) over the members.
  bool refine = true;
  /// Options of that refinement round.
  evolve::EvolutionOptions evolution;
  /// Clusters whose candidate validates a smaller fraction of the
  /// members are dropped instead of proposed.
  double min_coverage = 0.5;
  /// Proposed DTD names are `prefix + root tag` (suffixed `-2`, `-3`, …
  /// against collisions).
  std::string name_prefix = "induced-";
};

/// A candidate DTD induced from one repository cluster, waiting for an
/// accept/reject decision.
struct Candidate {
  /// Lifecycle id, assigned by the owning `XmlSource` from a monotonic
  /// counter (never reused, like repository ids).
  uint64_t id = 0;
  /// Proposed DTD name, collision-free against the live set and the
  /// other candidates of the same induction round.
  std::string name;
  /// The candidate extended DTD, with clean recording state (an accepted
  /// candidate starts a fresh DOC_cur).
  evolve::ExtendedDtd ext = evolve::ExtendedDtd(dtd::Dtd());
  /// Repository ids of the cluster members, ascending.
  std::vector<int> members;
  /// The subset of `members` the candidate validates — the inducer's
  /// claim, which the oracle's induction invariant re-checks at accept.
  std::vector<int> validated;
  /// validated.size() / members.size().
  double coverage = 0.0;
  /// Mean over members of (similarity to the candidate − best similarity
  /// over every existing DTD): how much better the candidate explains
  /// the cluster than the live set does.
  double margin = 0.0;
};

/// Induces one candidate per cluster. `classifier` (nullable) supplies
/// the existing-set similarity for the margin; `taken_names` seeds the
/// collision set for proposed names. Candidates come back in cluster
/// order with `id` unset; clusters whose inference fails its consistency
/// check or the coverage floor are skipped. Deterministic.
std::vector<Candidate> InduceClusterCandidates(
    const std::vector<Cluster>& clusters,
    const classify::Repository& repository,
    const classify::Classifier* classifier,
    std::vector<std::string> taken_names, const InduceOptions& options);

}  // namespace dtdevolve::induce

#endif  // DTDEVOLVE_INDUCE_INDUCER_H_
