#include "induce/cluster.h"

#include <algorithm>

#include "baseline/naive_infer.h"
#include "similarity/score_cache.h"

namespace dtdevolve::induce {

RepositoryClusterer::RepositoryClusterer(ClusterOptions options)
    : options_(std::move(options)) {}

double RepositoryClusterer::GroupSimilarity(const Group& a,
                                            const Group& b) const {
  if (a.fp_hi == b.fp_hi && a.fp_lo == b.fp_lo) return 1.0;
  return 0.5 * (a.evaluator->DocumentSimilarity(b.exemplar) +
                b.evaluator->DocumentSimilarity(a.exemplar));
}

double RepositoryClusterer::ClusterSimilarity(const Group& g,
                                              size_t ci) const {
  double best = 0.0;
  size_t probes = 0;
  for (size_t gi : clusters_[ci]) {
    if (probes >= options_.max_probes_per_cluster) break;
    best = std::max(best, GroupSimilarity(g, *groups_[gi]));
    ++probes;
  }
  return best;
}

void RepositoryClusterer::Add(int id, const xml::Document& doc) {
  Remove(id);
  if (!doc.has_root()) return;

  similarity::SubtreeFingerprints fingerprints(doc.root());
  const similarity::SubtreeStats* stats = fingerprints.Find(&doc.root());
  const std::pair<uint64_t, uint64_t> key{stats->fp_hi, stats->fp_lo};

  auto it = by_fingerprint_.find(key);
  if (it != by_fingerprint_.end()) {
    // Known structure: O(1) join, no similarity evaluation at all.
    groups_[it->second]->ids.insert(id);
    by_id_[id] = it->second;
    return;
  }

  auto group = std::make_unique<Group>();
  group->fp_hi = key.first;
  group->fp_lo = key.second;
  group->exemplar = doc.Clone();
  group->dtd = std::make_unique<dtd::Dtd>(baseline::InferNaiveDtd(
      {&group->exemplar.root()}, group->exemplar.root().tag()));
  group->evaluator = std::make_unique<similarity::SimilarityEvaluator>(
      *group->dtd, options_.similarity);
  group->ids.insert(id);

  // Greedy agglomerative join: earliest cluster wins ties.
  size_t best_cluster = clusters_.size();
  double best = 0.0;
  for (size_t ci = 0; ci < clusters_.size(); ++ci) {
    if (clusters_[ci].empty()) continue;
    double sim = ClusterSimilarity(*group, ci);
    if (sim > best) {
      best = sim;
      best_cluster = ci;
    }
  }
  if (best_cluster == clusters_.size() || best < options_.merge_threshold) {
    group->cluster = clusters_.size();
    clusters_.emplace_back();
    clusters_.back().push_back(groups_.size());
  } else {
    group->cluster = best_cluster;
    clusters_[best_cluster].push_back(groups_.size());
  }
  by_fingerprint_.emplace(key, groups_.size());
  by_id_[id] = groups_.size();
  groups_.push_back(std::move(group));
}

void RepositoryClusterer::Remove(int id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return;
  groups_[it->second]->ids.erase(id);
  by_id_.erase(it);
}

size_t RepositoryClusterer::Consolidate() {
  size_t merges = 0;
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t ci = 0; ci < clusters_.size() && !merged; ++ci) {
      if (clusters_[ci].empty()) continue;
      for (size_t cj = ci + 1; cj < clusters_.size() && !merged; ++cj) {
        if (clusters_[cj].empty()) continue;
        double best = 0.0;
        size_t probes = 0;
        for (size_t gi : clusters_[ci]) {
          if (probes >= options_.max_probes_per_cluster) break;
          best = std::max(best, ClusterSimilarity(*groups_[gi], cj));
          ++probes;
        }
        if (best >= options_.merge_threshold) {
          for (size_t gj : clusters_[cj]) {
            groups_[gj]->cluster = ci;
            clusters_[ci].push_back(gj);
          }
          clusters_[cj].clear();
          merged = true;
          ++merges;
        }
      }
    }
  }
  return merges;
}

std::vector<Cluster> RepositoryClusterer::Clusters() const {
  std::vector<Cluster> out;
  for (const std::vector<size_t>& cluster : clusters_) {
    Cluster c;
    for (size_t gi : cluster) {
      const Group& group = *groups_[gi];
      if (group.ids.empty()) continue;
      if (c.exemplar < 0) c.exemplar = *group.ids.begin();
      ++c.distinct_structures;
      c.members.insert(c.members.end(), group.ids.begin(), group.ids.end());
    }
    if (c.members.size() < options_.min_cluster_size) continue;
    std::sort(c.members.begin(), c.members.end());
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const Cluster& a, const Cluster& b) {
    return a.exemplar < b.exemplar;
  });
  return out;
}

ClusterStats RepositoryClusterer::GetStats() const {
  ClusterStats stats;
  for (const std::vector<size_t>& cluster : clusters_) {
    size_t members = 0;
    size_t structures = 0;
    for (size_t gi : cluster) {
      if (groups_[gi]->ids.empty()) continue;
      members += groups_[gi]->ids.size();
      ++structures;
    }
    if (members == 0) continue;
    ++stats.clusters;
    stats.largest_cluster = std::max(stats.largest_cluster, members);
    stats.documents += members;
    stats.distinct_structures += structures;
  }
  return stats;
}

}  // namespace dtdevolve::induce
