#ifndef DTDEVOLVE_INDUCE_CLUSTER_H_
#define DTDEVOLVE_INDUCE_CLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "dtd/dtd.h"
#include "similarity/similarity.h"
#include "xml/document.h"

namespace dtdevolve::induce {

/// Knobs of the repository clustering step.
struct ClusterOptions {
  /// Minimum symmetrized structural similarity for a document structure to
  /// join an existing cluster (agglomerative merge threshold).
  double merge_threshold = 0.55;
  /// Clusters with fewer member documents are never reported (and thus
  /// never induce a candidate DTD).
  size_t min_cluster_size = 2;
  /// How many structure exemplars per cluster an arrival is scored
  /// against (bounded max-linkage); higher is more accurate, slower.
  size_t max_probes_per_cluster = 4;
  /// Similarity knobs for the pairwise measure, normally the same options
  /// the classifier uses.
  similarity::SimilarityOptions similarity;
};

/// One cluster of structurally similar repository documents.
struct Cluster {
  /// Repository ids of the member documents, ascending. Repository ids
  /// are never reused (`classify::Repository` hands them out from a
  /// monotonic counter), so these remain meaningful identifiers even
  /// after members leave the repository.
  std::vector<int> members;
  /// Number of distinct structural fingerprints among the members.
  size_t distinct_structures = 0;
  /// Repository id of the exemplar document (smallest id of the first
  /// structure group).
  int exemplar = -1;
};

/// Aggregate view of the clusterer for `/stats`.
struct ClusterStats {
  /// Non-empty clusters, including ones below the size floor.
  size_t clusters = 0;
  /// Member count of the largest cluster.
  size_t largest_cluster = 0;
  /// Documents currently tracked (== repository size when kept in sync).
  size_t documents = 0;
  /// Distinct structural fingerprints across all clusters.
  size_t distinct_structures = 0;
};

/// Incremental structural clustering over the repository of unclassified
/// documents. Documents are first collapsed by their root subtree
/// fingerprint (`similarity::SubtreeFingerprints`) — identical structures
/// join their group in O(1) without any similarity evaluation. A *new*
/// structure gets a single-document union DTD (`baseline::InferNaiveDtd`)
/// plus a `SimilarityEvaluator` over it, is scored against bounded
/// max-linkage exemplars of every existing cluster with the symmetrized
/// measure 0.5·(sim(A→B) + sim(B→A)), and joins the best cluster at or
/// above the merge threshold (else founds its own). `Consolidate` runs
/// the remaining agglomerative merges between whole clusters.
///
/// Everything is deterministic in insertion order: no randomness, ties
/// broken toward the earliest-created cluster. Not thread-safe; callers
/// (XmlSource) serialize access like every other mutating entry point.
class RepositoryClusterer {
 public:
  explicit RepositoryClusterer(ClusterOptions options = {});

  RepositoryClusterer(const RepositoryClusterer&) = delete;
  RepositoryClusterer& operator=(const RepositoryClusterer&) = delete;

  /// Tracks repository document `id`. Re-adding a known id re-files it
  /// under the (possibly changed) document's structure.
  void Add(int id, const xml::Document& doc);

  /// Untracks `id` (the document was re-classified out of the
  /// repository). Unknown ids are ignored. The structure group and its
  /// evaluator are kept so an identical later arrival still joins in
  /// O(1).
  void Remove(int id);

  /// Runs the pending agglomerative merges: clusters whose bounded
  /// max-linkage similarity reaches the merge threshold are unified.
  /// Returns the number of merges performed.
  size_t Consolidate();

  /// Clusters meeting the size floor, ordered by ascending exemplar id.
  std::vector<Cluster> Clusters() const;

  ClusterStats GetStats() const;

  const ClusterOptions& options() const { return options_; }

 private:
  /// One distinct document structure: the exemplar document, the
  /// single-document DTD inferred from it and its similarity evaluator.
  struct Group {
    uint64_t fp_hi = 0;
    uint64_t fp_lo = 0;
    xml::Document exemplar;
    std::unique_ptr<dtd::Dtd> dtd;
    std::unique_ptr<similarity::SimilarityEvaluator> evaluator;
    std::set<int> ids;
    size_t cluster = 0;
  };

  double GroupSimilarity(const Group& a, const Group& b) const;
  /// Bounded max-linkage similarity of group `g` against cluster `ci`.
  double ClusterSimilarity(const Group& g, size_t ci) const;

  ClusterOptions options_;
  std::vector<std::unique_ptr<Group>> groups_;
  /// (fp_hi, fp_lo) → index into groups_.
  std::map<std::pair<uint64_t, uint64_t>, size_t> by_fingerprint_;
  std::map<int, size_t> by_id_;
  /// Cluster → group indices, in creation order. Merged-away clusters
  /// become empty vectors (skipped everywhere).
  std::vector<std::vector<size_t>> clusters_;
};

}  // namespace dtdevolve::induce

#endif  // DTDEVOLVE_INDUCE_CLUSTER_H_
