// libFuzzer-compatible driver for toolchains without -fsanitize=fuzzer
// (plain g++): gives every fuzz target a main() with the OSS-Fuzz
// replay contract — corpus files or directories as arguments run once
// each — plus a bounded deterministic mutation loop:
//
//   fuzz_xml_parser corpus/xml                 # replay only
//   fuzz_xml_parser corpus/xml --seconds 60    # replay, then mutate 60s
//   fuzz_xml_parser corpus/xml --runs 10000    # replay, then N mutations
//
// Mutations are splitmix64-seeded (--seed S, default 1), so a crash is
// reproducible by re-running with the same corpus, seed, and run count.
// On a crashing signal (trap, abort, segfault) the driver dumps the
// in-flight input to crash-input.bin in the working directory, so the
// failure replays directly:
//
//   fuzz_xml_parser crash-input.bin
//
// --verbose additionally prints every run number to keep a noisy trail.

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

constexpr size_t kMaxInputSize = 1 << 20;

// The input currently inside LLVMFuzzerTestOneInput, for the crash dump.
// Written only between runs, read only from the fatal-signal handler.
const uint8_t* g_current_data = nullptr;
size_t g_current_size = 0;

// Async-signal-safe: open/write/re-raise only.
void CrashDump(int sig) {
  int fd = ::open("crash-input.bin", O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    size_t done = 0;
    while (done < g_current_size) {
      ssize_t n = ::write(fd, g_current_data + done, g_current_size - done);
      if (n <= 0) break;
      done += static_cast<size_t>(n);
    }
    ::close(fd);
    const char msg[] = "crashing input saved to crash-input.bin\n";
    ssize_t ignored = ::write(STDERR_FILENO, msg, sizeof(msg) - 1);
    (void)ignored;
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void InstallCrashDump() {
  for (int sig : {SIGILL, SIGABRT, SIGSEGV, SIGFPE, SIGBUS}) {
    ::signal(sig, CrashDump);
  }
}

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

void RunOne(const std::string& input) {
  size_t size = input.size() < kMaxInputSize ? input.size() : kMaxInputSize;
  g_current_data = reinterpret_cast<const uint8_t*>(input.data());
  g_current_size = size;
  (void)LLVMFuzzerTestOneInput(g_current_data, size);
  g_current_data = nullptr;
  g_current_size = 0;
}

/// One round of byte-level mutation: flips, inserts, erases, and splices
/// from a second corpus entry — the classic libFuzzer moves, minus the
/// coverage feedback the plain toolchain cannot provide.
std::string Mutate(const std::string& base, const std::string& other,
                   uint64_t& rng) {
  std::string out = base;
  size_t rounds = 1 + SplitMix64(rng) % 8;
  for (size_t r = 0; r < rounds; ++r) {
    switch (SplitMix64(rng) % 5) {
      case 0:  // flip a byte
        if (!out.empty()) {
          out[SplitMix64(rng) % out.size()] =
              static_cast<char>(SplitMix64(rng));
        }
        break;
      case 1:  // insert a random byte
        out.insert(out.begin() + SplitMix64(rng) % (out.size() + 1),
                   static_cast<char>(SplitMix64(rng)));
        break;
      case 2:  // erase a span
        if (!out.empty()) {
          size_t pos = SplitMix64(rng) % out.size();
          size_t len = 1 + SplitMix64(rng) % (out.size() - pos);
          out.erase(pos, len);
        }
        break;
      case 3:  // duplicate a span in place
        if (!out.empty() && out.size() < kMaxInputSize) {
          size_t pos = SplitMix64(rng) % out.size();
          size_t len = 1 + SplitMix64(rng) % (out.size() - pos);
          out.insert(pos, out.substr(pos, len));
        }
        break;
      default:  // splice a span from another corpus entry
        if (!other.empty() && out.size() < kMaxInputSize) {
          size_t opos = SplitMix64(rng) % other.size();
          size_t len = 1 + SplitMix64(rng) % (other.size() - opos);
          out.insert(SplitMix64(rng) % (out.size() + 1),
                     other.substr(opos, len));
        }
        break;
    }
  }
  if (out.size() > kMaxInputSize) out.resize(kMaxInputSize);
  return out;
}

bool ReadFile(const std::filesystem::path& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  InstallCrashDump();
  std::vector<std::string> corpus;
  long seconds = 0;
  long runs = 0;
  uint64_t seed = 1;
  bool verbose = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto long_flag = [&](const char* name, long* out) {
      if (arg != name) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", name);
        std::exit(1);
      }
      *out = std::strtol(argv[++i], nullptr, 10);
      return true;
    };
    long seed_value = 0;
    if (long_flag("--seconds", &seconds) || long_flag("--runs", &runs)) {
      continue;
    }
    if (long_flag("--seed", &seed_value)) {
      seed = static_cast<uint64_t>(seed_value);
      continue;
    }
    if (arg == "--verbose") {
      verbose = true;
      continue;
    }
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());  // deterministic replay order
      for (const auto& file : files) {
        std::string content;
        if (ReadFile(file, &content)) corpus.push_back(std::move(content));
      }
    } else {
      std::string content;
      if (!ReadFile(arg, &content)) {
        std::fprintf(stderr, "cannot read %s\n", arg.c_str());
        return 1;
      }
      corpus.push_back(std::move(content));
    }
  }

  if (corpus.empty()) corpus.push_back("");

  for (size_t i = 0; i < corpus.size(); ++i) {
    if (verbose) std::fprintf(stderr, "replay %zu\n", i);
    RunOne(corpus[i]);
  }
  std::fprintf(stderr, "replayed %zu corpus entr%s\n", corpus.size(),
               corpus.size() == 1 ? "y" : "ies");

  if (seconds <= 0 && runs <= 0) return 0;

  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::seconds(seconds > 0 ? seconds : 0);
  uint64_t rng = seed;
  long executed = 0;
  while (true) {
    if (runs > 0 && executed >= runs) break;
    if (seconds > 0 && std::chrono::steady_clock::now() >= deadline) break;
    const std::string& base = corpus[SplitMix64(rng) % corpus.size()];
    const std::string& other = corpus[SplitMix64(rng) % corpus.size()];
    std::string mutated = Mutate(base, other, rng);
    if (verbose) std::fprintf(stderr, "run %ld (%zu bytes)\n", executed,
                              mutated.size());
    RunOne(mutated);
    ++executed;
  }
  std::fprintf(stderr, "executed %ld mutated run(s), seed %llu\n", executed,
               static_cast<unsigned long long>(seed));
  return 0;
}
