// Fuzz target: the DTD declaration parser. Every input must yield a
// clean Status or a consistent Dtd — no crashes on truncated ATTLIST
// declarations, no stack overflow on deeply nested content-model groups.
// Accepted DTDs are pushed through the consumers a real run would hit
// next: the writer (whose output must re-parse) and the Glushkov
// construction per declaration.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "dtd/glushkov.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  dtdevolve::StatusOr<dtdevolve::dtd::Dtd> dtd = dtdevolve::dtd::ParseDtd(input);
  if (!dtd.ok()) return 0;
  // Glushkov construction is quadratic in positions; bound the work so
  // the fuzzer spends its time in the parser, not in one huge automaton.
  if (dtd->TotalNodeCount() <= 2000) {
    for (const std::string& name : dtd->ElementNames()) {
      const dtdevolve::dtd::ElementDecl* decl = dtd->FindElement(name);
      if (decl->content != nullptr) {
        dtdevolve::dtd::Automaton automaton =
            dtdevolve::dtd::Automaton::Build(*decl->content);
        (void)automaton.IsDeterministic();
      }
    }
  }
  std::string written = dtdevolve::dtd::WriteDtd(*dtd);
  dtdevolve::StatusOr<dtdevolve::dtd::Dtd> reparsed =
      dtdevolve::dtd::ParseDtd(written);
  if (!reparsed.ok()) __builtin_trap();
  return 0;
}
