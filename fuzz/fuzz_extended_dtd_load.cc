// Fuzz target: the extended-DTD snapshot deserializer — the surface a
// server exposes to whatever is on disk at startup. Any byte stream must
// produce a clean Status or a state that is a serialization fixed point:
// serialize(deserialize(x)) must deserialize again to the same bytes.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "evolve/persist.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  dtdevolve::StatusOr<dtdevolve::evolve::ExtendedDtd> loaded =
      dtdevolve::evolve::DeserializeExtendedDtd(input);
  if (!loaded.ok()) return 0;
  std::string first = dtdevolve::evolve::SerializeExtendedDtd(*loaded);
  dtdevolve::StatusOr<dtdevolve::evolve::ExtendedDtd> reloaded =
      dtdevolve::evolve::DeserializeExtendedDtd(first);
  if (!reloaded.ok()) __builtin_trap();
  if (dtdevolve::evolve::SerializeExtendedDtd(*reloaded) != first) {
    __builtin_trap();
  }
  return 0;
}
