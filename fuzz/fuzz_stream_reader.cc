// Fuzz target: the streaming pull reader, differentially against the DOM
// parser. Shares the xml seed corpus with fuzz_xml_parser:
//
//   build-fuzz/fuzz/fuzz_stream_reader tests/corpus/xml --seconds 60
//
// The two parsers must agree on accept/reject for every input; on accept
// the arena tree must convert to a structurally equal DOM, the DOCTYPE
// fields must match, and the parse-time root fingerprint must be
// bit-identical to the after-the-fact DOM fingerprint index — the
// contract the classification memo's correctness rests on.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "similarity/score_cache.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/stream_reader.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  dtdevolve::StatusOr<dtdevolve::xml::Document> dom =
      dtdevolve::xml::ParseDocument(input);
  dtdevolve::StatusOr<dtdevolve::xml::ArenaDocument> arena =
      dtdevolve::xml::ParseArenaDocument(input);
  if (dom.ok() != arena.ok()) __builtin_trap();
  if (!dom.ok()) return 0;
  if (dom->has_root() != arena->has_root()) __builtin_trap();
  if (dom->doctype_name() != arena->doctype_name() ||
      dom->internal_subset() != arena->internal_subset()) {
    __builtin_trap();
  }
  dtdevolve::xml::Document converted = arena->ToDocument();
  if (dom->has_root() != converted.has_root()) __builtin_trap();
  if (!dom->has_root()) return 0;
  if (!dtdevolve::xml::StructurallyEqual(dom->root(), converted.root())) {
    __builtin_trap();
  }
  dtdevolve::similarity::SubtreeFingerprints fps(dom->root());
  const dtdevolve::similarity::SubtreeStats* stats = fps.Find(&dom->root());
  const dtdevolve::xml::ArenaElement& root = arena->root();
  if (stats == nullptr || stats->fp_hi != root.fp_hi ||
      stats->fp_lo != root.fp_lo ||
      stats->element_count != root.element_count) {
    __builtin_trap();
  }
  return 0;
}
