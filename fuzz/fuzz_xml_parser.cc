// Fuzz target: the XML lexer/parser plus the recursive walks a parsed
// tree immediately undergoes in the pipeline (counting, height,
// serialization, content symbols). The parser must return a clean Status
// for every input — never crash, hang, or overflow the stack — and
// accepted documents must survive the walks and re-serialize.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "validate/validator.h"
#include "xml/parser.h"
#include "xml/writer.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view input(reinterpret_cast<const char*>(data), size);
  dtdevolve::StatusOr<dtdevolve::xml::Document> doc =
      dtdevolve::xml::ParseDocument(input);
  if (!doc.ok() || !doc->has_root()) return 0;
  // These walks recurse over the element tree — the reason the parser
  // enforces its depth limit.
  (void)doc->root().SubtreeElementCount();
  (void)doc->root().SubtreeHeight();
  (void)doc->root().ChildTagSet();
  (void)dtdevolve::validate::ContentSymbols(doc->root());
  std::string serialized = dtdevolve::xml::WriteDocument(*doc);
  // What the writer emits, the parser must take back.
  dtdevolve::StatusOr<dtdevolve::xml::Document> reparsed =
      dtdevolve::xml::ParseDocument(serialized);
  if (!reparsed.ok()) __builtin_trap();
  return 0;
}
