#!/usr/bin/env bash
# Sanitizer CI matrix: builds the tree under ASan+UBSan and TSan and runs
# the `oracle`, `concurrency`, `durability`, `induction`, `replication`,
# `overload` and `parsepath` ctest labels — the suites that replay the
# differential, crash-recovery, replication, overload and parse-path
# oracles and fan out threads, where sanitizer findings actually live. Every configuration is
# a CMake preset (CMakePresets.json), so a single leg is reproducible by
# hand:
#
#   cmake --preset tsan && cmake --build --preset tsan && ctest --preset tsan
#
# Usage:
#   tools/ci_matrix.sh           # legs over the labeled oracle/concurrency suites
#   tools/ci_matrix.sh --full    # sanitizer legs over the full suite
#
# Environment: JOBS (parallel build/test jobs, default nproc).

set -euo pipefail

SRC=$(cd "$(dirname "$0")/.." && pwd)
JOBS=${JOBS:-$(nproc)}
FULL=0
if [ "${1:-}" = "--full" ]; then
  FULL=1
  shift
fi

cd "$SRC"

run_leg() {
  local preset=$1
  echo "=== leg: $preset ==="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$JOBS"
  if [ "$FULL" = 1 ]; then
    # Full suite: bypass the preset's label filter.
    ctest --test-dir "build-$preset" --output-on-failure -j "$JOBS"
  else
    ctest --preset "$preset" -j "$JOBS"
  fi
}

run_leg asan-ubsan
run_leg tsan

# Perf smoke on the classification fast path (RelWithDebInfo — sanitizer
# builds are useless for timing): fails on outcome divergence or a >2x
# throughput regression against the committed baseline.
echo "=== leg: perf-smoke ==="
cmake -B build -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build -j "$JOBS" --target bench_classification \
  bench_similarity bench_mining bench_server bench_induce
tools/perf_smoke.sh build

echo "sanitizer matrix clean (asan-ubsan, tsan) + perf smoke"
