#!/usr/bin/env bash
# Perf smoke: runs the classification fast-path headline benchmark
# (bench_classification --json, fixed seed) and compares it against the
# committed baseline BENCH_classification.json. Fails when
#
#   * the fast path no longer classifies identically to the disabled
#     fast path (outcome_mismatches != 0), or
#   * the streaming parse path no longer ingests identically to the DOM
#     reference path (ingest_outcome_mismatches != 0), or
#   * throughput regressed by more than 2x against the committed
#     baseline's docs_per_second or ingest_docs_per_second (absolute
#     numbers shift between machines; a >2x drop on the same fixed
#     workload is a real regression, not noise).
#
# A second leg drives bench_server's mixed multi-tenant load (4 shards,
# fixed seed) against the committed BENCH_server.json: every request
# must be served (failed == 0) and end-to-end throughput must stay
# within the same 2x band.
#
# A third leg runs bench_induce's candidate-lifecycle workload (4
# mixed-population families, fixed seed) against the committed
# BENCH_induce.json: the induction invariants must hold
# (invariant_failures == 0 — k clusters, >= 95% member validity, full
# repository drain) and candidates/sec must stay within the 2x band.
#
# Usage:
#   tools/perf_smoke.sh [build-dir]     # default: build
#
# The fresh measurement is left in <build-dir>/BENCH_classification.json
# and <build-dir>/BENCH_server.json (plus BENCH_similarity.json /
# BENCH_mining.json for trend tracking).

set -euo pipefail

SRC=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-build}
BASELINE="$SRC/BENCH_classification.json"
BENCH="$SRC/$BUILD/bench/bench_classification"

if [ ! -x "$BENCH" ]; then
  echo "perf_smoke: $BENCH not built (cmake --build $BUILD --target bench_classification)" >&2
  exit 1
fi
if [ ! -f "$BASELINE" ]; then
  echo "perf_smoke: no committed baseline at $BASELINE" >&2
  exit 1
fi

json_field() {
  # json_field FILE KEY — value of a numeric field in the flat one-line
  # JSON the bench binaries emit.
  grep -o "\"$2\":[0-9.eE+-]*" "$1" | head -1 | cut -d: -f2
}

cd "$SRC/$BUILD"
"$BENCH" --json BENCH_classification.json > /dev/null
# Companion headlines, for trend tracking only (never gate).
./bench/bench_similarity --json BENCH_similarity.json > /dev/null || true
./bench/bench_mining --json BENCH_mining.json > /dev/null || true

current=$(json_field BENCH_classification.json docs_per_second)
mismatches=$(json_field BENCH_classification.json outcome_mismatches)
speedup=$(json_field BENCH_classification.json speedup)
baseline=$(json_field "$BASELINE" docs_per_second)

echo "perf_smoke: docs/sec current=$current baseline=$baseline" \
     "speedup=$speedup mismatches=$mismatches"

if [ "$mismatches" != "0" ]; then
  echo "perf_smoke: FAIL — fast path diverged from reference outcomes" >&2
  exit 2
fi

awk -v cur="$current" -v base="$baseline" 'BEGIN {
  if (cur * 2 < base) {
    printf "perf_smoke: FAIL — throughput regressed >2x (%.0f vs %.0f)\n",
           cur, base > "/dev/stderr"
    exit 2
  }
}'

# --- Parse-path ingest leg: streaming default vs DOM reference ----------

ingest_current=$(json_field BENCH_classification.json ingest_docs_per_second)
ingest_mismatches=$(json_field BENCH_classification.json ingest_outcome_mismatches)
ingest_baseline=$(json_field "$BASELINE" ingest_docs_per_second)

if [ -n "$ingest_current" ]; then
  echo "perf_smoke: ingest docs/sec current=$ingest_current" \
       "baseline=${ingest_baseline:-none} mismatches=$ingest_mismatches"

  if [ "$ingest_mismatches" != "0" ]; then
    echo "perf_smoke: FAIL — streaming ingest diverged from DOM reference" >&2
    exit 2
  fi
  # Baseline field may be absent until the first re-baselined commit.
  if [ -n "$ingest_baseline" ]; then
    awk -v cur="$ingest_current" -v base="$ingest_baseline" 'BEGIN {
      if (cur * 2 < base) {
        printf "perf_smoke: FAIL — ingest throughput regressed >2x (%.0f vs %.0f)\n",
               cur, base > "/dev/stderr"
        exit 2
      }
    }'
  fi
else
  echo "perf_smoke: skipping ingest leg (no ingest fields in bench output)"
fi

# --- Server leg: mixed multi-tenant ingest over loopback ----------------

SERVER_BENCH=./bench/bench_server
SERVER_BASELINE="$SRC/BENCH_server.json"
if [ -x "$SERVER_BENCH" ] && [ -f "$SERVER_BASELINE" ]; then
  # Same fixed workload as the committed baseline.
  "$SERVER_BENCH" --docs 400 --clients 4 --jobs 2 --tenants 4 \
      --out BENCH_server.json > /dev/null
  server_current=$(json_field BENCH_server.json docs_per_second)
  server_failed=$(json_field BENCH_server.json failed)
  server_baseline=$(json_field "$SERVER_BASELINE" docs_per_second)

  echo "perf_smoke: server docs/sec current=$server_current" \
       "baseline=$server_baseline failed=$server_failed"

  if [ "$server_failed" != "0" ]; then
    echo "perf_smoke: FAIL — bench_server dropped requests" >&2
    exit 2
  fi
  awk -v cur="$server_current" -v base="$server_baseline" 'BEGIN {
    if (cur * 2 < base) {
      printf "perf_smoke: FAIL — server throughput regressed >2x (%.0f vs %.0f)\n",
             cur, base > "/dev/stderr"
      exit 2
    }
  }'
else
  echo "perf_smoke: skipping server leg (bench_server or baseline missing)"
fi

# --- Induction leg: repository clustering → candidate lifecycle ---------

INDUCE_BENCH=./bench/bench_induce
INDUCE_BASELINE="$SRC/BENCH_induce.json"
if [ -x "$INDUCE_BENCH" ] && [ -f "$INDUCE_BASELINE" ]; then
  # Same fixed workload as the committed baseline.
  "$INDUCE_BENCH" --families 4 --docs-per-family 250 --jobs 2 \
      --out BENCH_induce.json > /dev/null
  induce_current=$(json_field BENCH_induce.json candidates_per_second)
  induce_failures=$(json_field BENCH_induce.json invariant_failures)
  induce_baseline=$(json_field "$INDUCE_BASELINE" candidates_per_second)

  echo "perf_smoke: induce candidates/sec current=$induce_current" \
       "baseline=$induce_baseline invariant_failures=$induce_failures"

  if [ "$induce_failures" != "0" ]; then
    echo "perf_smoke: FAIL — bench_induce induction invariants violated" >&2
    exit 2
  fi
  awk -v cur="$induce_current" -v base="$induce_baseline" 'BEGIN {
    if (cur * 2 < base) {
      printf "perf_smoke: FAIL — induction throughput regressed >2x (%.0f vs %.0f)\n",
             cur, base > "/dev/stderr"
      exit 2
    }
  }'
else
  echo "perf_smoke: skipping induction leg (bench_induce or baseline missing)"
fi

echo "perf_smoke: OK"
