// dtdevolve — command-line front end.
//
//   dtdevolve validate   <dtd-file> <xml-file>...
//   dtdevolve similarity <dtd-file> <xml-file>...
//   dtdevolve infer      [--xtract|--naive] <root-name> <xml-file>...
//   dtdevolve evolve     <dtd-file> [--sigma S] [--tau T] [--psi P]
//                        [--mu M] [--jobs N] <xml-file>...
//   dtdevolve adapt      <dtd-file> <xml-file>
//   dtdevolve induce     <dtd-file> [--sigma S] [--jobs N]
//                        [--merge-threshold M] [--min-cluster-size N]
//                        [--min-coverage C] [--accept] <xml-file>...
//   dtdevolve serve      <dtd-file>... [--port P] [--jobs N]
//                        [--snapshot-dir D] [--sigma S] [--tau T]
//                        [--psi P] [--mu M] [--tenants LIST|N]
//                        [--tenant-config FILE]
//                        [--auto-induce-threshold N]
//   dtdevolve check      [--scenarios N] [--seed S] [--max-documents N]
//                        [--max-failures K] [--no-persistence]
//                        [--no-minimize] [--induction]
//
// Exit code 0 on success; 1 on usage/IO/parse errors; for `validate`,
// 2 when at least one document is invalid; for `induce`, 2 when the
// repository yields no candidate; for `check`, 2 when an invariant was
// violated.
//
// Unknown `--flags` are usage errors everywhere; `serve` additionally
// rejects non-positive --port/--jobs.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "adapt/adapter.h"
#include "baseline/naive_infer.h"
#include "baseline/xtract.h"
#include "check/oracle.h"
#include "check/overload.h"
#include "core/source.h"
#include "dtd/diff.h"
#include "dtd/dtd_parser.h"
#include "dtd/dtd_writer.h"
#include "server/server.h"
#include "similarity/similarity.h"
#include "validate/validator.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xsd/from_dtd.h"
#include "xsd/writer.h"

namespace {

using dtdevolve::Status;
using dtdevolve::StatusOr;

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

StatusOr<dtdevolve::dtd::Dtd> LoadDtd(const std::string& path) {
  StatusOr<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return dtdevolve::dtd::ParseDtd(*text);
}

StatusOr<dtdevolve::xml::Document> LoadDoc(const std::string& path) {
  StatusOr<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return dtdevolve::xml::ParseDocument(*text);
}

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  dtdevolve validate   <dtd> <xml>...\n"
               "  dtdevolve similarity <dtd> <xml>...\n"
               "  dtdevolve infer      [--xtract|--naive] <root> <xml>...\n"
               "  dtdevolve evolve     <dtd> [--sigma S] [--tau T] "
               "[--psi P] [--mu M] [--jobs N]\n"
               "                       [--score-cache-mb N] "
               "[--no-score-cache]\n"
               "                       [--classification-memo-mb N] "
               "[--no-classification-memo]\n"
               "                       [--no-streaming-parse] <xml>...\n"
               "  dtdevolve adapt      <dtd> <xml>\n"
               "  dtdevolve induce     <dtd> [--sigma S] [--jobs N] "
               "[--merge-threshold M]\n"
               "                       [--min-cluster-size N] "
               "[--min-coverage C] [--accept] <xml>...\n"
               "  dtdevolve xsd        <dtd>\n"
               "  dtdevolve diff       <old-dtd> <new-dtd>\n"
               "  dtdevolve serve      <dtd>... [--port P] [--jobs N] "
               "[--snapshot-dir D]\n"
               "                       [--sigma S] [--tau T] [--psi P] "
               "[--mu M]\n"
               "                       [--wal-dir D] [--fsync-policy "
               "always|interval|none]\n"
               "                       [--fsync-interval-ms N] "
               "[--checkpoint-interval-ms N]\n"
               "                       [--recv-timeout S] [--send-timeout S] "
               "[--idle-timeout S]\n"
               "                       [--score-cache-mb N] "
               "[--no-score-cache]\n"
               "                       [--classification-memo-mb N] "
               "[--no-classification-memo]\n"
               "                       [--no-streaming-parse]\n"
               "                       [--tenants LIST|N] "
               "[--tenant-config FILE]\n"
               "                       [--auto-induce-threshold N]\n"
               "                       [--follow URL] "
               "[--poll-interval-ms N]\n"
               "                       [--max-connections N] "
               "[--max-pipeline-depth N]\n"
               "                       [--max-doc-bytes N] "
               "[--tenant-rate R] [--tenant-burst B]\n"
               "                       [--max-repository-docs N]\n"
               "                       [--repository-policy "
               "evict-oldest|reject-new]\n"
               "  dtdevolve check      [--scenarios N] [--seed S] "
               "[--max-documents N]\n"
               "                       [--max-failures K] [--no-persistence] "
               "[--no-minimize]\n"
               "                       [--crash-recovery] [--crash-points N] "
               "[--checkpoint-every K]\n"
               "                       [--induction] [--replication] "
               "[--overload] [--parse-path]\n");
  return 1;
}

int UnknownFlag(const std::string& flag) {
  std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
  return Usage();
}

bool IsFlag(const std::string& arg) { return arg.rfind("--", 0) == 0; }

/// Strict numeric flag values: the whole argument must parse.
bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != text.c_str() && *end == '\0';
}

bool ParseLong(const std::string& text, long* out) {
  char* end = nullptr;
  *out = std::strtol(text.c_str(), &end, 10);
  return end != text.c_str() && *end == '\0';
}

int CmdDiff(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  StatusOr<dtdevolve::dtd::Dtd> old_dtd = LoadDtd(args[0]);
  StatusOr<dtdevolve::dtd::Dtd> new_dtd = LoadDtd(args[1]);
  if (!old_dtd.ok() || !new_dtd.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!old_dtd.ok() ? old_dtd.status() : new_dtd.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  std::printf("%s",
              dtdevolve::dtd::FormatDiff(
                  dtdevolve::dtd::DiffDtds(*old_dtd, *new_dtd))
                  .c_str());
  return 0;
}

int CmdXsd(const std::vector<std::string>& args) {
  if (args.size() != 1) return Usage();
  StatusOr<dtdevolve::dtd::Dtd> dtd = LoadDtd(args[0]);
  if (!dtd.ok()) {
    std::fprintf(stderr, "%s\n", dtd.status().ToString().c_str());
    return 1;
  }
  std::printf("%s",
              dtdevolve::xsd::WriteSchema(dtdevolve::xsd::FromDtd(*dtd))
                  .c_str());
  return 0;
}

int CmdValidate(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  StatusOr<dtdevolve::dtd::Dtd> dtd = LoadDtd(args[0]);
  if (!dtd.ok()) {
    std::fprintf(stderr, "%s\n", dtd.status().ToString().c_str());
    return 1;
  }
  dtdevolve::validate::Validator validator(*dtd);
  bool all_valid = true;
  for (size_t i = 1; i < args.size(); ++i) {
    StatusOr<dtdevolve::xml::Document> doc = LoadDoc(args[i]);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   doc.status().ToString().c_str());
      all_valid = false;
      continue;
    }
    dtdevolve::validate::ValidationResult result = validator.Validate(*doc);
    std::printf("%s: %s\n", args[i].c_str(),
                result.valid ? "valid" : "INVALID");
    for (const auto& error : result.errors) {
      std::printf("  %s: %s\n", error.path.c_str(), error.message.c_str());
    }
    all_valid = all_valid && result.valid;
  }
  return all_valid ? 0 : 2;
}

int CmdSimilarity(const std::vector<std::string>& args) {
  if (args.size() < 2) return Usage();
  StatusOr<dtdevolve::dtd::Dtd> dtd = LoadDtd(args[0]);
  if (!dtd.ok()) {
    std::fprintf(stderr, "%s\n", dtd.status().ToString().c_str());
    return 1;
  }
  dtdevolve::similarity::SimilarityEvaluator evaluator(*dtd);
  for (size_t i = 1; i < args.size(); ++i) {
    StatusOr<dtdevolve::xml::Document> doc = LoadDoc(args[i]);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   doc.status().ToString().c_str());
      continue;
    }
    std::printf("%s: %.4f\n", args[i].c_str(),
                evaluator.DocumentSimilarity(*doc));
  }
  return 0;
}

int CmdInfer(std::vector<std::string> args) {
  bool use_naive = false;
  if (!args.empty() && (args[0] == "--xtract" || args[0] == "--naive")) {
    use_naive = args[0] == "--naive";
    args.erase(args.begin());
  }
  for (const std::string& arg : args) {
    if (IsFlag(arg)) return UnknownFlag(arg);
  }
  if (args.size() < 2) return Usage();
  const std::string root = args[0];
  std::vector<dtdevolve::xml::Document> docs;
  for (size_t i = 1; i < args.size(); ++i) {
    StatusOr<dtdevolve::xml::Document> doc = LoadDoc(args[i]);
    if (!doc.ok()) {
      std::fprintf(stderr, "%s: %s\n", args[i].c_str(),
                   doc.status().ToString().c_str());
      return 1;
    }
    docs.push_back(std::move(*doc));
  }
  dtdevolve::dtd::Dtd dtd =
      use_naive ? dtdevolve::baseline::InferNaiveDtd(docs, root)
                : dtdevolve::baseline::InferXtractDtd(docs, root);
  std::printf("%s", dtdevolve::dtd::WriteDtd(dtd).c_str());
  return 0;
}

int CmdEvolve(std::vector<std::string> args) {
  if (args.empty()) return Usage();
  const std::string dtd_path = args[0];
  args.erase(args.begin());

  dtdevolve::core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.15;
  options.min_documents_before_check = 1;
  // --jobs N switches to batch ingest: all documents are loaded up
  // front and scored concurrently on N threads (0 = all cores). The
  // outcome is identical to the sequential one-at-a-time mode.
  long jobs = -1;
  std::vector<std::string> files;
  for (size_t i = 0; i < args.size(); ++i) {
    bool bad_value = false;
    auto flag_value = [&](const char* name, double* out) {
      if (args[i] != name) return false;
      if (i + 1 >= args.size() || !ParseDouble(args[i + 1], out)) {
        bad_value = true;
        return true;
      }
      ++i;
      return true;
    };
    if (flag_value("--sigma", &options.sigma) ||
        flag_value("--tau", &options.tau) ||
        flag_value("--psi", &options.evolution.psi) ||
        flag_value("--mu", &options.evolution.min_support)) {
      if (bad_value) return Usage();
      continue;
    }
    if (args[i] == "--jobs") {
      if (i + 1 >= args.size() || !ParseLong(args[i + 1], &jobs) || jobs < 0) {
        return Usage();
      }
      ++i;
      continue;
    }
    if (args[i] == "--score-cache-mb") {
      long mb = 0;
      if (i + 1 >= args.size() || !ParseLong(args[i + 1], &mb) || mb < 0) {
        return Usage();
      }
      ++i;
      // 0 MB means no cache at all, same as --no-score-cache.
      options.classifier.enable_score_cache = mb > 0;
      options.classifier.score_cache_bytes = static_cast<size_t>(mb) << 20;
      continue;
    }
    if (args[i] == "--no-score-cache") {
      options.classifier.enable_score_cache = false;
      continue;
    }
    if (args[i] == "--classification-memo-mb") {
      long mb = 0;
      if (i + 1 >= args.size() || !ParseLong(args[i + 1], &mb) || mb < 0) {
        return Usage();
      }
      ++i;
      // 0 MB means no memo at all, same as --no-classification-memo.
      options.classifier.enable_classification_memo = mb > 0;
      options.classifier.classification_memo_bytes = static_cast<size_t>(mb)
                                                     << 20;
      continue;
    }
    if (args[i] == "--no-classification-memo") {
      options.classifier.enable_classification_memo = false;
      continue;
    }
    if (args[i] == "--no-streaming-parse") {
      options.streaming_parse = false;
      continue;
    }
    if (IsFlag(args[i])) return UnknownFlag(args[i]);
    files.push_back(args[i]);
  }
  if (files.empty()) return Usage();

  StatusOr<std::string> dtd_text = ReadFile(dtd_path);
  if (!dtd_text.ok()) {
    std::fprintf(stderr, "%s\n", dtd_text.status().ToString().c_str());
    return 1;
  }
  dtdevolve::core::XmlSource source(options);
  Status added = source.AddDtdText("dtd", *dtd_text);
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.ToString().c_str());
    return 1;
  }
  size_t classified = 0;
  if (jobs >= 0) {
    // Batch ingest: parse everything, then classify in parallel.
    std::vector<dtdevolve::xml::Document> docs;
    docs.reserve(files.size());
    for (const std::string& file : files) {
      StatusOr<dtdevolve::xml::Document> doc = LoadDoc(file);
      if (!doc.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     doc.status().ToString().c_str());
        return 1;
      }
      docs.push_back(std::move(*doc));
    }
    for (const auto& outcome : source.ProcessBatch(
             std::move(docs), static_cast<size_t>(jobs))) {
      if (outcome.classified) ++classified;
    }
  } else {
    for (const std::string& file : files) {
      StatusOr<std::string> text = ReadFile(file);
      if (!text.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     text.status().ToString().c_str());
        return 1;
      }
      auto outcome = source.ProcessText(*text);
      if (!outcome.ok()) {
        std::fprintf(stderr, "%s: %s\n", file.c_str(),
                     outcome.status().ToString().c_str());
        return 1;
      }
      if (outcome->classified) ++classified;
    }
  }
  // One final forced round absorbs whatever the τ check left pending.
  if (source.FindExtended("dtd")->documents_recorded() > 0 &&
      source.Check("dtd").divergence > 0) {
    source.ForceEvolve("dtd");
  }
  std::fprintf(stderr,
               "processed %zu file(s), classified %zu, repository %zu, "
               "evolutions %llu\n",
               files.size(), classified, source.repository().size(),
               static_cast<unsigned long long>(
                   source.evolutions_performed()));
  std::printf("%s", dtdevolve::dtd::WriteDtd(*source.FindDtd("dtd")).c_str());
  return 0;
}

int CmdAdapt(const std::vector<std::string>& args) {
  if (args.size() != 2) return Usage();
  StatusOr<dtdevolve::dtd::Dtd> dtd = LoadDtd(args[0]);
  if (!dtd.ok()) {
    std::fprintf(stderr, "%s\n", dtd.status().ToString().c_str());
    return 1;
  }
  StatusOr<dtdevolve::xml::Document> doc = LoadDoc(args[1]);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  dtdevolve::adapt::AdaptReport report;
  Status adapted = dtdevolve::adapt::AdaptDocument(*doc, *dtd, {}, &report);
  if (!adapted.ok()) {
    std::fprintf(stderr, "%s\n", adapted.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "dropped %llu, moved %llu, inserted %llu\n",
               static_cast<unsigned long long>(report.children_dropped),
               static_cast<unsigned long long>(report.children_moved),
               static_cast<unsigned long long>(report.children_inserted));
  std::printf("%s\n", dtdevolve::xml::WriteDocument(*doc).c_str());
  return 0;
}

/// "schemas/mail.dtd" → "mail": the served (or induced-over) DTD name is
/// the file's basename without its extension.
std::string DtdNameFromPath(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string name =
      slash == std::string::npos ? path : path.substr(slash + 1);
  const size_t dot = name.find_last_of('.');
  if (dot != std::string::npos && dot > 0) name = name.substr(0, dot);
  return name.empty() ? path : name;
}

/// Offline induction: feed the documents through the pipeline with the
/// seed DTD, cluster whatever lands in the repository, and print one
/// candidate DTD per cluster. `--accept` additionally promotes the
/// candidates (best coverage first, re-inducing between accepts because
/// an accept re-classifies the repository) and prints the final DTD set.
int CmdInduce(std::vector<std::string> args) {
  if (args.empty()) return Usage();
  const std::string dtd_path = args[0];
  args.erase(args.begin());

  dtdevolve::core::SourceOptions options;
  options.sigma = 0.5;
  options.auto_evolve = false;
  long jobs = 1;
  bool accept = false;
  std::vector<std::string> files;
  for (size_t i = 0; i < args.size(); ++i) {
    bool bad_value = false;
    auto flag_value = [&](const char* name, double* out) {
      if (args[i] != name) return false;
      if (i + 1 >= args.size() || !ParseDouble(args[i + 1], out)) {
        bad_value = true;
        return true;
      }
      ++i;
      return true;
    };
    if (flag_value("--sigma", &options.sigma) ||
        flag_value("--merge-threshold",
                   &options.induce.cluster.merge_threshold) ||
        flag_value("--min-coverage", &options.induce.min_coverage)) {
      if (bad_value) return Usage();
      continue;
    }
    if (args[i] == "--min-cluster-size" || args[i] == "--jobs") {
      long value = 0;
      const bool is_jobs = args[i] == "--jobs";
      if (i + 1 >= args.size() || !ParseLong(args[i + 1], &value) ||
          value < (is_jobs ? 0 : 1)) {
        return Usage();
      }
      ++i;
      if (is_jobs) {
        jobs = value;
      } else {
        options.induce.cluster.min_cluster_size = static_cast<size_t>(value);
      }
      continue;
    }
    if (args[i] == "--accept") {
      accept = true;
      continue;
    }
    if (IsFlag(args[i])) return UnknownFlag(args[i]);
    files.push_back(args[i]);
  }
  if (files.empty()) return Usage();

  StatusOr<std::string> dtd_text = ReadFile(dtd_path);
  if (!dtd_text.ok()) {
    std::fprintf(stderr, "%s\n", dtd_text.status().ToString().c_str());
    return 1;
  }
  dtdevolve::core::XmlSource source(options);
  Status added = source.AddDtdText(DtdNameFromPath(dtd_path), *dtd_text);
  if (!added.ok()) {
    std::fprintf(stderr, "%s\n", added.ToString().c_str());
    return 1;
  }
  for (const std::string& file : files) {
    StatusOr<std::string> text = ReadFile(file);
    if (!text.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   text.status().ToString().c_str());
      return 1;
    }
    auto outcome = source.ProcessText(*text);
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   outcome.status().ToString().c_str());
      return 1;
    }
  }

  size_t induced = source.InduceCandidates();
  std::fprintf(stderr,
               "repository %zu document(s), %zu cluster(s), "
               "%zu candidate(s)\n",
               source.repository().size(), source.cluster_stats().clusters,
               induced);
  for (const auto& candidate : source.candidates()) {
    std::printf("# candidate %llu: %s (members %zu, validated %zu, "
                "coverage %.2f, margin %.2f)\n%s",
                static_cast<unsigned long long>(candidate.id),
                candidate.name.c_str(), candidate.members.size(),
                candidate.validated.size(), candidate.coverage,
                candidate.margin,
                dtdevolve::dtd::WriteDtd(candidate.ext.dtd()).c_str());
  }
  if (induced == 0) return 2;
  if (!accept) return 0;

  // Promote best-coverage-first; each accept re-classifies the
  // repository, so re-induce between rounds. A cluster whose members
  // never re-classify would re-induce forever, so stop as soon as a
  // round fails to shrink the repository.
  while (!source.candidates().empty()) {
    const dtdevolve::induce::Candidate* best = nullptr;
    for (const auto& candidate : source.candidates()) {
      if (best == nullptr || candidate.coverage > best->coverage) {
        best = &candidate;
      }
    }
    StatusOr<dtdevolve::core::XmlSource::AcceptOutcome> outcome =
        source.AcceptCandidate(best->id, static_cast<size_t>(jobs));
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s\n", outcome.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "accepted %s: %zu member(s), %zu re-classified, "
                 "repository now %zu\n",
                 outcome->dtd_name.c_str(), outcome->members,
                 outcome->reclassified, source.repository().size());
    if (outcome->reclassified == 0) break;
    source.InduceCandidates();
  }
  std::fprintf(stderr, "final dtd set:");
  for (const std::string& name : source.DtdNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 0;
}

// `serve` wires SIGINT/SIGTERM to a graceful stop; IngestServer::Shutdown
// is async-signal-safe, so the handler may call it directly.
dtdevolve::server::IngestServer* g_server = nullptr;

void HandleStopSignal(int) {
  if (g_server != nullptr) g_server->Shutdown();
}

/// `--tenants` value: either a count ("4" → shard-0..shard-3) or a
/// comma-separated name list ("acme,globex"). Returns false on an empty
/// value, an empty name, or a duplicate.
bool ParseTenantsFlag(const std::string& value,
                      std::vector<std::string>* tenants) {
  long count = 0;
  if (ParseLong(value, &count)) {
    if (count <= 0) return false;
    for (long t = 0; t < count; ++t) {
      tenants->push_back("shard-" + std::to_string(t));
    }
    return true;
  }
  size_t start = 0;
  while (start <= value.size()) {
    const size_t comma = value.find(',', start);
    const std::string name =
        value.substr(start, comma == std::string::npos ? std::string::npos
                                                       : comma - start);
    if (name.empty()) return false;
    for (const std::string& existing : *tenants) {
      if (existing == name) return false;
    }
    tenants->push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return !tenants->empty();
}

/// A `--tenant-config` file: one tenant per line, `<tenant> <dtd-file>...`
/// (blank lines and `#` comments skipped). Every named tenant becomes a
/// shard; its DTD files seed only that shard. Tokens containing `=` are
/// per-tenant quota overrides instead of DTD files: `rate=R`, `burst=B`,
/// `max-doc-bytes=N`, `max-repository-docs=N` (fields not named inherit
/// the process-wide `--tenant-rate`/`--max-doc-bytes`/... defaults).
struct TenantSeed {
  std::string tenant;
  std::vector<std::string> dtd_files;
  dtdevolve::server::TenantQuota quota;
  bool has_quota = false;
};

bool ParseTenantConfig(const std::string& text,
                       std::vector<TenantSeed>* seeds) {
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream fields(line);
    std::string tenant;
    if (!(fields >> tenant) || tenant[0] == '#') continue;
    TenantSeed seed;
    seed.tenant = tenant;
    std::string token;
    while (fields >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) {
        seed.dtd_files.push_back(token);
        continue;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      double rate = 0.0;
      long count = 0;
      if (key == "rate" && ParseDouble(value, &rate) && rate >= 0.0) {
        seed.quota.rate = rate;
      } else if (key == "burst" && ParseDouble(value, &rate) && rate >= 0.0) {
        seed.quota.burst = rate;
      } else if (key == "max-doc-bytes" && ParseLong(value, &count) &&
                 count >= 0) {
        seed.quota.max_doc_bytes = count;
      } else if (key == "max-repository-docs" && ParseLong(value, &count) &&
                 count >= 0) {
        seed.quota.max_repository_docs = count;
      } else {
        return false;  // unknown quota key or bad value
      }
      seed.has_quota = true;
    }
    seeds->push_back(std::move(seed));
  }
  return !seeds->empty();
}

int CmdServe(std::vector<std::string> args) {
  dtdevolve::core::SourceOptions source_options;
  source_options.sigma = 0.3;
  source_options.tau = 0.15;
  source_options.min_documents_before_check = 1;
  dtdevolve::server::ServerOptions server_options;
  std::vector<std::string> dtd_files;
  std::vector<TenantSeed> tenant_seeds;
  for (size_t i = 0; i < args.size(); ++i) {
    bool bad_value = false;
    auto flag_value = [&](const char* name, double* out) {
      if (args[i] != name) return false;
      if (i + 1 >= args.size() || !ParseDouble(args[i + 1], out)) {
        bad_value = true;
        return true;
      }
      ++i;
      return true;
    };
    auto positive_long = [&](const char* name, long* out) {
      if (args[i] != name) return false;
      if (i + 1 >= args.size() || !ParseLong(args[i + 1], out) || *out <= 0) {
        bad_value = true;
        return true;
      }
      ++i;
      return true;
    };
    // For flags where zero is a documented "disabled" value.
    auto nonnegative_long = [&](const char* name, long* out) {
      if (args[i] != name) return false;
      if (i + 1 >= args.size() || !ParseLong(args[i + 1], out) || *out < 0) {
        bad_value = true;
        return true;
      }
      ++i;
      return true;
    };
    if (flag_value("--sigma", &source_options.sigma) ||
        flag_value("--tau", &source_options.tau) ||
        flag_value("--psi", &source_options.evolution.psi) ||
        flag_value("--mu", &source_options.evolution.min_support)) {
      if (bad_value) return Usage();
      continue;
    }
    long value = 0;
    if (positive_long("--port", &value)) {
      if (bad_value || value > 65535) return Usage();
      server_options.port = static_cast<uint16_t>(value);
      continue;
    }
    if (positive_long("--jobs", &value)) {
      if (bad_value) return Usage();
      server_options.jobs = static_cast<size_t>(value);
      continue;
    }
    if (args[i] == "--snapshot-dir") {
      if (i + 1 >= args.size()) return Usage();
      server_options.snapshot_dir = args[++i];
      continue;
    }
    if (args[i] == "--wal-dir") {
      if (i + 1 >= args.size()) return Usage();
      server_options.wal_dir = args[++i];
      continue;
    }
    if (args[i] == "--fsync-policy") {
      if (i + 1 >= args.size() ||
          !dtdevolve::store::ParseFsyncPolicy(args[i + 1],
                                              &server_options.fsync_policy)) {
        return Usage();
      }
      ++i;
      continue;
    }
    if (positive_long("--fsync-interval-ms", &value)) {
      if (bad_value) return Usage();
      server_options.fsync_interval = std::chrono::milliseconds(value);
      continue;
    }
    if (nonnegative_long("--checkpoint-interval-ms", &value)) {
      if (bad_value) return Usage();
      server_options.checkpoint_interval = std::chrono::milliseconds(value);
      continue;
    }
    if (nonnegative_long("--recv-timeout", &value)) {
      if (bad_value) return Usage();
      server_options.recv_timeout_seconds = static_cast<int>(value);
      continue;
    }
    if (nonnegative_long("--send-timeout", &value)) {
      if (bad_value) return Usage();
      server_options.send_timeout_seconds = static_cast<int>(value);
      continue;
    }
    if (nonnegative_long("--idle-timeout", &value)) {
      if (bad_value) return Usage();
      server_options.idle_timeout_seconds = static_cast<int>(value);
      continue;
    }
    if (args[i] == "--follow") {
      if (i + 1 >= args.size()) return Usage();
      server_options.follow_url = args[++i];
      continue;
    }
    if (positive_long("--poll-interval-ms", &value)) {
      if (bad_value) return Usage();
      server_options.follow_poll_interval = std::chrono::milliseconds(value);
      continue;
    }
    if (nonnegative_long("--score-cache-mb", &value)) {
      if (bad_value) return Usage();
      // 0 MB means no cache at all, same as --no-score-cache.
      source_options.classifier.enable_score_cache = value > 0;
      source_options.classifier.score_cache_bytes =
          static_cast<size_t>(value) << 20;
      continue;
    }
    if (args[i] == "--no-score-cache") {
      source_options.classifier.enable_score_cache = false;
      continue;
    }
    if (nonnegative_long("--classification-memo-mb", &value)) {
      if (bad_value) return Usage();
      // 0 MB means no memo at all, same as --no-classification-memo.
      source_options.classifier.enable_classification_memo = value > 0;
      source_options.classifier.classification_memo_bytes =
          static_cast<size_t>(value) << 20;
      continue;
    }
    if (args[i] == "--no-classification-memo") {
      source_options.classifier.enable_classification_memo = false;
      continue;
    }
    if (args[i] == "--no-streaming-parse") {
      source_options.streaming_parse = false;
      continue;
    }
    if (nonnegative_long("--auto-induce-threshold", &value)) {
      if (bad_value) return Usage();
      server_options.auto_induce_threshold = static_cast<size_t>(value);
      continue;
    }
    if (nonnegative_long("--max-connections", &value)) {
      if (bad_value) return Usage();
      server_options.max_connections = static_cast<size_t>(value);
      continue;
    }
    if (nonnegative_long("--max-pipeline-depth", &value)) {
      if (bad_value) return Usage();
      server_options.max_pipeline_depth = static_cast<size_t>(value);
      continue;
    }
    if (nonnegative_long("--max-doc-bytes", &value)) {
      if (bad_value) return Usage();
      server_options.max_doc_bytes = static_cast<size_t>(value);
      continue;
    }
    if (nonnegative_long("--max-repository-docs", &value)) {
      if (bad_value) return Usage();
      server_options.max_repository_docs = static_cast<size_t>(value);
      continue;
    }
    double rate = 0.0;
    if (flag_value("--tenant-rate", &rate)) {
      if (bad_value || rate < 0.0) return Usage();
      server_options.tenant_rate = rate;
      continue;
    }
    if (flag_value("--tenant-burst", &rate)) {
      if (bad_value || rate < 0.0) return Usage();
      server_options.tenant_burst = rate;
      continue;
    }
    if (args[i] == "--repository-policy") {
      if (i + 1 >= args.size()) return Usage();
      const std::string& policy = args[++i];
      if (policy == "evict-oldest") {
        server_options.repository_policy =
            dtdevolve::server::RepositoryQuotaPolicy::kEvictOldest;
      } else if (policy == "reject-new") {
        server_options.repository_policy =
            dtdevolve::server::RepositoryQuotaPolicy::kRejectNew;
      } else {
        return Usage();
      }
      continue;
    }
    if (args[i] == "--tenants") {
      if (i + 1 >= args.size() ||
          !ParseTenantsFlag(args[i + 1], &server_options.tenants)) {
        return Usage();
      }
      ++i;
      continue;
    }
    if (args[i] == "--tenant-config") {
      if (i + 1 >= args.size()) return Usage();
      StatusOr<std::string> config = ReadFile(args[++i]);
      if (!config.ok()) {
        std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
        return 1;
      }
      if (!ParseTenantConfig(*config, &tenant_seeds)) {
        std::fprintf(stderr, "dtdevolve serve: empty tenant config\n");
        return 1;
      }
      continue;
    }
    if (IsFlag(args[i])) return UnknownFlag(args[i]);
    dtd_files.push_back(args[i]);
  }
  if (dtd_files.empty() && tenant_seeds.empty()) return Usage();

  // Shards exist from construction on, so the tenant set — flags plus
  // every tenant the config file names — must be final here.
  for (const TenantSeed& seed : tenant_seeds) {
    bool known = false;
    for (const std::string& tenant : server_options.tenants) {
      known = known || tenant == seed.tenant;
    }
    if (!known) server_options.tenants.push_back(seed.tenant);
    if (seed.has_quota) server_options.tenant_quotas[seed.tenant] = seed.quota;
  }

  dtdevolve::server::IngestServer server(source_options, server_options);
  // Positional DTD files seed every shard; config entries one shard.
  for (const std::string& file : dtd_files) {
    StatusOr<std::string> text = ReadFile(file);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    Status added = server.AddDtdText(DtdNameFromPath(file), *text);
    if (!added.ok()) {
      std::fprintf(stderr, "%s: %s\n", file.c_str(),
                   added.ToString().c_str());
      return 1;
    }
  }
  for (const TenantSeed& seed : tenant_seeds) {
    for (const std::string& file : seed.dtd_files) {
      StatusOr<std::string> text = ReadFile(file);
      if (!text.ok()) {
        std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
        return 1;
      }
      Status added = server.AddTenantDtdText(seed.tenant,
                                             DtdNameFromPath(file), *text);
      if (!added.ok()) {
        std::fprintf(stderr, "%s (tenant %s): %s\n", file.c_str(),
                     seed.tenant.c_str(), added.ToString().c_str());
        return 1;
      }
    }
  }

  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }
  for (const std::string& warning : server.boot_warnings()) {
    std::fprintf(stderr, "dtdevolve serve: warning: %s\n", warning.c_str());
  }
  if (!server_options.wal_dir.empty()) {
    for (const std::string& tenant : server.manager().TenantNames()) {
      const dtdevolve::store::RecoveryReport& recovery =
          server.recovery_report(tenant);
      std::fprintf(stderr,
                   "dtdevolve serve: %s%srecovered checkpoint lsn %llu, "
                   "replayed %zu WAL record(s)\n",
                   server.manager().single_default() ? "" : tenant.c_str(),
                   server.manager().single_default() ? "" : ": ",
                   static_cast<unsigned long long>(recovery.checkpoint_lsn),
                   recovery.replayed_records);
    }
  }

  g_server = &server;
  struct sigaction action = {};
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  std::fprintf(stderr,
               "dtdevolve serve: listening on port %u (%zu tenant(s), "
               "%zu shared dtd(s))\n",
               static_cast<unsigned>(server.port()),
               server.manager().TenantNames().size(), dtd_files.size());
  server.Wait();
  g_server = nullptr;
  std::fprintf(stderr, "dtdevolve serve: drained and stopped\n");
  return 0;
}

/// The differential correctness oracle (src/check): replays seeded drift
/// scenarios through the full pipeline and checks the evolution
/// invariants after every step. On failure the first failing scenario is
/// shrunk to the shortest document prefix that still fails and a replay
/// command line is printed.
int CmdCheck(std::vector<std::string> args) {
  dtdevolve::check::OracleOptions options;
  dtdevolve::check::CrashOracleOptions crash_options;
  dtdevolve::check::InductionOracleOptions induction_options;
  dtdevolve::check::ReplicationOracleOptions replication_options;
  dtdevolve::check::OverloadOracleOptions overload_options;
  dtdevolve::check::ParsePathOracleOptions parse_path_options;
  bool crash_recovery = false;
  bool induction = false;
  bool replication = false;
  bool overload = false;
  bool parse_path = false;
  bool minimize = true;
  for (size_t i = 0; i < args.size(); ++i) {
    bool bad_value = false;
    auto long_value = [&](const char* name, long min, long* out) {
      if (args[i] != name) return false;
      if (i + 1 >= args.size() || !ParseLong(args[i + 1], out) || *out < min) {
        bad_value = true;
        return true;
      }
      ++i;
      return true;
    };
    long value = 0;
    if (long_value("--scenarios", 1, &value)) {
      if (bad_value) return Usage();
      options.scenarios = static_cast<uint64_t>(value);
      crash_options.scenarios = static_cast<uint64_t>(value);
      induction_options.scenarios = static_cast<uint64_t>(value);
      replication_options.scenarios = static_cast<uint64_t>(value);
      overload_options.scenarios = static_cast<uint64_t>(value);
      parse_path_options.scenarios = static_cast<uint64_t>(value);
      continue;
    }
    if (long_value("--seed", 0, &value)) {
      if (bad_value) return Usage();
      options.seed = static_cast<uint64_t>(value);
      crash_options.seed = static_cast<uint64_t>(value);
      induction_options.seed = static_cast<uint64_t>(value);
      replication_options.seed = static_cast<uint64_t>(value);
      overload_options.seed = static_cast<uint64_t>(value);
      parse_path_options.seed = static_cast<uint64_t>(value);
      continue;
    }
    if (long_value("--max-documents", 0, &value)) {
      if (bad_value) return Usage();
      options.max_documents = static_cast<uint64_t>(value);
      crash_options.max_documents = static_cast<uint64_t>(value);
      induction_options.max_documents = static_cast<uint64_t>(value);
      replication_options.max_documents = static_cast<uint64_t>(value);
      overload_options.max_documents = static_cast<uint64_t>(value);
      parse_path_options.max_documents = static_cast<uint64_t>(value);
      continue;
    }
    if (long_value("--max-failures", 1, &value)) {
      if (bad_value) return Usage();
      options.max_failures = static_cast<uint64_t>(value);
      crash_options.max_failures = static_cast<uint64_t>(value);
      induction_options.max_failures = static_cast<uint64_t>(value);
      replication_options.max_failures = static_cast<uint64_t>(value);
      overload_options.max_failures = static_cast<uint64_t>(value);
      parse_path_options.max_failures = static_cast<uint64_t>(value);
      continue;
    }
    if (long_value("--crash-points", 0, &value)) {
      if (bad_value) return Usage();
      crash_options.max_crash_points = static_cast<uint64_t>(value);
      continue;
    }
    if (long_value("--checkpoint-every", 0, &value)) {
      if (bad_value) return Usage();
      crash_options.checkpoint_every = static_cast<uint64_t>(value);
      replication_options.checkpoint_every = static_cast<uint64_t>(value);
      continue;
    }
    if (args[i] == "--crash-recovery") {
      crash_recovery = true;
      continue;
    }
    if (args[i] == "--replication") {
      replication = true;
      continue;
    }
    if (args[i] == "--overload") {
      overload = true;
      continue;
    }
    if (args[i] == "--parse-path") {
      parse_path = true;
      continue;
    }
    if (args[i] == "--induction") {
      induction = true;
      continue;
    }
    if (args[i] == "--no-persistence") {
      options.check_persistence = false;
      continue;
    }
    if (args[i] == "--no-minimize") {
      minimize = false;
      continue;
    }
    if (IsFlag(args[i])) return UnknownFlag(args[i]);
    return Usage();  // check takes no positional arguments
  }

  if (parse_path) {
    // Streaming-vs-DOM parse-path equivalence, including sampled
    // crash-recovery scenarios (WAL replay must hit the same code path).
    dtdevolve::check::ParsePathOracleReport parse_path_report =
        dtdevolve::check::RunParsePathOracle(parse_path_options);
    std::printf(
        "%s",
        dtdevolve::check::FormatParsePathReport(parse_path_report).c_str());
    return parse_path_report.ok() ? 0 : 2;
  }

  if (overload) {
    // Hostile-load scenarios against a live in-process server: floods,
    // oversized bodies, connection churn, injected WAL faults, and
    // repository-quota eviction with crash recovery.
    dtdevolve::check::OverloadOracleReport overload_report =
        dtdevolve::check::RunOverloadOracle(overload_options);
    std::printf(
        "%s", dtdevolve::check::FormatOverloadReport(overload_report).c_str());
    return overload_report.ok() ? 0 : 2;
  }

  if (replication) {
    // Replication scenarios mix induction in by default (alternating
    // seeds), so the streamed WAL covers the induce-accept record type;
    // --induction here narrows nothing, it is already the default.
    dtdevolve::check::ReplicationOracleReport replication_report =
        dtdevolve::check::RunReplicationOracle(replication_options);
    std::printf(
        "%s",
        dtdevolve::check::FormatReplicationReport(replication_report).c_str());
    return replication_report.ok() ? 0 : 2;
  }

  if (crash_recovery) {
    // --induction switches the sweep to induction scenarios, covering
    // the induce-accept WAL record type.
    crash_options.induction = induction;
    dtdevolve::check::CrashOracleReport crash_report =
        dtdevolve::check::RunCrashOracle(crash_options);
    std::printf("%s",
                dtdevolve::check::FormatCrashReport(crash_report).c_str());
    return crash_report.ok() ? 0 : 2;
  }

  if (induction) {
    dtdevolve::check::InductionOracleReport induction_report =
        dtdevolve::check::RunInductionOracle(induction_options);
    std::printf(
        "%s",
        dtdevolve::check::FormatInductionReport(induction_report).c_str());
    return induction_report.ok() ? 0 : 2;
  }

  dtdevolve::check::OracleReport report = dtdevolve::check::RunOracle(options);
  std::printf("%s", dtdevolve::check::FormatReport(report).c_str());
  if (report.ok()) return 0;

  if (minimize) {
    const dtdevolve::check::ScenarioResult& first = report.failures.front();
    dtdevolve::check::ScenarioResult shrunk =
        dtdevolve::check::MinimizeFailure(first.seed, options);
    std::printf("minimized %s", dtdevolve::check::FormatScenario(shrunk).c_str());
    std::printf(
        "  replay: dtdevolve check --seed %llu --scenarios 1 "
        "--max-documents %llu\n",
        static_cast<unsigned long long>(shrunk.seed),
        static_cast<unsigned long long>(shrunk.documents));
  }
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (command == "validate") return CmdValidate(args);
  if (command == "similarity") return CmdSimilarity(args);
  if (command == "infer") return CmdInfer(std::move(args));
  if (command == "evolve") return CmdEvolve(std::move(args));
  if (command == "adapt") return CmdAdapt(args);
  if (command == "induce") return CmdInduce(std::move(args));
  if (command == "xsd") return CmdXsd(args);
  if (command == "diff") return CmdDiff(args);
  if (command == "serve") return CmdServe(std::move(args));
  if (command == "check") return CmdCheck(std::move(args));
  return Usage();
}
