#!/usr/bin/env bash
# Line-coverage report over src/: builds with gcov instrumentation
# (DTDEVOLVE_COVERAGE=ON via the `coverage` preset), runs the test suite,
# and aggregates per-file line coverage with plain gcov — no lcov/gcovr
# dependency. Extra arguments are forwarded to ctest (e.g. -L oracle).
#
#   tools/coverage.sh                # full suite
#   tools/coverage.sh -L oracle      # coverage of the oracle label only

set -euo pipefail

SRC=$(cd "$(dirname "$0")/.." && pwd)
JOBS=${JOBS:-$(nproc)}
BUILD="$SRC/build-cov"

cd "$SRC"
cmake --preset coverage
cmake --build --preset coverage -j "$JOBS"
# Stale counters from earlier runs would double-count.
find "$BUILD" -name '*.gcda' -delete
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS" "$@"

cd "$BUILD"
# `gcov -n` prints "File '<name>' / Lines executed:P% of N" summaries
# without dropping .gcov files; keep entries for sources under src/.
# POSIX awk only — no gawk extensions (this box ships mawk).
rows=$(find src -name '*.gcda' -print0 | xargs -0 -r gcov -n 2>/dev/null |
  awk -v q="'" -v src_prefix="$SRC/src/" '
    /^File / {
      file = $2
      gsub(q, "", file)
      keep = index(file, "src/") > 0
      # Normalize absolute paths to repo-relative ones.
      sub(src_prefix, "src/", file)
    }
    /^Lines executed:/ && keep {
      s = $0
      sub(/^Lines executed:/, "", s)
      split(s, parts, /% of /)
      pct[file] = parts[1] + 0
      lines[file] = parts[2] + 0
      keep = 0
    }
    END {
      for (f in pct) printf "%.2f %d %s\n", pct[f], lines[f], f
    }')

printf '%s\n' "$rows" | sort -k3 |
  awk 'NF == 3 { printf "%7.2f%%  %6d  %s\n", $1, $2, $3 }'
printf '%s\n' "$rows" | awk '
  NF == 3 { total += $2; covered += $1 * $2 / 100 }
  END {
    if (total > 0) printf "%7.2f%%  %6d  TOTAL\n", 100 * covered / total, total
  }'
