// Experiment E8: which heuristic policies fire under which drift mix, and
// the OR ablation (§5 contrast with approaches that cannot generate OR).
// Counters per drift mix: p1..p13 firing counts, and for the ablation the
// post-evolution validity with and without OR policies.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "xml/parser.h"

namespace dtdevolve {
namespace {

enum DriftMix : int64_t {
  kNewElements = 0,   // documents gain consistent new elements
  kAlternatives = 1,  // mutually exclusive element pairs
  kRepetition = 2,    // grouped repetition
  kChaos = 3,         // everything at once
};

std::vector<xml::Document> MakeMix(int64_t mix) {
  std::vector<xml::Document> docs;
  auto doc = [&](const char* text) {
    auto parsed = xml::ParseDocument(text);
    docs.push_back(std::move(*parsed));
  };
  switch (mix) {
    case kNewElements:
      for (int i = 0; i < 20; ++i) {
        doc("<mail><from>a</from><to>b</to><cc>c</cc><body>x</body>"
            "<signature>s</signature></mail>");
      }
      break;
    case kAlternatives:
      for (int i = 0; i < 10; ++i) {
        doc("<mail><from>a</from><to>b</to><body>x</body></mail>");
        doc("<mail><from>a</from><list>l</list><body>x</body></mail>");
      }
      break;
    case kRepetition:
      for (int i = 0; i < 20; ++i) {
        doc("<mail><from>a</from><to>b</to><part>1</part><note>n</note>"
            "<part>2</part><note>m</note><body>x</body></mail>");
      }
      break;
    case kChaos:
    default:
      for (int i = 0; i < 7; ++i) {
        doc("<mail><from>a</from><to>b</to><cc>c</cc><cc>d</cc>"
            "<body>x</body></mail>");
        doc("<mail><from>a</from><list>l</list><body>x</body>"
            "<signature>s</signature></mail>");
        doc("<mail><from>a</from><to>b</to><to>c</to><priority>1"
            "</priority></mail>");
      }
      break;
  }
  return docs;
}

void RunMix(benchmark::State& state, bool enable_or) {
  std::vector<xml::Document> docs = MakeMix(state.range(0));
  std::map<int, size_t> fired;
  double valid = 0.0;
  for (auto _ : state) {
    evolve::ExtendedDtd ext(bench::MailDtd());
    evolve::Recorder recorder(ext);
    for (const auto& doc : docs) recorder.RecordDocument(doc);
    evolve::EvolutionOptions options;
    options.enable_or_policies = enable_or;
    evolve::EvolutionResult result = evolve::EvolveDtd(ext, options);
    fired.clear();
    for (const auto& element : result.elements) {
      for (const auto& trace : element.trace) ++fired[trace.policy];
    }
    valid = bench::ValidFraction(ext.dtd(), docs);
  }
  for (const auto& [policy, count] : fired) {
    state.counters["p" + std::to_string(policy)] =
        static_cast<double>(count);
  }
  state.counters["valid_pct"] = 100.0 * valid;
}

void BM_PolicyDistribution(benchmark::State& state) {
  RunMix(state, /*enable_or=*/true);
}
BENCHMARK(BM_PolicyDistribution)
    ->Arg(kNewElements)
    ->Arg(kAlternatives)
    ->Arg(kRepetition)
    ->Arg(kChaos)
    ->Unit(benchmark::kMicrosecond);

void BM_PolicyDistribution_NoOr(benchmark::State& state) {
  RunMix(state, /*enable_or=*/false);
}
BENCHMARK(BM_PolicyDistribution_NoOr)
    ->Arg(kAlternatives)
    ->Arg(kChaos)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
