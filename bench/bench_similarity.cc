// Experiment F2/perf: cost of the structural-similarity evaluation
// (the classification primitive) against document size, compared with
// boolean validation; plus the per-element local/global evaluation used
// by analysis. Counter `similarity` reports the measured value.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_json.h"
#include "bench_util.h"

namespace dtdevolve {
namespace {

/// A DTD whose documents scale with the repetition argument.
dtd::Dtd WideDtd() {
  auto dtd = dtd::ParseDtd(R"(
    <!ELEMENT log (entry*)>
    <!ELEMENT entry (time, level?, message, tag*)>
    <!ELEMENT time (#PCDATA)>
    <!ELEMENT level (#PCDATA)>
    <!ELEMENT message (#PCDATA)>
    <!ELEMENT tag (#PCDATA)>
  )");
  return std::move(*dtd);
}

xml::Document DocWithEntries(size_t entries, double drift) {
  dtd::Dtd dtd = WideDtd();
  workload::GeneratorOptions options;
  options.max_repeat = 2;
  workload::DocumentGenerator generator(dtd, options, 42);
  xml::Document doc;
  doc.set_root(std::make_unique<xml::Element>("log"));
  for (size_t i = 0; i < entries; ++i) {
    doc.root().AddChild(generator.GenerateElement("entry"));
  }
  if (drift > 0) {
    workload::MutationOptions mutation;
    mutation.insert_probability = drift;
    mutation.drop_probability = drift;
    workload::Mutator mutator(mutation, 7);
    mutator.Mutate(doc);
  }
  return doc;
}

void BM_GlobalSimilarity_ValidDoc(benchmark::State& state) {
  dtd::Dtd dtd = WideDtd();
  xml::Document doc = DocWithEntries(state.range(0), 0.0);
  similarity::SimilarityEvaluator evaluator(dtd);
  double last = 0.0;
  for (auto _ : state) {
    last = evaluator.DocumentSimilarity(doc);
    benchmark::DoNotOptimize(last);
  }
  state.counters["similarity"] = last;
  state.counters["elements"] =
      static_cast<double>(doc.root().SubtreeElementCount());
}
BENCHMARK(BM_GlobalSimilarity_ValidDoc)->Arg(10)->Arg(100)->Arg(1000);

void BM_GlobalSimilarity_DriftedDoc(benchmark::State& state) {
  dtd::Dtd dtd = WideDtd();
  xml::Document doc = DocWithEntries(state.range(0), 0.3);
  similarity::SimilarityEvaluator evaluator(dtd);
  double last = 0.0;
  for (auto _ : state) {
    last = evaluator.DocumentSimilarity(doc);
    benchmark::DoNotOptimize(last);
  }
  state.counters["similarity"] = last;
}
BENCHMARK(BM_GlobalSimilarity_DriftedDoc)->Arg(10)->Arg(100)->Arg(1000);

void BM_BooleanValidation(benchmark::State& state) {
  dtd::Dtd dtd = WideDtd();
  xml::Document doc = DocWithEntries(state.range(0), 0.0);
  validate::Validator validator(dtd);
  for (auto _ : state) {
    auto result = validator.Validate(doc);
    benchmark::DoNotOptimize(result.valid);
  }
}
BENCHMARK(BM_BooleanValidation)->Arg(10)->Arg(100)->Arg(1000);

void BM_PerElementReports(benchmark::State& state) {
  dtd::Dtd dtd = WideDtd();
  xml::Document doc = DocWithEntries(state.range(0), 0.3);
  similarity::SimilarityEvaluator evaluator(dtd);
  for (auto _ : state) {
    auto reports = evaluator.EvaluateElements(doc.root());
    benchmark::DoNotOptimize(reports.size());
  }
}
BENCHMARK(BM_PerElementReports)->Arg(10)->Arg(100);

// --- `--json` headline: per-document similarity throughput -------------------
//
// Fixed-seed drifted corpus against the mail DTD; one line of JSON
// (schema in TESTING.md) with docs/sec and per-evaluation latency
// percentiles for the interned id-based evaluation path.

int RunHeadline(const std::string& out) {
  dtd::Dtd dtd = bench::MailDtd();
  const std::vector<xml::Document> docs =
      bench::DriftedDocs(dtd, 400, 0.25, 17);
  similarity::SimilarityEvaluator evaluator(dtd);
  constexpr size_t kRounds = 10;

  std::vector<double> latencies_ms;
  latencies_ms.reserve(docs.size() * kRounds);
  double checksum = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < kRounds; ++r) {
    for (const xml::Document& doc : docs) {
      const auto t0 = std::chrono::steady_clock::now();
      checksum += evaluator.DocumentSimilarity(doc);
      latencies_ms.push_back(std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count());
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  bench::JsonObject json;
  json.Add("benchmark", std::string("similarity_throughput"))
      .Add("docs", docs.size())
      .Add("rounds", static_cast<uint64_t>(kRounds))
      .Add("seconds", seconds)
      .Add("docs_per_second",
           seconds > 0
               ? static_cast<double>(latencies_ms.size()) / seconds
               : 0.0)
      .Add("p50_ms", bench::PercentileSorted(latencies_ms, 0.50))
      .Add("p99_ms", bench::PercentileSorted(latencies_ms, 0.99))
      .Add("mean_similarity",
           checksum / static_cast<double>(latencies_ms.size()));
  return json.Emit(out) ? 0 : 1;
}

}  // namespace
}  // namespace dtdevolve

int main(int argc, char** argv) {
  std::string out;
  if (dtdevolve::bench::ParseJsonFlag(argc, argv, "BENCH_similarity.json",
                                      &out)) {
    return dtdevolve::RunHeadline(out);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
