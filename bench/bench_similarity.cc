// Experiment F2/perf: cost of the structural-similarity evaluation
// (the classification primitive) against document size, compared with
// boolean validation; plus the per-element local/global evaluation used
// by analysis. Counter `similarity` reports the measured value.

#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace dtdevolve {
namespace {

/// A DTD whose documents scale with the repetition argument.
dtd::Dtd WideDtd() {
  auto dtd = dtd::ParseDtd(R"(
    <!ELEMENT log (entry*)>
    <!ELEMENT entry (time, level?, message, tag*)>
    <!ELEMENT time (#PCDATA)>
    <!ELEMENT level (#PCDATA)>
    <!ELEMENT message (#PCDATA)>
    <!ELEMENT tag (#PCDATA)>
  )");
  return std::move(*dtd);
}

xml::Document DocWithEntries(size_t entries, double drift) {
  dtd::Dtd dtd = WideDtd();
  workload::GeneratorOptions options;
  options.max_repeat = 2;
  workload::DocumentGenerator generator(dtd, options, 42);
  xml::Document doc;
  doc.set_root(std::make_unique<xml::Element>("log"));
  for (size_t i = 0; i < entries; ++i) {
    doc.root().AddChild(generator.GenerateElement("entry"));
  }
  if (drift > 0) {
    workload::MutationOptions mutation;
    mutation.insert_probability = drift;
    mutation.drop_probability = drift;
    workload::Mutator mutator(mutation, 7);
    mutator.Mutate(doc);
  }
  return doc;
}

void BM_GlobalSimilarity_ValidDoc(benchmark::State& state) {
  dtd::Dtd dtd = WideDtd();
  xml::Document doc = DocWithEntries(state.range(0), 0.0);
  similarity::SimilarityEvaluator evaluator(dtd);
  double last = 0.0;
  for (auto _ : state) {
    last = evaluator.DocumentSimilarity(doc);
    benchmark::DoNotOptimize(last);
  }
  state.counters["similarity"] = last;
  state.counters["elements"] =
      static_cast<double>(doc.root().SubtreeElementCount());
}
BENCHMARK(BM_GlobalSimilarity_ValidDoc)->Arg(10)->Arg(100)->Arg(1000);

void BM_GlobalSimilarity_DriftedDoc(benchmark::State& state) {
  dtd::Dtd dtd = WideDtd();
  xml::Document doc = DocWithEntries(state.range(0), 0.3);
  similarity::SimilarityEvaluator evaluator(dtd);
  double last = 0.0;
  for (auto _ : state) {
    last = evaluator.DocumentSimilarity(doc);
    benchmark::DoNotOptimize(last);
  }
  state.counters["similarity"] = last;
}
BENCHMARK(BM_GlobalSimilarity_DriftedDoc)->Arg(10)->Arg(100)->Arg(1000);

void BM_BooleanValidation(benchmark::State& state) {
  dtd::Dtd dtd = WideDtd();
  xml::Document doc = DocWithEntries(state.range(0), 0.0);
  validate::Validator validator(dtd);
  for (auto _ : state) {
    auto result = validator.Validate(doc);
    benchmark::DoNotOptimize(result.valid);
  }
}
BENCHMARK(BM_BooleanValidation)->Arg(10)->Arg(100)->Arg(1000);

void BM_PerElementReports(benchmark::State& state) {
  dtd::Dtd dtd = WideDtd();
  xml::Document doc = DocWithEntries(state.range(0), 0.3);
  similarity::SimilarityEvaluator evaluator(dtd);
  for (auto _ : state) {
    auto reports = evaluator.EvaluateElements(doc.root());
    benchmark::DoNotOptimize(reports.size());
  }
}
BENCHMARK(BM_PerElementReports)->Arg(10)->Arg(100);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
