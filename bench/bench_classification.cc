// Experiments E2 and E10: classification outcome as σ sweeps, and the
// information loss of validator-only (boolean) classification.
//
// Series reported via counters, per σ·100 argument:
//   classified_pct — documents whose best similarity reached σ,
//   validator_pct  — documents a rigid validator would accept (E10),
//   correct_pct    — multi-DTD routing accuracy (best DTD = true origin).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "classify/classifier.h"
#include "workload/scenarios.h"

namespace dtdevolve {
namespace {

struct Corpus {
  std::vector<xml::Document> docs;
  std::vector<std::string> origin;  // true scenario per document
  dtd::Dtd bib, catalog, news, forum;
};

const Corpus& SharedCorpus() {
  static const Corpus* corpus = [] {
    auto* c = new Corpus;
    std::vector<workload::ScenarioStream> scenarios =
        workload::MakeAllScenarios(3, 60);
    c->bib = scenarios[0].InitialDtd();
    c->catalog = scenarios[1].InitialDtd();
    c->news = scenarios[2].InitialDtd();
    c->forum = scenarios[3].InitialDtd();
    for (workload::ScenarioStream& scenario : scenarios) {
      while (!scenario.Done()) {
        c->docs.push_back(scenario.Next());
        c->origin.push_back(scenario.name());
      }
    }
    return c;
  }();
  return *corpus;
}

void BM_SigmaSweep(benchmark::State& state) {
  const Corpus& corpus = SharedCorpus();
  const double sigma = static_cast<double>(state.range(0)) / 100.0;

  classify::Classifier classifier(sigma);
  classifier.AddDtd("bibliography", &corpus.bib);
  classifier.AddDtd("catalog", &corpus.catalog);
  classifier.AddDtd("news", &corpus.news);
  classifier.AddDtd("forum", &corpus.forum);

  validate::Validator bib_validator(corpus.bib);
  validate::Validator catalog_validator(corpus.catalog);
  validate::Validator news_validator(corpus.news);
  validate::Validator forum_validator(corpus.forum);

  size_t classified = 0, correct = 0, validator_ok = 0;
  for (auto _ : state) {
    classified = correct = validator_ok = 0;
    for (size_t i = 0; i < corpus.docs.size(); ++i) {
      classify::ClassificationOutcome outcome =
          classifier.Classify(corpus.docs[i]);
      if (outcome.classified) {
        ++classified;
        if (outcome.dtd_name == corpus.origin[i]) ++correct;
      }
      if (bib_validator.Validate(corpus.docs[i]).valid ||
          catalog_validator.Validate(corpus.docs[i]).valid ||
          news_validator.Validate(corpus.docs[i]).valid ||
          forum_validator.Validate(corpus.docs[i]).valid) {
        ++validator_ok;
      }
    }
    benchmark::DoNotOptimize(classified);
  }
  const double n = static_cast<double>(corpus.docs.size());
  state.counters["classified_pct"] = 100.0 * classified / n;
  state.counters["repository_pct"] = 100.0 * (n - classified) / n;
  state.counters["validator_pct"] = 100.0 * validator_ok / n;
  state.counters["correct_pct"] =
      classified == 0 ? 0.0 : 100.0 * correct / static_cast<double>(classified);
}
BENCHMARK(BM_SigmaSweep)
    ->Arg(10)
    ->Arg(30)
    ->Arg(50)
    ->Arg(70)
    ->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_ClassifyOneDocument(benchmark::State& state) {
  const Corpus& corpus = SharedCorpus();
  classify::Classifier classifier(0.5);
  classifier.AddDtd("bibliography", &corpus.bib);
  classifier.AddDtd("catalog", &corpus.catalog);
  classifier.AddDtd("news", &corpus.news);
  classifier.AddDtd("forum", &corpus.forum);
  size_t i = 0;
  for (auto _ : state) {
    auto outcome = classifier.Classify(corpus.docs[i % corpus.docs.size()]);
    benchmark::DoNotOptimize(outcome.similarity);
    ++i;
  }
}
BENCHMARK(BM_ClassifyOneDocument);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
