// Experiments E2 and E10: classification outcome as σ sweeps, and the
// information loss of validator-only (boolean) classification.
//
// Series reported via counters, per σ·100 argument:
//   classified_pct — documents whose best similarity reached σ,
//   validator_pct  — documents a rigid validator would accept (E10),
//   correct_pct    — multi-DTD routing accuracy (best DTD = true origin).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_json.h"
#include "bench_util.h"
#include "classify/classification_memo.h"
#include "classify/classifier.h"
#include "core/source.h"
#include "workload/scenarios.h"
#include "xml/stream_reader.h"

namespace dtdevolve {
namespace {

struct Corpus {
  std::vector<xml::Document> docs;
  std::vector<std::string> origin;  // true scenario per document
  dtd::Dtd bib, catalog, news, forum;
};

const Corpus& SharedCorpus() {
  static const Corpus* corpus = [] {
    auto* c = new Corpus;
    std::vector<workload::ScenarioStream> scenarios =
        workload::MakeAllScenarios(3, 60);
    c->bib = scenarios[0].InitialDtd();
    c->catalog = scenarios[1].InitialDtd();
    c->news = scenarios[2].InitialDtd();
    c->forum = scenarios[3].InitialDtd();
    for (workload::ScenarioStream& scenario : scenarios) {
      while (!scenario.Done()) {
        c->docs.push_back(scenario.Next());
        c->origin.push_back(scenario.name());
      }
    }
    return c;
  }();
  return *corpus;
}

void BM_SigmaSweep(benchmark::State& state) {
  const Corpus& corpus = SharedCorpus();
  const double sigma = static_cast<double>(state.range(0)) / 100.0;

  classify::Classifier classifier(sigma);
  classifier.AddDtd("bibliography", &corpus.bib);
  classifier.AddDtd("catalog", &corpus.catalog);
  classifier.AddDtd("news", &corpus.news);
  classifier.AddDtd("forum", &corpus.forum);

  validate::Validator bib_validator(corpus.bib);
  validate::Validator catalog_validator(corpus.catalog);
  validate::Validator news_validator(corpus.news);
  validate::Validator forum_validator(corpus.forum);

  size_t classified = 0, correct = 0, validator_ok = 0;
  for (auto _ : state) {
    classified = correct = validator_ok = 0;
    for (size_t i = 0; i < corpus.docs.size(); ++i) {
      classify::ClassificationOutcome outcome =
          classifier.Classify(corpus.docs[i]);
      if (outcome.classified) {
        ++classified;
        if (outcome.dtd_name == corpus.origin[i]) ++correct;
      }
      if (bib_validator.Validate(corpus.docs[i]).valid ||
          catalog_validator.Validate(corpus.docs[i]).valid ||
          news_validator.Validate(corpus.docs[i]).valid ||
          forum_validator.Validate(corpus.docs[i]).valid) {
        ++validator_ok;
      }
    }
    benchmark::DoNotOptimize(classified);
  }
  const double n = static_cast<double>(corpus.docs.size());
  state.counters["classified_pct"] = 100.0 * classified / n;
  state.counters["repository_pct"] = 100.0 * (n - classified) / n;
  state.counters["validator_pct"] = 100.0 * validator_ok / n;
  state.counters["correct_pct"] =
      classified == 0 ? 0.0 : 100.0 * correct / static_cast<double>(classified);
}
BENCHMARK(BM_SigmaSweep)
    ->Arg(10)
    ->Arg(30)
    ->Arg(50)
    ->Arg(70)
    ->Arg(90)
    ->Unit(benchmark::kMillisecond);

void BM_ClassifyOneDocument(benchmark::State& state) {
  const Corpus& corpus = SharedCorpus();
  classify::Classifier classifier(0.5);
  classifier.AddDtd("bibliography", &corpus.bib);
  classifier.AddDtd("catalog", &corpus.catalog);
  classifier.AddDtd("news", &corpus.news);
  classifier.AddDtd("forum", &corpus.forum);
  size_t i = 0;
  for (auto _ : state) {
    auto outcome = classifier.Classify(corpus.docs[i % corpus.docs.size()]);
    benchmark::DoNotOptimize(outcome.similarity);
    ++i;
  }
}
BENCHMARK(BM_ClassifyOneDocument);

// --- `--json` headline: fast path vs disabled fast path ----------------------
//
// The acceptance workload of the fast-path PR: ≥ 8 DTDs, repeated
// document structure, fixed seed. The same corpus is classified twice —
// once with pruning + shared cache disabled (the pre-fast-path
// behaviour), once with defaults — outcomes are checked identical, and
// BENCH_classification.json records throughput, latency percentiles,
// cache hit rate and pruned fraction (schema in TESTING.md).

struct HeadlineCorpus {
  std::vector<xml::Document> docs;
  std::vector<dtd::Dtd> dtds;
  std::vector<std::string> names;
};

dtd::Dtd ParseOrDie(const char* text) {
  auto dtd = dtd::ParseDtd(text);
  if (!dtd.ok()) std::abort();
  return std::move(*dtd);
}

HeadlineCorpus MakeHeadlineCorpus() {
  HeadlineCorpus corpus;
  // Four drifting scenarios + four fixed schemas = 8 DTDs with distinct
  // roots, the multi-DTD routing setting of the paper (§2).
  std::vector<workload::ScenarioStream> scenarios =
      workload::MakeAllScenarios(3, 40);
  for (workload::ScenarioStream& scenario : scenarios) {
    corpus.names.push_back(scenario.name());
    corpus.dtds.push_back(scenario.InitialDtd());
    while (!scenario.Done()) corpus.docs.push_back(scenario.Next());
  }
  const char* extra[][2] = {
      {"mail", R"(
        <!ELEMENT mail (from, to+, subject?, body)>
        <!ELEMENT from (#PCDATA)> <!ELEMENT to (#PCDATA)>
        <!ELEMENT subject (#PCDATA)> <!ELEMENT body (#PCDATA)>
      )"},
      {"library", R"(
        <!ELEMENT library (book)*>
        <!ELEMENT book (title, author+, year?)>
        <!ELEMENT title (#PCDATA)> <!ELEMENT author (#PCDATA)>
        <!ELEMENT year (#PCDATA)>
      )"},
      {"recipe", R"(
        <!ELEMENT recipe (name, ingredient+, step+)>
        <!ELEMENT name (#PCDATA)> <!ELEMENT ingredient (#PCDATA)>
        <!ELEMENT step (#PCDATA)>
      )"},
      {"playlist", R"(
        <!ELEMENT playlist (track)*>
        <!ELEMENT track (artist, song, duration?)>
        <!ELEMENT artist (#PCDATA)> <!ELEMENT song (#PCDATA)>
        <!ELEMENT duration (#PCDATA)>
      )"},
  };
  for (const auto& [name, text] : extra) {
    corpus.names.push_back(name);
    corpus.dtds.push_back(ParseOrDie(text));
    // Repeated structure: many documents off the same schema, so subtree
    // shapes recur across the stream and the shared cache can carry them.
    std::vector<xml::Document> docs = bench::DriftedDocs(
        corpus.dtds.back(), 40, 0.15, 1000 + corpus.dtds.size());
    for (xml::Document& doc : docs) corpus.docs.push_back(std::move(doc));
  }
  return corpus;
}

/// Classifies the corpus `rounds` times; per-document wall times land in
/// `latencies_ms` when non-null. Returns total seconds.
double RunCorpus(const classify::Classifier& classifier,
                 const HeadlineCorpus& corpus, size_t rounds,
                 std::vector<classify::ClassificationOutcome>* outcomes,
                 std::vector<double>* latencies_ms) {
  const auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < corpus.docs.size(); ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      classify::ClassificationOutcome outcome =
          classifier.Classify(corpus.docs[i]);
      if (latencies_ms != nullptr) {
        latencies_ms->push_back(std::chrono::duration<double, std::milli>(
                                    std::chrono::steady_clock::now() - t0)
                                    .count());
      }
      if (outcomes != nullptr && r == 0) {
        outcomes->push_back(std::move(outcome));
      }
    }
  }
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// --- Parse-path ingest leg ---------------------------------------------------
//
// End-to-end ingest (parse → classify → record → check) over the
// repetitive-corpus workload: a stream of small documents whose shapes
// recur exactly — the steady-state feed the streaming path is built
// for. The DOM reference path (`streaming_parse` off, classification
// memo off) runs against the streaming default (single-pass arena
// parse; repeated root fingerprints replay the memoized outcome
// without materializing a DOM). Outcomes must match entry by entry
// across every round.

struct RepetitiveCorpus {
  std::vector<dtd::Dtd> dtds;
  std::vector<std::string> names;
  /// Distinct serialized document shapes, cycled by the runner.
  std::vector<std::string> texts;
};

RepetitiveCorpus MakeRepetitiveCorpus() {
  RepetitiveCorpus corpus;
  corpus.names = {"order", "mail", "track"};
  corpus.dtds.push_back(ParseOrDie(R"(
    <!ELEMENT order (id, item+, note?)>
    <!ELEMENT id (#PCDATA)> <!ELEMENT item (#PCDATA)>
    <!ELEMENT note (#PCDATA)>
  )"));
  corpus.dtds.push_back(ParseOrDie(R"(
    <!ELEMENT mail (from, to+, body)>
    <!ELEMENT from (#PCDATA)> <!ELEMENT to (#PCDATA)>
    <!ELEMENT body (#PCDATA)>
  )"));
  corpus.dtds.push_back(ParseOrDie(R"(
    <!ELEMENT track (artist, song, duration?)>
    <!ELEMENT artist (#PCDATA)> <!ELEMENT song (#PCDATA)>
    <!ELEMENT duration (#PCDATA)>
  )"));
  corpus.texts = {
      "<order><id>1</id><item>a</item></order>",
      "<order><id>2</id><item>a</item><item>b</item></order>",
      "<order><id>3</id><item>a</item><note>n</note></order>",
      "<mail><from>x</from><to>y</to><body>hi</body></mail>",
      "<mail><from>x</from><to>y</to><to>z</to><body>hi</body></mail>",
      "<track><artist>a</artist><song>s</song></track>",
      "<track><artist>a</artist><song>s</song><duration>3</duration></track>",
  };
  return corpus;
}

struct IngestRun {
  double seconds = 0;
  std::vector<core::XmlSource::ProcessOutcome> outcomes;
};

IngestRun RunIngest(const RepetitiveCorpus& corpus, size_t rounds,
                    const core::SourceOptions& options) {
  core::XmlSource src(options);
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    if (!src.AddDtd(corpus.names[i], corpus.dtds[i].Clone()).ok()) {
      std::abort();
    }
  }
  IngestRun run;
  run.outcomes.reserve(corpus.texts.size() * rounds);
  const auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < rounds; ++r) {
    for (const std::string& text : corpus.texts) {
      StatusOr<core::XmlSource::ProcessOutcome> outcome =
          src.ProcessText(text);
      if (!outcome.ok()) std::abort();
      run.outcomes.push_back(*outcome);
    }
  }
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
  return run;
}

int RunHeadline(const std::string& out) {
  HeadlineCorpus corpus = MakeHeadlineCorpus();
  constexpr size_t kRounds = 10;

  classify::ClassifierOptions slow_options;
  slow_options.enable_pruning = false;
  slow_options.enable_score_cache = false;
  classify::Classifier slow(0.5, {}, slow_options);
  classify::Classifier fast(0.5);  // fast-path defaults
  for (size_t i = 0; i < corpus.dtds.size(); ++i) {
    slow.AddDtd(corpus.names[i], &corpus.dtds[i]);
    fast.AddDtd(corpus.names[i], &corpus.dtds[i]);
  }

  std::vector<classify::ClassificationOutcome> slow_outcomes, fast_outcomes;
  const double slow_seconds =
      RunCorpus(slow, corpus, kRounds, &slow_outcomes, nullptr);
  std::vector<double> latencies_ms;
  const double fast_seconds =
      RunCorpus(fast, corpus, kRounds, &fast_outcomes, &latencies_ms);

  // Score equivalence: the fast path must classify every document
  // identically (scores may differ only in pruned markers).
  size_t mismatches = 0;
  uint64_t pruned = 0, evaluated = 0;
  for (size_t i = 0; i < fast_outcomes.size(); ++i) {
    if (fast_outcomes[i].classified != slow_outcomes[i].classified ||
        fast_outcomes[i].dtd_name != slow_outcomes[i].dtd_name ||
        fast_outcomes[i].similarity != slow_outcomes[i].similarity) {
      ++mismatches;
    }
    for (const classify::ScoreEntry& entry : fast_outcomes[i].scores) {
      entry.pruned ? ++pruned : ++evaluated;
    }
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double n =
      static_cast<double>(corpus.docs.size()) * static_cast<double>(kRounds);
  const similarity::SubtreeScoreCache::Stats cache_stats =
      fast.score_cache() != nullptr ? fast.score_cache()->GetStats()
                                    : similarity::SubtreeScoreCache::Stats();

  bench::JsonObject json;
  json.Add("benchmark", std::string("classification_fast_path"))
      .Add("dtds", corpus.dtds.size())
      .Add("docs", corpus.docs.size())
      .Add("rounds", static_cast<uint64_t>(kRounds))
      .Add("baseline_seconds", slow_seconds)
      .Add("fast_seconds", fast_seconds)
      .Add("baseline_docs_per_second",
           slow_seconds > 0 ? n / slow_seconds : 0.0)
      .Add("docs_per_second", fast_seconds > 0 ? n / fast_seconds : 0.0)
      .Add("speedup", fast_seconds > 0 ? slow_seconds / fast_seconds : 0.0)
      .Add("p50_ms", bench::PercentileSorted(latencies_ms, 0.50))
      .Add("p99_ms", bench::PercentileSorted(latencies_ms, 0.99))
      .Add("cache_hit_rate", cache_stats.HitRate())
      .Add("cache_evictions", cache_stats.evictions)
      .Add("pruned_fraction",
           pruned + evaluated > 0
               ? static_cast<double>(pruned) /
                     static_cast<double>(pruned + evaluated)
               : 0.0)
      .Add("outcome_mismatches", static_cast<uint64_t>(mismatches));

  // Parse-path ingest leg: DOM reference vs streaming default over the
  // repetitive-corpus workload. Enough rounds that the steady state
  // (memo warm, stats maps populated) dominates the first-sight misses.
  constexpr size_t kIngestRounds = 10000;
  RepetitiveCorpus ingest_corpus = MakeRepetitiveCorpus();

  core::SourceOptions dom_options;
  dom_options.keep_documents = false;
  dom_options.streaming_parse = false;
  dom_options.classifier.enable_classification_memo = false;

  core::SourceOptions stream_options;
  stream_options.keep_documents = false;
  // Shared externally so the hit-rate statistics survive the run.
  classify::ClassificationMemo memo;
  stream_options.classifier.shared_memo = &memo;

  const IngestRun dom_run =
      RunIngest(ingest_corpus, kIngestRounds, dom_options);
  const IngestRun stream_run =
      RunIngest(ingest_corpus, kIngestRounds, stream_options);

  size_t ingest_mismatches = 0;
  for (size_t i = 0; i < stream_run.outcomes.size(); ++i) {
    const core::XmlSource::ProcessOutcome& a = dom_run.outcomes[i];
    const core::XmlSource::ProcessOutcome& b = stream_run.outcomes[i];
    if (a.classified != b.classified || a.dtd_name != b.dtd_name ||
        a.similarity != b.similarity || a.evolved != b.evolved ||
        a.reclassified != b.reclassified) {
      ++ingest_mismatches;
    }
  }

  uint64_t arena_bytes = 0;
  for (const std::string& text : ingest_corpus.texts) {
    StatusOr<xml::ArenaDocument> arena = xml::ParseArenaDocument(text);
    if (!arena.ok()) std::abort();
    arena_bytes += arena->arena().bytes_allocated();
  }

  const double ingest_n = static_cast<double>(ingest_corpus.texts.size()) *
                          static_cast<double>(kIngestRounds);
  const classify::ClassificationMemo::Stats memo_stats = memo.GetStats();

  json.Add("ingest_docs", ingest_corpus.texts.size())
      .Add("ingest_rounds", static_cast<uint64_t>(kIngestRounds))
      .Add("ingest_baseline_docs_per_second",
           dom_run.seconds > 0 ? ingest_n / dom_run.seconds : 0.0)
      .Add("ingest_docs_per_second",
           stream_run.seconds > 0 ? ingest_n / stream_run.seconds : 0.0)
      .Add("ingest_speedup", stream_run.seconds > 0
                                 ? dom_run.seconds / stream_run.seconds
                                 : 0.0)
      .Add("memo_hit_rate", memo_stats.HitRate())
      .Add("memo_evictions", memo_stats.evictions)
      .Add("arena_bytes_per_doc",
           ingest_corpus.texts.empty()
               ? 0.0
               : static_cast<double>(arena_bytes) /
                     static_cast<double>(ingest_corpus.texts.size()))
      .Add("ingest_outcome_mismatches",
           static_cast<uint64_t>(ingest_mismatches))
      // Satellite note: similarity/validate/recording child loops now run
      // on allocation-free child_elements() iterators; before this they
      // materialized a ChildElements()/ChildTagSequence() vector per
      // visit.
      .Add("child_iteration",
           std::string("iterator (was per-visit vector materialization)"));
  if (!json.Emit(out)) return 1;
  return mismatches == 0 && ingest_mismatches == 0 ? 0 : 2;
}

}  // namespace
}  // namespace dtdevolve

int main(int argc, char** argv) {
  std::string out;
  if (dtdevolve::bench::ParseJsonFlag(argc, argv,
                                      "BENCH_classification.json", &out)) {
    return dtdevolve::RunHeadline(out);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
