// Parallel batch-classification throughput: docs/sec of the concurrent
// scoring pipeline at jobs ∈ {1, 2, 4, 8} on a mixed two-DTD workload.
//
//   BM_ClassifyBatch — the pure scoring fan-out (read-only, embarrassingly
//     parallel): the upper bound of what the pipeline can gain.
//   BM_ProcessBatch  — the full classify → record → check loop, where the
//     recording tail is applied serially in input order; the speedup is the
//     scoring fraction of the per-document cost.
//
// Throughput is the `items_per_second` counter (wall clock). Speedups are
// relative to the --jobs 1 row of the same benchmark and obviously require
// the hardware to actually have that many cores.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_util.h"
#include "classify/classifier.h"
#include "core/source.h"
#include "dtd/dtd_parser.h"

namespace dtdevolve::bench {
namespace {

constexpr size_t kDocs = 256;
constexpr double kDrift = 0.3;

const char* kMailDtdText = R"(
  <!ELEMENT mail (from, to+, subject?, body)>
  <!ELEMENT from (#PCDATA)>
  <!ELEMENT to (#PCDATA)>
  <!ELEMENT subject (#PCDATA)>
  <!ELEMENT body (#PCDATA)>
)";

const char* kBookDtdText = R"(
  <!ELEMENT book (title, author+, year?)>
  <!ELEMENT title (#PCDATA)>
  <!ELEMENT author (#PCDATA)>
  <!ELEMENT year (#PCDATA)>
)";

dtd::Dtd BookDtd() {
  auto dtd = dtd::ParseDtd(kBookDtdText);
  return std::move(*dtd);
}

/// Mail and book instances interleaved, each drifted away from its DTD.
std::vector<xml::Document> MixedWorkload(size_t n) {
  dtd::Dtd mail = MailDtd();
  dtd::Dtd book = BookDtd();
  std::vector<xml::Document> mail_docs = DriftedDocs(mail, n / 2, kDrift, 11);
  std::vector<xml::Document> book_docs =
      DriftedDocs(book, n - n / 2, kDrift, 12);
  std::vector<xml::Document> docs;
  docs.reserve(n);
  size_t next_mail = 0, next_book = 0;
  for (size_t i = 0; i < n; ++i) {
    if (i % 2 == 0 && next_mail < mail_docs.size()) {
      docs.push_back(std::move(mail_docs[next_mail++]));
    } else {
      docs.push_back(std::move(book_docs[next_book++]));
    }
  }
  return docs;
}

void BM_ClassifyBatch(benchmark::State& state) {
  const size_t jobs = static_cast<size_t>(state.range(0));
  dtd::Dtd mail = MailDtd();
  dtd::Dtd book = BookDtd();
  classify::Classifier classifier(0.3);
  classifier.AddDtd("mail", &mail);
  classifier.AddDtd("book", &book);
  std::vector<xml::Document> docs = MixedWorkload(kDocs);

  for (auto _ : state) {
    std::vector<classify::ClassificationOutcome> outcomes =
        classifier.ClassifyBatch(docs, jobs);
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
}
BENCHMARK(BM_ClassifyBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_ProcessBatch(benchmark::State& state) {
  const size_t jobs = static_cast<size_t>(state.range(0));
  core::SourceOptions options;
  options.sigma = 0.3;
  options.tau = 0.2;
  options.min_documents_before_check = 64;
  options.keep_documents = false;
  std::vector<xml::Document> docs = MixedWorkload(kDocs);

  for (auto _ : state) {
    state.PauseTiming();
    auto source = std::make_unique<core::XmlSource>(options);
    (void)source->AddDtdText("mail", kMailDtdText);
    (void)source->AddDtdText("book", kBookDtdText);
    std::vector<xml::Document> copies;
    copies.reserve(docs.size());
    for (const xml::Document& doc : docs) copies.push_back(doc.Clone());
    state.ResumeTiming();

    std::vector<core::XmlSource::ProcessOutcome> outcomes =
        source->ProcessBatch(std::move(copies), jobs);
    benchmark::DoNotOptimize(outcomes);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(docs.size()));
}
BENCHMARK(BM_ProcessBatch)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dtdevolve::bench

BENCHMARK_MAIN();
