// Experiment E3: the recording phase — throughput of RecordDocument and
// the storage footprint of the extended DTD as the stream grows, backing
// the paper's claim that the recorded information is aggregate and cheap
// ("they do not require much storage space", §2/§3).
//
// Counters: bytes (extended-DTD footprint), bytes_per_doc.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolve/recorder.h"

namespace dtdevolve {
namespace {

void BM_RecordDocument(benchmark::State& state) {
  dtd::Dtd dtd = bench::MailDtd();
  const double drift = static_cast<double>(state.range(0)) / 100.0;
  std::vector<xml::Document> docs =
      bench::DriftedDocs(dtd, 256, drift, /*seed=*/11);
  evolve::ExtendedDtd ext(dtd.Clone());
  evolve::Recorder recorder(ext);
  size_t i = 0;
  for (auto _ : state) {
    recorder.RecordDocument(docs[i % docs.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
  state.counters["divergence"] = ext.MeanDivergence();
}
BENCHMARK(BM_RecordDocument)->Arg(0)->Arg(20)->Arg(60);

void BM_ExtendedDtdFootprint(benchmark::State& state) {
  dtd::Dtd dtd = bench::MailDtd();
  const size_t num_docs = static_cast<size_t>(state.range(0));
  size_t bytes = 0;
  for (auto _ : state) {
    evolve::ExtendedDtd ext(dtd.Clone());
    evolve::Recorder recorder(ext);
    std::vector<xml::Document> docs =
        bench::DriftedDocs(dtd, num_docs, 0.3, /*seed=*/13);
    for (const xml::Document& doc : docs) recorder.RecordDocument(doc);
    bytes = ext.MemoryFootprint();
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
  state.counters["bytes_per_doc"] =
      static_cast<double>(bytes) / static_cast<double>(num_docs);
}
BENCHMARK(BM_ExtendedDtdFootprint)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// The recording phase must not grow with the number of *documents* —
// only with the number of distinct structures. This run feeds identical
// structure repeatedly and reports the (flat) footprint.
void BM_FootprintIsAggregate(benchmark::State& state) {
  dtd::Dtd dtd = bench::MailDtd();
  const size_t num_docs = static_cast<size_t>(state.range(0));
  std::vector<xml::Document> docs =
      bench::DriftedDocs(dtd, 1, 0.5, /*seed=*/17);
  size_t bytes = 0;
  for (auto _ : state) {
    evolve::ExtendedDtd ext(dtd.Clone());
    evolve::Recorder recorder(ext);
    for (size_t i = 0; i < num_docs; ++i) {
      recorder.RecordDocument(docs[0]);
    }
    bytes = ext.MemoryFootprint();
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_FootprintIsAggregate)
    ->Arg(100)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
