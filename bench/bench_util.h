#ifndef DTDEVOLVE_BENCH_BENCH_UTIL_H_
#define DTDEVOLVE_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment benchmarks (EXPERIMENTS.md E1–E10).

#include <string>
#include <vector>

#include "dtd/dtd.h"
#include "dtd/dtd_parser.h"
#include "similarity/similarity.h"
#include "validate/validator.h"
#include "workload/generator.h"
#include "workload/mutator.h"
#include "xml/document.h"

namespace dtdevolve::bench {

/// The base DTD most experiments drift away from: a mail archive.
inline dtd::Dtd MailDtd() {
  auto dtd = dtd::ParseDtd(R"(
    <!ELEMENT mail (from, to+, subject?, body)>
    <!ELEMENT from (#PCDATA)>
    <!ELEMENT to (#PCDATA)>
    <!ELEMENT subject (#PCDATA)>
    <!ELEMENT body (#PCDATA)>
  )");
  return std::move(*dtd);
}

/// Documents generated from `dtd` and damaged with the three §2
/// regularity classes at `drift` intensity (0 = all valid).
inline std::vector<xml::Document> DriftedDocs(const dtd::Dtd& dtd, size_t n,
                                              double drift, uint64_t seed) {
  workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                        seed);
  workload::MutationOptions mutation;
  mutation.drop_probability = drift * 0.5;
  mutation.insert_probability = drift;
  mutation.duplicate_probability = drift * 0.5;
  mutation.new_tags = {"cc", "priority"};
  workload::Mutator mutator(mutation, seed + 1);
  std::vector<xml::Document> docs;
  docs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    xml::Document doc = generator.Generate();
    mutator.Mutate(doc);
    docs.push_back(std::move(doc));
  }
  return docs;
}

inline double MeanSimilarity(const dtd::Dtd& dtd,
                             const std::vector<xml::Document>& docs) {
  similarity::SimilarityEvaluator evaluator(dtd);
  double sum = 0.0;
  for (const xml::Document& doc : docs) {
    sum += evaluator.DocumentSimilarity(doc);
  }
  return docs.empty() ? 0.0 : sum / static_cast<double>(docs.size());
}

inline double ValidFraction(const dtd::Dtd& dtd,
                            const std::vector<xml::Document>& docs) {
  validate::Validator validator(dtd);
  size_t valid = 0;
  for (const xml::Document& doc : docs) {
    if (validator.Validate(doc).valid) ++valid;
  }
  return docs.empty() ? 0.0
                      : static_cast<double>(valid) /
                            static_cast<double>(docs.size());
}

}  // namespace dtdevolve::bench

#endif  // DTDEVOLVE_BENCH_BENCH_UTIL_H_
