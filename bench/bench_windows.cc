// Experiment E5: the ψ window threshold. A population where elements
// diverge at different rates is recorded, then evolved at each ψ.
// Counters per ψ·100:
//   old_pct/misc_pct/new_pct — element-window distribution,
//   old_docs_valid / cur_docs_valid — post-evolution validity of the
//     already-conforming documents vs the newly-drifted ones (the
//     DOC_old/DOC_cur relevance trade-off of §4.1).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"

namespace dtdevolve {
namespace {

struct Population {
  std::vector<xml::Document> old_docs;  // valid for the initial DTD
  std::vector<xml::Document> cur_docs;  // drifted
};

Population MakePopulation() {
  Population population;
  dtd::Dtd dtd = bench::MailDtd();
  population.old_docs = bench::DriftedDocs(dtd, 60, 0.0, /*seed=*/31);
  population.cur_docs = bench::DriftedDocs(dtd, 40, 0.7, /*seed=*/37);
  return population;
}

void BM_PsiSweep(benchmark::State& state) {
  const double psi = static_cast<double>(state.range(0)) / 100.0;
  Population population = MakePopulation();

  size_t old_count = 0, misc_count = 0, new_count = 0;
  double old_valid = 0, cur_valid = 0;
  for (auto _ : state) {
    evolve::ExtendedDtd ext(bench::MailDtd());
    evolve::Recorder recorder(ext);
    for (const auto& doc : population.old_docs) recorder.RecordDocument(doc);
    for (const auto& doc : population.cur_docs) recorder.RecordDocument(doc);

    evolve::EvolutionOptions options;
    options.psi = psi;
    evolve::EvolutionResult result = evolve::EvolveDtd(ext, options);

    old_count = misc_count = new_count = 0;
    for (const evolve::ElementEvolution& element : result.elements) {
      switch (element.window) {
        case evolve::Window::kOld:
          ++old_count;
          break;
        case evolve::Window::kMisc:
          ++misc_count;
          break;
        case evolve::Window::kNew:
          ++new_count;
          break;
      }
    }
    old_valid = bench::ValidFraction(ext.dtd(), population.old_docs);
    cur_valid = bench::ValidFraction(ext.dtd(), population.cur_docs);
  }
  const double total =
      static_cast<double>(old_count + misc_count + new_count);
  state.counters["old_pct"] = total == 0 ? 0 : 100.0 * old_count / total;
  state.counters["misc_pct"] = total == 0 ? 0 : 100.0 * misc_count / total;
  state.counters["new_pct"] = total == 0 ? 0 : 100.0 * new_count / total;
  state.counters["old_docs_valid"] = 100.0 * old_valid;
  state.counters["cur_docs_valid"] = 100.0 * cur_valid;
}
BENCHMARK(BM_PsiSweep)
    ->Arg(0)
    ->Arg(10)
    ->Arg(25)
    ->Arg(40)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
