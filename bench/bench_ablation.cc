// Ablation experiments for the design choices DESIGN.md calls out:
//   * the AND-contiguity guard (P1/P11) — without it, co-occurring labels
//     merge into adjacent groups that jump over interleaved content and
//     the evolved DTD stops validating the very documents it was learned
//     from;
//   * old-window operator restriction — tightens DTDs at zero validity
//     cost for the observed population;
//   * simplification — smaller DTDs, identical language.
// Counters: valid_pct (post-evolution validity of the recorded
// population), dtd_nodes.

#include <benchmark/benchmark.h>

#include "adapt/adapter.h"
#include "bench_util.h"
#include "dtd/dtd_parser.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"
#include "workload/generator.h"

namespace dtdevolve {
namespace {

/// Interleaved drift population: documents follow the hidden schema
/// (name, price|sale, description?, image+) while the source only knows
/// (name, price). `name` and `image` co-occur in every document, so
/// without the contiguity guard P1 merges them across price/description.
std::vector<xml::Document> InterleavedDocs(size_t n) {
  auto hidden = dtd::ParseDtd(R"(
    <!ELEMENT product (name, (price | sale), description?, image+)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
    <!ELEMENT sale (#PCDATA)>
    <!ELEMENT description (#PCDATA)>
    <!ELEMENT image (#PCDATA)>
  )");
  workload::DocumentGenerator generator(*hidden, workload::GeneratorOptions(),
                                        91);
  std::vector<xml::Document> docs;
  for (size_t i = 0; i < n; ++i) docs.push_back(generator.Generate());
  return docs;
}

dtd::Dtd StaleProductDtd() {
  auto dtd = dtd::ParseDtd(R"(
    <!ELEMENT product (name, price)>
    <!ELEMENT name (#PCDATA)>
    <!ELEMENT price (#PCDATA)>
  )");
  return std::move(*dtd);
}

void RunEvolution(benchmark::State& state,
                  const evolve::EvolutionOptions& options) {
  std::vector<xml::Document> docs = InterleavedDocs(100);
  double valid = 0.0;
  size_t nodes = 0;
  for (auto _ : state) {
    evolve::ExtendedDtd ext(StaleProductDtd());
    evolve::Recorder recorder(ext);
    for (const auto& doc : docs) recorder.RecordDocument(doc);
    evolve::EvolveDtd(ext, options);
    valid = bench::ValidFraction(ext.dtd(), docs);
    nodes = ext.dtd().TotalNodeCount();
  }
  state.counters["valid_pct"] = 100.0 * valid;
  state.counters["dtd_nodes"] = static_cast<double>(nodes);
}

void BM_ContiguityGuard_On(benchmark::State& state) {
  RunEvolution(state, {});
}
BENCHMARK(BM_ContiguityGuard_On)->Unit(benchmark::kMillisecond);

void BM_ContiguityGuard_Off(benchmark::State& state) {
  evolve::EvolutionOptions options;
  options.contiguity_guard = false;
  RunEvolution(state, options);
}
BENCHMARK(BM_ContiguityGuard_Off)->Unit(benchmark::kMillisecond);

void BM_Simplify_Off(benchmark::State& state) {
  evolve::EvolutionOptions options;
  options.simplify = false;
  RunEvolution(state, options);
}
BENCHMARK(BM_Simplify_Off)->Unit(benchmark::kMillisecond);

/// Restriction ablation: a loose DTD, conforming documents. With
/// restriction the DTD tightens (fewer accepted never-seen shapes) while
/// staying 100% valid on the population.
void RunRestriction(benchmark::State& state, bool restrict_operators) {
  auto loose = dtd::ParseDtd(R"(
    <!ELEMENT log (entry*)>
    <!ELEMENT entry (time?, message*)>
    <!ELEMENT time (#PCDATA)>
    <!ELEMENT message (#PCDATA)>
  )");
  // Documents always carry ≥1 entry, each with time and exactly one
  // message.
  std::vector<xml::Document> docs;
  {
    auto strict = dtd::ParseDtd(R"(
      <!ELEMENT log (entry+)>
      <!ELEMENT entry (time, message)>
      <!ELEMENT time (#PCDATA)>
      <!ELEMENT message (#PCDATA)>
    )");
    workload::DocumentGenerator generator(*strict,
                                          workload::GeneratorOptions(), 97);
    for (int i = 0; i < 100; ++i) docs.push_back(generator.Generate());
  }
  double valid = 0.0;
  size_t nodes = 0;
  for (auto _ : state) {
    evolve::ExtendedDtd ext(loose->Clone());
    evolve::Recorder recorder(ext);
    for (const auto& doc : docs) recorder.RecordDocument(doc);
    evolve::EvolutionOptions options;
    options.restrict_operators = restrict_operators;
    evolve::EvolveDtd(ext, options);
    valid = bench::ValidFraction(ext.dtd(), docs);
    nodes = ext.dtd().TotalNodeCount();
  }
  state.counters["valid_pct"] = 100.0 * valid;
  state.counters["dtd_nodes"] = static_cast<double>(nodes);
}

void BM_Restriction_On(benchmark::State& state) {
  RunRestriction(state, true);
}
BENCHMARK(BM_Restriction_On)->Unit(benchmark::kMillisecond);

void BM_Restriction_Off(benchmark::State& state) {
  RunRestriction(state, false);
}
BENCHMARK(BM_Restriction_Off)->Unit(benchmark::kMillisecond);

/// Document-adaptation throughput (the §6 adapt extension): mutated
/// documents repaired per second against the hidden schema.
void BM_AdaptThroughput(benchmark::State& state) {
  dtd::Dtd dtd = bench::MailDtd();
  std::vector<xml::Document> docs =
      bench::DriftedDocs(dtd, 128, 0.5, /*seed=*/101);
  size_t i = 0;
  for (auto _ : state) {
    xml::Document doc = docs[i % docs.size()].Clone();
    adapt::AdaptReport report;
    benchmark::DoNotOptimize(
        adapt::AdaptDocument(doc, dtd, {}, &report).ok());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_AdaptThroughput);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
