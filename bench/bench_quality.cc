// Experiment E1: quality of the obtained DTDs — the evaluation the paper
// announces in §6 ("assessing the quality of the obtained DTDs"). For a
// population drifting at each rate, four describers are compared over the
// whole population:
//   original  — the initial DTD, untouched;
//   evolved   — the paper's approach (record + evolve once);
//   xtract    — XTRACT-style batch re-inference from scratch;
//   naive     — union-based inference without OR (Moh et al. class).
// Counters: *_sim (mean structural similarity), *_valid (percent valid),
// *_nodes (DTD size). Expected shape: evolved ≈ xtract ≫ original; naive
// close on validity but looser (accepts unseen combinations) and unable
// to express alternatives.

#include <benchmark/benchmark.h>

#include "baseline/naive_infer.h"
#include "baseline/xtract.h"
#include "bench_util.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"

namespace dtdevolve {
namespace {

void BM_QualityVsDrift(benchmark::State& state) {
  const double drift = static_cast<double>(state.range(0)) / 100.0;
  dtd::Dtd initial = bench::MailDtd();
  std::vector<xml::Document> docs =
      bench::DriftedDocs(initial, 200, drift, /*seed=*/83);

  double original_sim = 0, evolved_sim = 0, xtract_sim = 0, naive_sim = 0;
  double original_valid = 0, evolved_valid = 0, xtract_valid = 0,
         naive_valid = 0;
  size_t evolved_nodes = 0, xtract_nodes = 0, naive_nodes = 0;

  for (auto _ : state) {
    // The paper's approach.
    evolve::ExtendedDtd ext(initial.Clone());
    evolve::Recorder recorder(ext);
    for (const auto& doc : docs) recorder.RecordDocument(doc);
    evolve::EvolutionOptions options;
    options.min_support = 0.05;
    evolve::EvolveDtd(ext, options);

    // Batch baselines (re-read all documents).
    dtd::Dtd xtract = baseline::InferXtractDtd(docs, "mail");
    dtd::Dtd naive = baseline::InferNaiveDtd(docs, "mail");

    original_sim = bench::MeanSimilarity(initial, docs);
    evolved_sim = bench::MeanSimilarity(ext.dtd(), docs);
    xtract_sim = bench::MeanSimilarity(xtract, docs);
    naive_sim = bench::MeanSimilarity(naive, docs);
    original_valid = bench::ValidFraction(initial, docs);
    evolved_valid = bench::ValidFraction(ext.dtd(), docs);
    xtract_valid = bench::ValidFraction(xtract, docs);
    naive_valid = bench::ValidFraction(naive, docs);
    evolved_nodes = ext.dtd().TotalNodeCount();
    xtract_nodes = xtract.TotalNodeCount();
    naive_nodes = naive.TotalNodeCount();
  }
  state.counters["original_sim"] = original_sim;
  state.counters["evolved_sim"] = evolved_sim;
  state.counters["xtract_sim"] = xtract_sim;
  state.counters["naive_sim"] = naive_sim;
  state.counters["original_valid"] = 100.0 * original_valid;
  state.counters["evolved_valid"] = 100.0 * evolved_valid;
  state.counters["xtract_valid"] = 100.0 * xtract_valid;
  state.counters["naive_valid"] = 100.0 * naive_valid;
  state.counters["evolved_nodes"] = static_cast<double>(evolved_nodes);
  state.counters["xtract_nodes"] = static_cast<double>(xtract_nodes);
  state.counters["naive_nodes"] = static_cast<double>(naive_nodes);
}
BENCHMARK(BM_QualityVsDrift)
    ->Arg(0)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Arg(75)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
