#ifndef DTDEVOLVE_BENCH_BENCH_JSON_H_
#define DTDEVOLVE_BENCH_BENCH_JSON_H_

// Machine-readable result files for the benchmark binaries. Each bench
// that supports `--json [FILE]` runs a fixed-seed headline measurement
// and emits one flat JSON object (stdout + FILE) — the schema is
// documented in TESTING.md and consumed by tools/perf_smoke.sh, so keys
// are stable: snake_case, numbers only (no nested objects), one line.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace dtdevolve::bench {

/// Nearest-rank percentile over an already-sorted sample; 0 when empty.
inline double PercentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// Accumulates `"key":value` pairs and renders the one-line object.
class JsonObject {
 public:
  JsonObject& Add(const std::string& key, double value) {
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
    return AddRaw(key, buffer);
  }
  JsonObject& Add(const std::string& key, uint64_t value) {
    return AddRaw(key, std::to_string(value));
  }
  JsonObject& Add(const std::string& key, const std::string& value) {
    return AddRaw(key, "\"" + value + "\"");
  }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += fields_[i];
    }
    out += "}\n";
    return out;
  }

  /// Renders to stdout and, when `path` is non-empty, to `path`.
  /// Returns false when the file cannot be written.
  bool Emit(const std::string& path) const {
    const std::string text = Render();
    std::fputs(text.c_str(), stdout);
    if (path.empty()) return true;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs(text.c_str(), f);
    std::fclose(f);
    return true;
  }

 private:
  JsonObject& AddRaw(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + key + "\":" + value);
    return *this;
  }

  std::vector<std::string> fields_;
};

/// `--json [FILE]` detection for bench mains: returns true when the flag
/// is present and fills `out` with FILE (or `default_out` when the next
/// argument is absent or another flag).
inline bool ParseJsonFlag(int argc, char** argv, const char* default_out,
                          std::string* out) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") continue;
    *out = default_out;
    if (i + 1 < argc && argv[i + 1][0] != '-') *out = argv[i + 1];
    return true;
  }
  return false;
}

}  // namespace dtdevolve::bench

#endif  // DTDEVOLVE_BENCH_BENCH_JSON_H_
