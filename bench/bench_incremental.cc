// Experiment E4: the incremental advantage. The paper's evolution phase
// runs on recorded aggregates and never re-reads documents; batch
// inference (XTRACT-style, naive union) must re-read everything. This
// bench times one re-derivation round for each approach as the number of
// accumulated documents grows: the evolution phase stays flat (it depends
// on the number of *distinct structures*), batch grows linearly.

#include <benchmark/benchmark.h>

#include "baseline/naive_infer.h"
#include "baseline/xtract.h"
#include "bench_util.h"
#include "evolve/recorder.h"
#include "evolve/structure_builder.h"

namespace dtdevolve {
namespace {

struct Prepared {
  std::vector<xml::Document> docs;
  evolve::ExtendedDtd ext;

  explicit Prepared(size_t n)
      : docs(bench::DriftedDocs(bench::MailDtd(), n, 0.4, /*seed=*/23)),
        ext(bench::MailDtd()) {
    evolve::Recorder recorder(ext);
    for (const xml::Document& doc : docs) recorder.RecordDocument(doc);
  }
};

void BM_EvolutionPhase_FromAggregates(benchmark::State& state) {
  Prepared prepared(static_cast<size_t>(state.range(0)));
  size_t rebuilt = 0;
  for (auto _ : state) {
    rebuilt = 0;
    // The evolution phase proper: derive a structure per element from the
    // recorded statistics (non-destructive variant of EvolveDtd).
    for (const auto& [name, stats] : prepared.ext.all_stats()) {
      evolve::BuildOutcome outcome = evolve::BuildElementStructure(stats);
      if (outcome.model != nullptr) ++rebuilt;
      benchmark::DoNotOptimize(outcome.model);
    }
  }
  state.counters["elements_rebuilt"] = static_cast<double>(rebuilt);
}
BENCHMARK(BM_EvolutionPhase_FromAggregates)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

void BM_XtractBatch_RereadsEverything(benchmark::State& state) {
  Prepared prepared(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    dtd::Dtd inferred = baseline::InferXtractDtd(prepared.docs, "mail");
    benchmark::DoNotOptimize(inferred.size());
  }
}
BENCHMARK(BM_XtractBatch_RereadsEverything)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

void BM_NaiveBatch_RereadsEverything(benchmark::State& state) {
  Prepared prepared(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    dtd::Dtd inferred = baseline::InferNaiveDtd(prepared.docs, "mail");
    benchmark::DoNotOptimize(inferred.size());
  }
}
BENCHMARK(BM_NaiveBatch_RereadsEverything)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(5000)
    ->Unit(benchmark::kMicrosecond);

// Recording cost is paid once per document at classification time; this
// reports the amortized per-document recording cost for context.
void BM_RecordingAmortized(benchmark::State& state) {
  std::vector<xml::Document> docs =
      bench::DriftedDocs(bench::MailDtd(), 512, 0.4, /*seed=*/29);
  evolve::ExtendedDtd ext(bench::MailDtd());
  evolve::Recorder recorder(ext);
  size_t i = 0;
  for (auto _ : state) {
    recorder.RecordDocument(docs[i % docs.size()]);
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_RecordingAmortized);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
