// Ingest-server load generator (EXPERIMENTS-style, but a standalone
// binary rather than a google-benchmark suite: the subject is a whole
// multi-threaded server, not a function). Boots an in-process
// IngestServer on an ephemeral loopback port, hammers POST /ingest?wait=1
// from concurrent clients — each a persistent keep-alive connection, so
// the measurement is request service, not TCP handshakes — with drifted
// mail documents, and reports end-to-end throughput and latency
// percentiles:
//
//   bench_server [--docs N] [--clients C] [--jobs J] [--drift D]
//                [--tenants T] [--flood-tenant] [--out F]
//
// `--tenants T` (default 1) boots T tenant shards (t0..t{T-1}) and
// spreads the load round-robin over `/ingest/t{i}` — a mixed
// multi-tenant workload over the shared thread pool, with evolutions
// and repository sizes summed across shards in the report.
//
// `--flood-tenant` measures overload isolation rather than raw
// throughput: an extra rate-limited "flood" shard is hammered by two
// hostile threads for the whole run while the measured clients drive
// the t{i} shards as usual. The reported p50/p99 are the well-behaved
// tenants' latencies under abuse — compare against a run without the
// flag to see what neighbor abuse costs — and the JSON gains the
// flood's sent/admitted/429 tallies.
//
// Output: one JSON object on stdout, duplicated to --out (default
// BENCH_server.json) — docs/sec, p50/p99 latency in ms, how many
// requests hit 503 backpressure along the way, and the total time spent
// backing off (exponential, floored at the server's Retry-After).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/http.h"
#include "server/server.h"
#include "util/status.h"
#include "xml/writer.h"

namespace dtdevolve::bench {
namespace {

struct LoadOptions {
  size_t docs = 2000;
  size_t clients = 8;
  size_t jobs = 4;
  double drift = 0.3;
  size_t tenants = 1;
  bool flood_tenant = false;
  std::string out = "BENCH_server.json";
};

/// One client thread's persistent keep-alive connection — the realistic
/// shape of ingest traffic, and the one the epoll server is built for.
/// The old per-request connect/close client measured mostly TCP
/// handshakes and TIME_WAIT churn, not the server. Reconnects lazily
/// after transport failures or a server-initiated close.
class BenchClient {
 public:
  explicit BenchClient(uint16_t port) : port_(port) {}
  ~BenchClient() { Disconnect(); }

  /// Blocking POST over the persistent connection; returns the status
  /// code, or 0 on transport failure (after one reconnect retry). When
  /// the response carries a Retry-After header (503 backpressure, WAL
  /// degraded mode), `*retry_after_ms` receives it in milliseconds.
  int Post(const std::string& target, const std::string& body,
           long* retry_after_ms) {
    if (retry_after_ms != nullptr) *retry_after_ms = 0;
    const std::string request =
        "POST " + target + " HTTP/1.1\r\nHost: bench\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    // A stale connection (idle-timeout close racing our send) fails the
    // first attempt; the retry runs on a fresh socket.
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (!EnsureConnected() || !SendAll(request)) {
        Disconnect();
        continue;
      }
      StatusOr<server::HttpClientResponse> response =
          server::ReadHttpResponse(fd_);
      if (!response.ok()) {
        Disconnect();
        continue;
      }
      if (retry_after_ms != nullptr) {
        if (const std::string* retry = response->FindHeader("retry-after")) {
          *retry_after_ms = std::atol(retry->c_str()) * 1000;
        }
      }
      const std::string* connection = response->FindHeader("connection");
      if (connection != nullptr && *connection == "close") Disconnect();
      return response->status;
    }
    return 0;
  }

 private:
  bool EnsureConnected() {
    if (fd_ >= 0) return true;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port_);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Disconnect();
      return false;
    }
    return true;
  }

  bool SendAll(const std::string& data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n =
          ::send(fd_, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  void Disconnect() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  uint16_t port_;
  int fd_ = -1;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t index = std::min(
      sorted.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted.size() - 1)));
  return sorted[index];
}

int Run(const LoadOptions& options) {
  // Drifted documents exercise the full loop: most classify, some evolve
  // the DTD mid-run, the rest land in the repository.
  dtd::Dtd mail = MailDtd();
  std::vector<xml::Document> docs =
      DriftedDocs(mail, options.docs, options.drift, 1234);
  std::vector<std::string> bodies;
  bodies.reserve(docs.size());
  for (const xml::Document& doc : docs) {
    bodies.push_back(xml::WriteDocument(doc));
  }

  core::SourceOptions source_options;
  source_options.sigma = 0.3;
  source_options.tau = 0.1;
  source_options.min_documents_before_check = 15;
  server::ServerOptions server_options;
  server_options.port = 0;
  server_options.jobs = options.jobs;
  server_options.queue_capacity = std::max<size_t>(64, options.clients * 8);
  if (options.tenants > 1 || options.flood_tenant) {
    for (size_t t = 0; t < options.tenants; ++t) {
      server_options.tenants.push_back("t" + std::to_string(t));
    }
  }
  if (options.flood_tenant) {
    // The abuser gets its own shard behind a token bucket; the measured
    // tenants stay unquota'd, so any latency they lose to the flood is
    // shared-infrastructure cost, not admission policy.
    server_options.tenants.push_back("flood");
    server::TenantQuota quota;
    quota.rate = 200.0;
    quota.burst = 50.0;
    server_options.tenant_quotas["flood"] = quota;
  }
  server::IngestServer server(source_options, server_options);
  {
    // Seed with the DTD text, not the parsed form: same path as the CLI.
    std::string mail_text = R"(
      <!ELEMENT mail (from, to+, subject?, body)>
      <!ELEMENT from (#PCDATA)>
      <!ELEMENT to (#PCDATA)>
      <!ELEMENT subject (#PCDATA)>
      <!ELEMENT body (#PCDATA)>
    )";
    Status added = server.AddDtdText("mail", mail_text);
    if (!added.ok()) {
      std::fprintf(stderr, "%s\n", added.ToString().c_str());
      return 1;
    }
  }
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s\n", started.ToString().c_str());
    return 1;
  }

  std::atomic<size_t> next{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> backoff_ms_total{0};
  std::vector<std::vector<double>> latencies(options.clients);
  const auto start = std::chrono::steady_clock::now();

  // Hostile neighbor: hammers the quota'd flood shard for the whole
  // measured run, fire-and-forget (no wait=1) — the abuse pattern the
  // admission layer exists for. Its tallies are reported, not gated.
  std::atomic<bool> flood_stop{false};
  std::atomic<uint64_t> flood_sent{0};
  std::atomic<uint64_t> flood_admitted{0};
  std::atomic<uint64_t> flood_limited{0};
  std::vector<std::thread> flooders;
  if (options.flood_tenant) {
    for (int f = 0; f < 2; ++f) {
      flooders.emplace_back([&] {
        BenchClient client(server.port());
        const std::string body =
            "<mail><from>f</from><to>t</to><body>flood</body></mail>";
        while (!flood_stop.load(std::memory_order_relaxed)) {
          const int status = client.Post("/ingest/flood", body, nullptr);
          flood_sent.fetch_add(1);
          if (status == 202) {
            flood_admitted.fetch_add(1);
          } else if (status == 429) {
            flood_limited.fetch_add(1);
          }
        }
      });
    }
  }

  std::vector<std::thread> clients;
  clients.reserve(options.clients);
  for (size_t c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      BenchClient client(server.port());
      latencies[c].reserve(options.docs / options.clients + 1);
      while (true) {
        const size_t i = next.fetch_add(1);
        if (i >= bodies.size()) break;
        // Mixed multi-tenant load: document i goes to shard i mod T.
        const std::string target =
            options.tenants > 1 || options.flood_tenant
                ? "/ingest/t" + std::to_string(i % options.tenants) + "?wait=1"
                : "/ingest?wait=1";
        const auto t0 = std::chrono::steady_clock::now();
        long retry_after_ms = 0;
        int status = client.Post(target, bodies[i], &retry_after_ms);
        // Backpressure: retry the same document with exponential backoff,
        // never sleeping less than the server's advertised Retry-After.
        long backoff_ms = 2;
        while (status == 503) {
          rejected.fetch_add(1);
          const long wait_ms = std::max(backoff_ms, retry_after_ms);
          backoff_ms_total.fetch_add(static_cast<uint64_t>(wait_ms));
          std::this_thread::sleep_for(std::chrono::milliseconds(wait_ms));
          backoff_ms = std::min<long>(backoff_ms * 2, 1000);
          status = client.Post(target, bodies[i], &retry_after_ms);
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (status != 200) {
          failed.fetch_add(1);
          continue;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (std::thread& t : clients) t.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  flood_stop.store(true);
  for (std::thread& t : flooders) t.join();

  server.Shutdown();
  server.Wait();

  std::vector<double> all;
  for (const std::vector<double>& partial : latencies) {
    all.insert(all.end(), partial.begin(), partial.end());
  }
  std::sort(all.begin(), all.end());

  const double docs_per_second =
      elapsed > 0 ? static_cast<double>(all.size()) / elapsed : 0.0;
  uint64_t evolutions = 0;
  size_t repository = 0;
  for (const std::string& tenant : server.manager().TenantNames()) {
    evolutions += server.source(tenant).evolutions_performed();
    repository += server.source(tenant).repository().size();
  }
  char json[896];
  std::snprintf(
      json, sizeof(json),
      "{\"benchmark\":\"server_ingest\",\"docs\":%zu,\"clients\":%zu,"
      "\"jobs\":%zu,\"drift\":%g,\"tenants\":%zu,\"seconds\":%.3f,"
      "\"docs_per_second\":%.1f,\"p50_ms\":%.3f,\"p99_ms\":%.3f,"
      "\"rejected_503\":%llu,\"backoff_ms\":%llu,\"failed\":%llu,"
      "\"evolutions\":%llu,\"repository\":%zu,\"flood_tenant\":%d,"
      "\"flood_sent\":%llu,\"flood_admitted\":%llu,"
      "\"flood_limited_429\":%llu}\n",
      options.docs, options.clients, options.jobs, options.drift,
      options.tenants, elapsed, docs_per_second, Percentile(all, 0.50),
      Percentile(all, 0.99),
      static_cast<unsigned long long>(rejected.load()),
      static_cast<unsigned long long>(backoff_ms_total.load()),
      static_cast<unsigned long long>(failed.load()),
      static_cast<unsigned long long>(evolutions), repository,
      options.flood_tenant ? 1 : 0,
      static_cast<unsigned long long>(flood_sent.load()),
      static_cast<unsigned long long>(flood_admitted.load()),
      static_cast<unsigned long long>(flood_limited.load()));
  std::fputs(json, stdout);
  if (!options.out.empty()) {
    if (std::FILE* f = std::fopen(options.out.c_str(), "w")) {
      std::fputs(json, f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "cannot write %s\n", options.out.c_str());
    }
  }
  return failed.load() == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dtdevolve::bench

int main(int argc, char** argv) {
  dtdevolve::bench::LoadOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--docs") {
      const char* v = value();
      if (v == nullptr || std::atol(v) <= 0) return 1;
      options.docs = static_cast<size_t>(std::atol(v));
    } else if (arg == "--clients") {
      const char* v = value();
      if (v == nullptr || std::atol(v) <= 0) return 1;
      options.clients = static_cast<size_t>(std::atol(v));
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr || std::atol(v) <= 0) return 1;
      options.jobs = static_cast<size_t>(std::atol(v));
    } else if (arg == "--drift") {
      const char* v = value();
      if (v == nullptr) return 1;
      options.drift = std::atof(v);
    } else if (arg == "--tenants") {
      const char* v = value();
      if (v == nullptr || std::atol(v) <= 0) return 1;
      options.tenants = static_cast<size_t>(std::atol(v));
    } else if (arg == "--flood-tenant") {
      options.flood_tenant = true;
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return 1;
      options.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_server [--docs N] [--clients C] [--jobs J] "
                   "[--drift D] [--tenants T] [--flood-tenant] [--out F]\n");
      return 1;
    }
  }
  return dtdevolve::bench::Run(options);
}
