// Experiment E7: scaling of the mining substrate — Apriori over the
// absent-element-completed transactions (§4.2) as the number of recorded
// sequences and the label-universe size grow, plus the direct
// confidence-1 oracle the policies actually query.
// Counters: itemsets (frequent itemsets found), rules (confidence-1
// singleton rules derivable).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "mining/apriori.h"
#include "mining/rules.h"
#include "workload/rng.h"

namespace dtdevolve {
namespace {

/// Random sequence population: `labels` tags, each present independently
/// with probability 0.5 (plus a couple of correlated pairs so rules
/// exist).
std::vector<std::pair<std::set<std::string>, uint32_t>> RandomSequences(
    size_t count, size_t labels, uint64_t seed) {
  workload::Rng rng(seed);
  std::vector<std::pair<std::set<std::string>, uint32_t>> out;
  for (size_t i = 0; i < count; ++i) {
    std::set<std::string> sequence;
    for (size_t l = 0; l < labels; ++l) {
      if (rng.Chance(0.5)) sequence.insert("t" + std::to_string(l));
    }
    // Correlations: t0 implies t1; t2 excludes t3.
    if (sequence.count("t0")) sequence.insert("t1");
    if (sequence.count("t2")) sequence.erase("t3");
    out.emplace_back(std::move(sequence), 1);
  }
  return out;
}

std::set<std::string> Universe(size_t labels) {
  std::set<std::string> out;
  for (size_t l = 0; l < labels; ++l) out.insert("t" + std::to_string(l));
  return out;
}

void BM_Apriori(benchmark::State& state) {
  const size_t count = static_cast<size_t>(state.range(0));
  const size_t labels = static_cast<size_t>(state.range(1));
  auto sequences = RandomSequences(count, labels, 59);
  std::set<std::string> universe = Universe(labels);

  mining::TransactionSet transactions;
  for (const auto& [sequence, multiplicity] : sequences) {
    transactions.Add(sequence, universe, multiplicity);
  }
  mining::AprioriOptions options;
  options.min_support = 0.3;
  options.max_size = 3;
  size_t itemsets = 0;
  for (auto _ : state) {
    auto result = mining::MineFrequentItemsets(transactions, options);
    itemsets = result.size();
    benchmark::DoNotOptimize(result.size());
  }
  state.counters["itemsets"] = static_cast<double>(itemsets);
}
BENCHMARK(BM_Apriori)
    ->Args({100, 6})
    ->Args({1000, 6})
    ->Args({100, 10})
    ->Args({1000, 10})
    ->Args({100, 14})
    ->Unit(benchmark::kMicrosecond);

void BM_RuleGeneration(benchmark::State& state) {
  const size_t labels = static_cast<size_t>(state.range(0));
  auto sequences = RandomSequences(500, labels, 61);
  std::set<std::string> universe = Universe(labels);
  mining::TransactionSet transactions;
  for (const auto& [sequence, multiplicity] : sequences) {
    transactions.Add(sequence, universe, multiplicity);
  }
  mining::AprioriOptions options;
  options.min_support = 0.3;
  options.max_size = 3;
  auto itemsets = mining::MineFrequentItemsets(transactions, options);
  size_t rules = 0;
  for (auto _ : state) {
    auto result = mining::GenerateRules(itemsets, 0.95);
    rules = result.size();
    benchmark::DoNotOptimize(result.size());
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_RuleGeneration)->Arg(6)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_SequenceOracle(benchmark::State& state) {
  const size_t count = static_cast<size_t>(state.range(0));
  const size_t labels = 10;
  auto sequences = RandomSequences(count, labels, 67);
  size_t confirmed = 0;
  for (auto _ : state) {
    mining::SequenceRuleOracle oracle(sequences, Universe(labels), 0.0);
    confirmed = 0;
    // The singleton implication queries the policy engine issues.
    for (size_t a = 0; a < labels; ++a) {
      for (size_t b = 0; b < labels; ++b) {
        if (a == b) continue;
        if (oracle.Implies({"t" + std::to_string(a)}, {},
                           "t" + std::to_string(b), true)) {
          ++confirmed;
        }
      }
    }
    benchmark::DoNotOptimize(confirmed);
  }
  state.counters["rules"] = static_cast<double>(confirmed);
}
BENCHMARK(BM_SequenceOracle)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
