// Experiment E7: scaling of the mining substrate — Apriori over the
// absent-element-completed transactions (§4.2) as the number of recorded
// sequences and the label-universe size grow, plus the direct
// confidence-1 oracle the policies actually query.
// Counters: itemsets (frequent itemsets found), rules (confidence-1
// singleton rules derivable).

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_json.h"
#include "bench_util.h"
#include "mining/apriori.h"
#include "mining/rules.h"
#include "workload/rng.h"

namespace dtdevolve {
namespace {

/// Random sequence population: `labels` tags, each present independently
/// with probability 0.5 (plus a couple of correlated pairs so rules
/// exist).
std::vector<std::pair<std::set<std::string>, uint32_t>> RandomSequences(
    size_t count, size_t labels, uint64_t seed) {
  workload::Rng rng(seed);
  std::vector<std::pair<std::set<std::string>, uint32_t>> out;
  for (size_t i = 0; i < count; ++i) {
    std::set<std::string> sequence;
    for (size_t l = 0; l < labels; ++l) {
      if (rng.Chance(0.5)) sequence.insert("t" + std::to_string(l));
    }
    // Correlations: t0 implies t1; t2 excludes t3.
    if (sequence.count("t0")) sequence.insert("t1");
    if (sequence.count("t2")) sequence.erase("t3");
    out.emplace_back(std::move(sequence), 1);
  }
  return out;
}

std::set<std::string> Universe(size_t labels) {
  std::set<std::string> out;
  for (size_t l = 0; l < labels; ++l) out.insert("t" + std::to_string(l));
  return out;
}

/// Third arg selects the support counter: 0 = reference subset scan,
/// 1 = bitset masks — same workload, so the pairs compare directly.
void BM_Apriori(benchmark::State& state) {
  const size_t count = static_cast<size_t>(state.range(0));
  const size_t labels = static_cast<size_t>(state.range(1));
  auto sequences = RandomSequences(count, labels, 59);
  std::set<std::string> universe = Universe(labels);

  mining::TransactionSet transactions;
  for (const auto& [sequence, multiplicity] : sequences) {
    transactions.Add(sequence, universe, multiplicity);
  }
  mining::AprioriOptions options;
  options.min_support = 0.3;
  options.max_size = 3;
  options.bitset_counting = state.range(2) != 0;
  size_t itemsets = 0;
  for (auto _ : state) {
    auto result = mining::MineFrequentItemsets(transactions, options);
    itemsets = result.size();
    benchmark::DoNotOptimize(result.size());
  }
  state.counters["itemsets"] = static_cast<double>(itemsets);
}
BENCHMARK(BM_Apriori)
    ->Args({100, 6, 0})
    ->Args({100, 6, 1})
    ->Args({1000, 6, 0})
    ->Args({1000, 6, 1})
    ->Args({100, 10, 0})
    ->Args({100, 10, 1})
    ->Args({1000, 10, 0})
    ->Args({1000, 10, 1})
    ->Args({100, 14, 0})
    ->Args({100, 14, 1})
    ->Unit(benchmark::kMicrosecond);

void BM_RuleGeneration(benchmark::State& state) {
  const size_t labels = static_cast<size_t>(state.range(0));
  auto sequences = RandomSequences(500, labels, 61);
  std::set<std::string> universe = Universe(labels);
  mining::TransactionSet transactions;
  for (const auto& [sequence, multiplicity] : sequences) {
    transactions.Add(sequence, universe, multiplicity);
  }
  mining::AprioriOptions options;
  options.min_support = 0.3;
  options.max_size = 3;
  auto itemsets = mining::MineFrequentItemsets(transactions, options);
  size_t rules = 0;
  for (auto _ : state) {
    auto result = mining::GenerateRules(itemsets, 0.95);
    rules = result.size();
    benchmark::DoNotOptimize(result.size());
  }
  state.counters["rules"] = static_cast<double>(rules);
}
BENCHMARK(BM_RuleGeneration)->Arg(6)->Arg(10)->Unit(benchmark::kMicrosecond);

void BM_SequenceOracle(benchmark::State& state) {
  const size_t count = static_cast<size_t>(state.range(0));
  const size_t labels = 10;
  auto sequences = RandomSequences(count, labels, 67);
  size_t confirmed = 0;
  for (auto _ : state) {
    mining::SequenceRuleOracle oracle(sequences, Universe(labels), 0.0);
    confirmed = 0;
    // The singleton implication queries the policy engine issues.
    for (size_t a = 0; a < labels; ++a) {
      for (size_t b = 0; b < labels; ++b) {
        if (a == b) continue;
        if (oracle.Implies({"t" + std::to_string(a)}, {},
                           "t" + std::to_string(b), true)) {
          ++confirmed;
        }
      }
    }
    benchmark::DoNotOptimize(confirmed);
  }
  state.counters["rules"] = static_cast<double>(confirmed);
}
BENCHMARK(BM_SequenceOracle)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMicrosecond);

// --- `--json` headline: bitset vs subset-scan support counting ---------------
//
// Same fixed-seed transaction population mined with both support
// counters; one line of JSON (schema in TESTING.md) with the runs/sec of
// each and the bitset speedup. Itemset counts must agree — a mismatch is
// reported and fails the run.

int RunHeadline(const std::string& out) {
  const size_t count = 1000, labels = 14;
  auto sequences = RandomSequences(count, labels, 59);
  std::set<std::string> universe = Universe(labels);
  mining::TransactionSet transactions;
  for (const auto& [sequence, multiplicity] : sequences) {
    transactions.Add(sequence, universe, multiplicity);
  }
  mining::AprioriOptions options;
  options.min_support = 0.3;
  options.max_size = 3;
  constexpr size_t kRuns = 20;

  auto time_runs = [&](bool bitset, size_t* itemsets) {
    options.bitset_counting = bitset;
    const auto start = std::chrono::steady_clock::now();
    for (size_t r = 0; r < kRuns; ++r) {
      auto result = mining::MineFrequentItemsets(transactions, options);
      *itemsets = result.size();
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  size_t scan_itemsets = 0, bitset_itemsets = 0;
  const double scan_seconds = time_runs(false, &scan_itemsets);
  const double bitset_seconds = time_runs(true, &bitset_itemsets);

  bench::JsonObject json;
  json.Add("benchmark", std::string("apriori_support_counting"))
      .Add("transactions", count)
      .Add("labels", labels)
      .Add("runs", static_cast<uint64_t>(kRuns))
      .Add("itemsets", bitset_itemsets)
      .Add("scan_seconds", scan_seconds)
      .Add("bitset_seconds", bitset_seconds)
      .Add("scan_runs_per_second",
           scan_seconds > 0 ? static_cast<double>(kRuns) / scan_seconds : 0.0)
      .Add("bitset_runs_per_second",
           bitset_seconds > 0 ? static_cast<double>(kRuns) / bitset_seconds
                              : 0.0)
      .Add("bitset_speedup",
           bitset_seconds > 0 ? scan_seconds / bitset_seconds : 0.0)
      .Add("itemsets_match",
           static_cast<uint64_t>(scan_itemsets == bitset_itemsets ? 1 : 0));
  if (!json.Emit(out)) return 1;
  return scan_itemsets == bitset_itemsets ? 0 : 2;
}

}  // namespace
}  // namespace dtdevolve

int main(int argc, char** argv) {
  std::string out;
  if (dtdevolve::bench::ParseJsonFlag(argc, argv, "BENCH_mining.json", &out)) {
    return dtdevolve::RunHeadline(out);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
