// Experiment E6: the µ minimum-support threshold — the precision /
// conciseness trade-off of the mining step (§4.2). A population with one
// dominant shape plus long-tail noise is evolved at each µ.
// Counters per µ·100:
//   dtd_nodes     — size of the evolved DTD (content-model tree nodes),
//   dominant_valid— post-evolution validity of the dominant shape,
//   noise_valid   — post-evolution validity of the noise documents.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "evolve/evolver.h"
#include "evolve/recorder.h"

namespace dtdevolve {
namespace {

struct Population {
  std::vector<xml::Document> dominant;
  std::vector<xml::Document> noise;
};

Population MakePopulation() {
  Population population;
  dtd::Dtd dtd = bench::MailDtd();
  // Dominant drift: a consistent new `cc` element (insert-only, applied
  // to every document the same way).
  {
    workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                          41);
    for (int i = 0; i < 90; ++i) {
      xml::Document doc = generator.Generate();
      auto cc = std::make_unique<xml::Element>("cc");
      cc->AddText("x");
      doc.root().children().push_back(std::move(cc));
      population.dominant.push_back(std::move(doc));
    }
  }
  // Long-tail noise: heavy random damage with many distinct new tags.
  {
    workload::DocumentGenerator generator(dtd, workload::GeneratorOptions(),
                                          43);
    workload::MutationOptions mutation;
    mutation.insert_probability = 0.9;
    mutation.drop_probability = 0.6;
    mutation.new_tags = {"n1", "n2", "n3", "n4", "n5", "n6"};
    workload::Mutator mutator(mutation, 47);
    for (int i = 0; i < 10; ++i) {
      xml::Document doc = generator.Generate();
      mutator.Mutate(doc);
      population.noise.push_back(std::move(doc));
    }
  }
  return population;
}

void BM_MuSweep(benchmark::State& state) {
  const double mu = static_cast<double>(state.range(0)) / 100.0;
  Population population = MakePopulation();
  size_t nodes = 0;
  double dominant_valid = 0, noise_valid = 0;
  for (auto _ : state) {
    evolve::ExtendedDtd ext(bench::MailDtd());
    evolve::Recorder recorder(ext);
    for (const auto& doc : population.dominant) recorder.RecordDocument(doc);
    for (const auto& doc : population.noise) recorder.RecordDocument(doc);
    evolve::EvolutionOptions options;
    options.min_support = mu;
    options.psi = 0.05;
    evolve::EvolveDtd(ext, options);
    nodes = ext.dtd().TotalNodeCount();
    dominant_valid = bench::ValidFraction(ext.dtd(), population.dominant);
    noise_valid = bench::ValidFraction(ext.dtd(), population.noise);
  }
  state.counters["dtd_nodes"] = static_cast<double>(nodes);
  state.counters["dominant_valid"] = 100.0 * dominant_valid;
  state.counters["noise_valid"] = 100.0 * noise_valid;
}
BENCHMARK(BM_MuSweep)
    ->Arg(0)
    ->Arg(2)
    ->Arg(5)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
