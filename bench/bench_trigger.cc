// Experiment E9: the τ activation threshold — how often evolution fires
// over a drifting stream, and the freshness/cost trade-off (§2: "an
// obvious trade-off between the frequency and the precision of the
// evolution process ... and its cost").
// Counters per τ·100:
//   evolutions   — rounds triggered over the stream,
//   final_valid  — validity of the last 50 documents under the final DTD,
//   mean_sim     — mean classification similarity over the stream.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/source.h"
#include "workload/scenarios.h"

namespace dtdevolve {
namespace {

void BM_TauSweep(benchmark::State& state) {
  const double tau = static_cast<double>(state.range(0)) / 100.0;
  uint64_t evolutions = 0;
  double final_valid = 0.0, mean_sim = 0.0;
  for (auto _ : state) {
    workload::ScenarioStream scenario =
        workload::MakeBibliographyScenario(71, 80);
    core::SourceOptions options;
    options.sigma = 0.3;
    options.tau = tau;
    options.min_documents_before_check = 20;
    core::XmlSource source(options);
    source.AddDtd("bib", scenario.InitialDtd());

    std::vector<xml::Document> tail;
    double sim_sum = 0.0;
    uint64_t processed = 0;
    while (!scenario.Done()) {
      xml::Document doc = scenario.Next();
      if (scenario.Done() ||
          processed + 50 >= scenario.total_documents()) {
        tail.push_back(doc.Clone());
      }
      auto outcome = source.Process(std::move(doc));
      sim_sum += outcome.similarity;
      ++processed;
    }
    evolutions = source.evolutions_performed();
    const dtd::Dtd* dtd = source.FindDtd("bib");
    final_valid = bench::ValidFraction(*dtd, tail);
    mean_sim = sim_sum / static_cast<double>(processed);
  }
  state.counters["evolutions"] = static_cast<double>(evolutions);
  state.counters["final_valid"] = 100.0 * final_valid;
  state.counters["mean_sim"] = mean_sim;
}
BENCHMARK(BM_TauSweep)
    ->Arg(2)
    ->Arg(10)
    ->Arg(25)
    ->Arg(50)
    ->Arg(90)
    ->Unit(benchmark::kMillisecond);

// The check phase itself must be O(1): it reads two aggregates.
void BM_CheckPhase(benchmark::State& state) {
  core::SourceOptions options;
  options.auto_evolve = false;
  core::XmlSource source(options);
  workload::ScenarioStream scenario = workload::MakeNewsScenario(73, 50);
  source.AddDtd("news", scenario.InitialDtd());
  while (!scenario.Done()) source.Process(scenario.Next());
  for (auto _ : state) {
    auto check = source.Check("news");
    benchmark::DoNotOptimize(check.divergence);
  }
}
BENCHMARK(BM_CheckPhase);

}  // namespace
}  // namespace dtdevolve

BENCHMARK_MAIN();
