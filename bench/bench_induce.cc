// Induction loadgen: repository clustering → candidate-DTD induction →
// accept, end to end, on a mixed-population repository of known ground
// truth (k structurally disjoint families ⇒ k clusters ⇒ k candidates).
//
//   bench_induce [--families K] [--docs-per-family N] [--jobs J] [--out F]
//
// Measures the wall time of filling the repository (which includes the
// incremental clustering work), of `InduceCandidates`, and of the accept
// loop that promotes every candidate; reports candidates/sec and the
// repository drain rate. Every candidate is also checked against the
// induction invariants inline — `invariant_failures` must stay 0, and
// tools/perf_smoke.sh gates on it:
//
//   * the sweep recovers exactly `families` clusters and candidates,
//   * each candidate validates >= 95% of its cluster members
//     (independently recounted, not the inducer's own claim),
//   * every accept drains its members from the repository.
//
// Output: one JSON object on stdout, duplicated to --out when given.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.h"
#include "core/source.h"
#include "validate/validator.h"
#include "workload/scenarios.h"
#include "xml/writer.h"

namespace dtdevolve::bench {
namespace {

struct InduceOptions {
  size_t families = 4;
  size_t docs_per_family = 250;
  size_t jobs = 2;
  std::string out;
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int Run(InduceOptions options) {
  // The scenario caps the family count; clamp so the k-cluster invariant
  // compares against what the stream actually contains.
  if (options.families > workload::kMixedPopulationFamilies) {
    options.families = workload::kMixedPopulationFamilies;
  }
  core::SourceOptions source_options;
  source_options.sigma = 0.5;
  source_options.auto_evolve = false;
  source_options.keep_documents = false;
  core::XmlSource source(source_options);

  // Seed a DTD none of the mixed families match, so the whole stream
  // drains into the repository.
  const char* kSeedDtd =
      "<!ELEMENT mail (from, to, body)>\n"
      "<!ELEMENT from (#PCDATA)>\n"
      "<!ELEMENT to (#PCDATA)>\n"
      "<!ELEMENT body (#PCDATA)>\n";
  if (!source.AddDtdText("mail", kSeedDtd).ok()) {
    std::fprintf(stderr, "bench_induce: seed DTD rejected\n");
    return 1;
  }

  workload::ScenarioStream stream = workload::MakeMixedPopulationScenario(
      /*seed=*/17, options.families, options.docs_per_family);
  std::vector<xml::Document> docs;
  while (!stream.Done()) docs.push_back(stream.Next());
  const size_t total_docs = docs.size();

  // Phase 1: fill the repository. Incremental clustering rides along
  // with every unclassified arrival, so this is the "online" cost.
  auto ingest_start = std::chrono::steady_clock::now();
  for (xml::Document& doc : docs) {
    (void)source.Process(std::move(doc));
  }
  const double ingest_seconds = SecondsSince(ingest_start);

  // Phase 2: consolidate clusters and induce one candidate per cluster.
  auto induce_start = std::chrono::steady_clock::now();
  const size_t induced = source.InduceCandidates();
  const double induce_seconds = SecondsSince(induce_start);

  uint64_t invariant_failures = 0;
  const induce::ClusterStats cluster_stats = source.cluster_stats();
  if (cluster_stats.clusters != options.families) {
    std::fprintf(stderr,
                 "bench_induce: invariant: %zu clusters for %zu families\n",
                 cluster_stats.clusters, options.families);
    ++invariant_failures;
  }
  if (induced != options.families) {
    std::fprintf(stderr,
                 "bench_induce: invariant: %zu candidates for %zu families\n",
                 induced, options.families);
    ++invariant_failures;
  }
  for (const induce::Candidate& candidate : source.candidates()) {
    validate::Validator validator(candidate.ext.dtd());
    size_t valid = 0;
    for (int id : candidate.members) {
      const xml::Document& doc = source.repository().Get(id);
      if (doc.has_root() && validator.Validate(doc).valid) ++valid;
    }
    if (valid * 100 < candidate.members.size() * 95) {
      std::fprintf(stderr,
                   "bench_induce: invariant: %s validates %zu of %zu "
                   "members (< 95%%)\n",
                   candidate.name.c_str(), valid, candidate.members.size());
      ++invariant_failures;
    }
  }

  // Phase 3: promote every candidate; each accept re-classifies the
  // repository against the grown set.
  const size_t repository_before = source.repository().size();
  auto accept_start = std::chrono::steady_clock::now();
  size_t accepted = 0;
  size_t reclassified = 0;
  while (!source.candidates().empty()) {
    const induce::Candidate* best = &source.candidates().front();
    StatusOr<core::XmlSource::AcceptOutcome> outcome =
        source.AcceptCandidate(best->id, options.jobs);
    if (!outcome.ok()) {
      std::fprintf(stderr, "bench_induce: accept failed: %s\n",
                   outcome.status().ToString().c_str());
      ++invariant_failures;
      break;
    }
    ++accepted;
    reclassified += outcome->reclassified;
    if (outcome->reclassified == 0) break;
    source.InduceCandidates();
  }
  const double accept_seconds = SecondsSince(accept_start);
  const size_t repository_after = source.repository().size();
  if (repository_after != 0) {
    std::fprintf(stderr,
                 "bench_induce: invariant: %zu document(s) stranded in the "
                 "repository after accepting every candidate\n",
                 repository_after);
    ++invariant_failures;
  }

  const double drain_rate =
      repository_before == 0
          ? 1.0
          : static_cast<double>(repository_before - repository_after) /
                static_cast<double>(repository_before);
  JsonObject json;
  json.Add("benchmark", std::string("induce"))
      .Add("families", static_cast<uint64_t>(options.families))
      .Add("docs_per_family", static_cast<uint64_t>(options.docs_per_family))
      .Add("docs", static_cast<uint64_t>(total_docs))
      .Add("jobs", static_cast<uint64_t>(options.jobs))
      .Add("repository", static_cast<uint64_t>(repository_before))
      .Add("clusters", static_cast<uint64_t>(cluster_stats.clusters))
      .Add("candidates", static_cast<uint64_t>(induced))
      .Add("accepted", static_cast<uint64_t>(accepted))
      .Add("reclassified", static_cast<uint64_t>(reclassified))
      .Add("ingest_seconds", ingest_seconds)
      .Add("induce_seconds", induce_seconds)
      .Add("accept_seconds", accept_seconds)
      .Add("docs_per_second",
           ingest_seconds > 0.0
               ? static_cast<double>(total_docs) / ingest_seconds
               : 0.0)
      .Add("candidates_per_second",
           induce_seconds > 0.0
               ? static_cast<double>(induced) / induce_seconds
               : 0.0)
      .Add("repository_drain_rate", drain_rate)
      .Add("invariant_failures", invariant_failures);
  const std::string rendered = json.Render();
  std::fputs(rendered.c_str(), stdout);
  if (!options.out.empty()) {
    std::FILE* f = std::fopen(options.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_induce: cannot write %s\n",
                   options.out.c_str());
      return 1;
    }
    std::fputs(rendered.c_str(), f);
    std::fclose(f);
  }
  return invariant_failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dtdevolve::bench

int main(int argc, char** argv) {
  dtdevolve::bench::InduceOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--families") {
      const char* v = value();
      if (v == nullptr || std::atol(v) <= 0) return 1;
      options.families = static_cast<size_t>(std::atol(v));
    } else if (arg == "--docs-per-family") {
      const char* v = value();
      if (v == nullptr || std::atol(v) <= 0) return 1;
      options.docs_per_family = static_cast<size_t>(std::atol(v));
    } else if (arg == "--jobs") {
      const char* v = value();
      if (v == nullptr || std::atol(v) <= 0) return 1;
      options.jobs = static_cast<size_t>(std::atol(v));
    } else if (arg == "--out") {
      const char* v = value();
      if (v == nullptr) return 1;
      options.out = v;
    } else {
      std::fprintf(stderr,
                   "usage: bench_induce [--families K] [--docs-per-family N] "
                   "[--jobs J] [--out F]\n");
      return 1;
    }
  }
  return dtdevolve::bench::Run(options);
}
