# Empty dependencies file for dtdevolve_classify.
# This may be replaced when dependencies are built.
