file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_classify.dir/classify/classifier.cc.o"
  "CMakeFiles/dtdevolve_classify.dir/classify/classifier.cc.o.d"
  "CMakeFiles/dtdevolve_classify.dir/classify/repository.cc.o"
  "CMakeFiles/dtdevolve_classify.dir/classify/repository.cc.o.d"
  "libdtdevolve_classify.a"
  "libdtdevolve_classify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_classify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
