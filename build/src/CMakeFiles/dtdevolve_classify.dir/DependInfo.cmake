
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/classify/classifier.cc" "src/CMakeFiles/dtdevolve_classify.dir/classify/classifier.cc.o" "gcc" "src/CMakeFiles/dtdevolve_classify.dir/classify/classifier.cc.o.d"
  "/root/repo/src/classify/repository.cc" "src/CMakeFiles/dtdevolve_classify.dir/classify/repository.cc.o" "gcc" "src/CMakeFiles/dtdevolve_classify.dir/classify/repository.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtdevolve_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
