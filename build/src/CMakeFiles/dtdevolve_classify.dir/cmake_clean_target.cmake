file(REMOVE_RECURSE
  "libdtdevolve_classify.a"
)
