# Empty compiler generated dependencies file for dtdevolve_validate.
# This may be replaced when dependencies are built.
