file(REMOVE_RECURSE
  "libdtdevolve_validate.a"
)
