file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_validate.dir/validate/validator.cc.o"
  "CMakeFiles/dtdevolve_validate.dir/validate/validator.cc.o.d"
  "libdtdevolve_validate.a"
  "libdtdevolve_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
