file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_util.dir/util/status.cc.o"
  "CMakeFiles/dtdevolve_util.dir/util/status.cc.o.d"
  "CMakeFiles/dtdevolve_util.dir/util/string_util.cc.o"
  "CMakeFiles/dtdevolve_util.dir/util/string_util.cc.o.d"
  "libdtdevolve_util.a"
  "libdtdevolve_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
