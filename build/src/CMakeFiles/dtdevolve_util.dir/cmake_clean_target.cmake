file(REMOVE_RECURSE
  "libdtdevolve_util.a"
)
