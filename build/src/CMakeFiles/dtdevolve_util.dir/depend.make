# Empty dependencies file for dtdevolve_util.
# This may be replaced when dependencies are built.
