
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/evolve/evolver.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/evolver.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/evolver.cc.o.d"
  "/root/repo/src/evolve/extended_dtd.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/extended_dtd.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/extended_dtd.cc.o.d"
  "/root/repo/src/evolve/persist.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/persist.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/persist.cc.o.d"
  "/root/repo/src/evolve/policies.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/policies.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/policies.cc.o.d"
  "/root/repo/src/evolve/recorder.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/recorder.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/recorder.cc.o.d"
  "/root/repo/src/evolve/rename.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/rename.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/rename.cc.o.d"
  "/root/repo/src/evolve/restriction.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/restriction.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/restriction.cc.o.d"
  "/root/repo/src/evolve/stats.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/stats.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/stats.cc.o.d"
  "/root/repo/src/evolve/structure_builder.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/structure_builder.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/structure_builder.cc.o.d"
  "/root/repo/src/evolve/trigger.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/trigger.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/trigger.cc.o.d"
  "/root/repo/src/evolve/windows.cc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/windows.cc.o" "gcc" "src/CMakeFiles/dtdevolve_evolve.dir/evolve/windows.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtdevolve_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
