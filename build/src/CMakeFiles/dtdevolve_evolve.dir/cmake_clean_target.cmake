file(REMOVE_RECURSE
  "libdtdevolve_evolve.a"
)
