file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_evolve.dir/evolve/evolver.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/evolver.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/extended_dtd.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/extended_dtd.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/persist.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/persist.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/policies.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/policies.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/recorder.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/recorder.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/rename.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/rename.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/restriction.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/restriction.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/stats.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/stats.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/structure_builder.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/structure_builder.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/trigger.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/trigger.cc.o.d"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/windows.cc.o"
  "CMakeFiles/dtdevolve_evolve.dir/evolve/windows.cc.o.d"
  "libdtdevolve_evolve.a"
  "libdtdevolve_evolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_evolve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
