# Empty dependencies file for dtdevolve_evolve.
# This may be replaced when dependencies are built.
