# Empty compiler generated dependencies file for dtdevolve_similarity.
# This may be replaced when dependencies are built.
