file(REMOVE_RECURSE
  "libdtdevolve_similarity.a"
)
