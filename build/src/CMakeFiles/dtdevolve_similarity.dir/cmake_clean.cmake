file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_similarity.dir/similarity/matcher.cc.o"
  "CMakeFiles/dtdevolve_similarity.dir/similarity/matcher.cc.o.d"
  "CMakeFiles/dtdevolve_similarity.dir/similarity/similarity.cc.o"
  "CMakeFiles/dtdevolve_similarity.dir/similarity/similarity.cc.o.d"
  "CMakeFiles/dtdevolve_similarity.dir/similarity/thesaurus.cc.o"
  "CMakeFiles/dtdevolve_similarity.dir/similarity/thesaurus.cc.o.d"
  "CMakeFiles/dtdevolve_similarity.dir/similarity/triple.cc.o"
  "CMakeFiles/dtdevolve_similarity.dir/similarity/triple.cc.o.d"
  "libdtdevolve_similarity.a"
  "libdtdevolve_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
