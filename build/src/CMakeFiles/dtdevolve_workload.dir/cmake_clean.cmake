file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_workload.dir/workload/generator.cc.o"
  "CMakeFiles/dtdevolve_workload.dir/workload/generator.cc.o.d"
  "CMakeFiles/dtdevolve_workload.dir/workload/mutator.cc.o"
  "CMakeFiles/dtdevolve_workload.dir/workload/mutator.cc.o.d"
  "CMakeFiles/dtdevolve_workload.dir/workload/rng.cc.o"
  "CMakeFiles/dtdevolve_workload.dir/workload/rng.cc.o.d"
  "CMakeFiles/dtdevolve_workload.dir/workload/scenarios.cc.o"
  "CMakeFiles/dtdevolve_workload.dir/workload/scenarios.cc.o.d"
  "libdtdevolve_workload.a"
  "libdtdevolve_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
