# Empty dependencies file for dtdevolve_workload.
# This may be replaced when dependencies are built.
