file(REMOVE_RECURSE
  "libdtdevolve_workload.a"
)
