file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_xml.dir/xml/document.cc.o"
  "CMakeFiles/dtdevolve_xml.dir/xml/document.cc.o.d"
  "CMakeFiles/dtdevolve_xml.dir/xml/lexer.cc.o"
  "CMakeFiles/dtdevolve_xml.dir/xml/lexer.cc.o.d"
  "CMakeFiles/dtdevolve_xml.dir/xml/parser.cc.o"
  "CMakeFiles/dtdevolve_xml.dir/xml/parser.cc.o.d"
  "CMakeFiles/dtdevolve_xml.dir/xml/path.cc.o"
  "CMakeFiles/dtdevolve_xml.dir/xml/path.cc.o.d"
  "CMakeFiles/dtdevolve_xml.dir/xml/text.cc.o"
  "CMakeFiles/dtdevolve_xml.dir/xml/text.cc.o.d"
  "CMakeFiles/dtdevolve_xml.dir/xml/writer.cc.o"
  "CMakeFiles/dtdevolve_xml.dir/xml/writer.cc.o.d"
  "libdtdevolve_xml.a"
  "libdtdevolve_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
