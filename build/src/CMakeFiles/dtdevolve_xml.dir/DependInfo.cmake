
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xml/document.cc" "src/CMakeFiles/dtdevolve_xml.dir/xml/document.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xml.dir/xml/document.cc.o.d"
  "/root/repo/src/xml/lexer.cc" "src/CMakeFiles/dtdevolve_xml.dir/xml/lexer.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xml.dir/xml/lexer.cc.o.d"
  "/root/repo/src/xml/parser.cc" "src/CMakeFiles/dtdevolve_xml.dir/xml/parser.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xml.dir/xml/parser.cc.o.d"
  "/root/repo/src/xml/path.cc" "src/CMakeFiles/dtdevolve_xml.dir/xml/path.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xml.dir/xml/path.cc.o.d"
  "/root/repo/src/xml/text.cc" "src/CMakeFiles/dtdevolve_xml.dir/xml/text.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xml.dir/xml/text.cc.o.d"
  "/root/repo/src/xml/writer.cc" "src/CMakeFiles/dtdevolve_xml.dir/xml/writer.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xml.dir/xml/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtdevolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
