file(REMOVE_RECURSE
  "libdtdevolve_xml.a"
)
