# Empty compiler generated dependencies file for dtdevolve_xml.
# This may be replaced when dependencies are built.
