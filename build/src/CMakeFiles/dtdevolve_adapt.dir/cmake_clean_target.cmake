file(REMOVE_RECURSE
  "libdtdevolve_adapt.a"
)
