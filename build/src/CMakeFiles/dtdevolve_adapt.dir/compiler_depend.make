# Empty compiler generated dependencies file for dtdevolve_adapt.
# This may be replaced when dependencies are built.
