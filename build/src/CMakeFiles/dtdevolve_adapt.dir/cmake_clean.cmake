file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_adapt.dir/adapt/adapter.cc.o"
  "CMakeFiles/dtdevolve_adapt.dir/adapt/adapter.cc.o.d"
  "libdtdevolve_adapt.a"
  "libdtdevolve_adapt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_adapt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
