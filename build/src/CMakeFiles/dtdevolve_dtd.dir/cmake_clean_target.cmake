file(REMOVE_RECURSE
  "libdtdevolve_dtd.a"
)
