
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dtd/content_model.cc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/content_model.cc.o" "gcc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/content_model.cc.o.d"
  "/root/repo/src/dtd/diff.cc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/diff.cc.o" "gcc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/diff.cc.o.d"
  "/root/repo/src/dtd/dtd.cc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/dtd.cc.o" "gcc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/dtd.cc.o.d"
  "/root/repo/src/dtd/dtd_parser.cc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/dtd_parser.cc.o" "gcc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/dtd_parser.cc.o.d"
  "/root/repo/src/dtd/dtd_writer.cc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/dtd_writer.cc.o" "gcc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/dtd_writer.cc.o.d"
  "/root/repo/src/dtd/glushkov.cc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/glushkov.cc.o" "gcc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/glushkov.cc.o.d"
  "/root/repo/src/dtd/rewrite.cc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/rewrite.cc.o" "gcc" "src/CMakeFiles/dtdevolve_dtd.dir/dtd/rewrite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtdevolve_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
