# Empty compiler generated dependencies file for dtdevolve_dtd.
# This may be replaced when dependencies are built.
