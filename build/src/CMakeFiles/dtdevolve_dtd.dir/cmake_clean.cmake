file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_dtd.dir/dtd/content_model.cc.o"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/content_model.cc.o.d"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/diff.cc.o"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/diff.cc.o.d"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/dtd.cc.o"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/dtd.cc.o.d"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/dtd_parser.cc.o"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/dtd_parser.cc.o.d"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/dtd_writer.cc.o"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/dtd_writer.cc.o.d"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/glushkov.cc.o"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/glushkov.cc.o.d"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/rewrite.cc.o"
  "CMakeFiles/dtdevolve_dtd.dir/dtd/rewrite.cc.o.d"
  "libdtdevolve_dtd.a"
  "libdtdevolve_dtd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_dtd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
