file(REMOVE_RECURSE
  "libdtdevolve_baseline.a"
)
