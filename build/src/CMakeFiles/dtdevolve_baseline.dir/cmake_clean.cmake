file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_baseline.dir/baseline/collect.cc.o"
  "CMakeFiles/dtdevolve_baseline.dir/baseline/collect.cc.o.d"
  "CMakeFiles/dtdevolve_baseline.dir/baseline/naive_infer.cc.o"
  "CMakeFiles/dtdevolve_baseline.dir/baseline/naive_infer.cc.o.d"
  "CMakeFiles/dtdevolve_baseline.dir/baseline/xtract.cc.o"
  "CMakeFiles/dtdevolve_baseline.dir/baseline/xtract.cc.o.d"
  "libdtdevolve_baseline.a"
  "libdtdevolve_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
