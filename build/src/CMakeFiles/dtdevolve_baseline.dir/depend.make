# Empty dependencies file for dtdevolve_baseline.
# This may be replaced when dependencies are built.
