# Empty compiler generated dependencies file for dtdevolve_mining.
# This may be replaced when dependencies are built.
