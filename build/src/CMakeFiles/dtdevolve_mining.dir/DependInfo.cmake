
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mining/apriori.cc" "src/CMakeFiles/dtdevolve_mining.dir/mining/apriori.cc.o" "gcc" "src/CMakeFiles/dtdevolve_mining.dir/mining/apriori.cc.o.d"
  "/root/repo/src/mining/rules.cc" "src/CMakeFiles/dtdevolve_mining.dir/mining/rules.cc.o" "gcc" "src/CMakeFiles/dtdevolve_mining.dir/mining/rules.cc.o.d"
  "/root/repo/src/mining/transactions.cc" "src/CMakeFiles/dtdevolve_mining.dir/mining/transactions.cc.o" "gcc" "src/CMakeFiles/dtdevolve_mining.dir/mining/transactions.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtdevolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
