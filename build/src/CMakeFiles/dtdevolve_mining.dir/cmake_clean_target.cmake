file(REMOVE_RECURSE
  "libdtdevolve_mining.a"
)
