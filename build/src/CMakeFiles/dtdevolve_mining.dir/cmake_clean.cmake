file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_mining.dir/mining/apriori.cc.o"
  "CMakeFiles/dtdevolve_mining.dir/mining/apriori.cc.o.d"
  "CMakeFiles/dtdevolve_mining.dir/mining/rules.cc.o"
  "CMakeFiles/dtdevolve_mining.dir/mining/rules.cc.o.d"
  "CMakeFiles/dtdevolve_mining.dir/mining/transactions.cc.o"
  "CMakeFiles/dtdevolve_mining.dir/mining/transactions.cc.o.d"
  "libdtdevolve_mining.a"
  "libdtdevolve_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
