# Empty compiler generated dependencies file for dtdevolve_core.
# This may be replaced when dependencies are built.
