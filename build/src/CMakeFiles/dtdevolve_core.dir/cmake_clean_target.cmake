file(REMOVE_RECURSE
  "libdtdevolve_core.a"
)
