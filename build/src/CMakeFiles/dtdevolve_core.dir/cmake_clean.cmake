file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_core.dir/core/report.cc.o"
  "CMakeFiles/dtdevolve_core.dir/core/report.cc.o.d"
  "CMakeFiles/dtdevolve_core.dir/core/source.cc.o"
  "CMakeFiles/dtdevolve_core.dir/core/source.cc.o.d"
  "CMakeFiles/dtdevolve_core.dir/core/trigger_language.cc.o"
  "CMakeFiles/dtdevolve_core.dir/core/trigger_language.cc.o.d"
  "libdtdevolve_core.a"
  "libdtdevolve_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
