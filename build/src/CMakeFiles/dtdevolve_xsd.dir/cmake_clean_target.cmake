file(REMOVE_RECURSE
  "libdtdevolve_xsd.a"
)
