# Empty compiler generated dependencies file for dtdevolve_xsd.
# This may be replaced when dependencies are built.
