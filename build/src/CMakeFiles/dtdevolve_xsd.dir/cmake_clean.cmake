file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_xsd.dir/xsd/from_dtd.cc.o"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/from_dtd.cc.o.d"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/parser.cc.o"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/parser.cc.o.d"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/schema.cc.o"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/schema.cc.o.d"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/to_dtd.cc.o"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/to_dtd.cc.o.d"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/writer.cc.o"
  "CMakeFiles/dtdevolve_xsd.dir/xsd/writer.cc.o.d"
  "libdtdevolve_xsd.a"
  "libdtdevolve_xsd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_xsd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
