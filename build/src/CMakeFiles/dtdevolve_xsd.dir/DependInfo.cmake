
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/xsd/from_dtd.cc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/from_dtd.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/from_dtd.cc.o.d"
  "/root/repo/src/xsd/parser.cc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/parser.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/parser.cc.o.d"
  "/root/repo/src/xsd/schema.cc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/schema.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/schema.cc.o.d"
  "/root/repo/src/xsd/to_dtd.cc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/to_dtd.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/to_dtd.cc.o.d"
  "/root/repo/src/xsd/writer.cc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/writer.cc.o" "gcc" "src/CMakeFiles/dtdevolve_xsd.dir/xsd/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtdevolve_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
