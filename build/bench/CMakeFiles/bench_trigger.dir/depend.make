# Empty dependencies file for bench_trigger.
# This may be replaced when dependencies are built.
