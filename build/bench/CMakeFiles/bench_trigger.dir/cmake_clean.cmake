file(REMOVE_RECURSE
  "CMakeFiles/bench_trigger.dir/bench_trigger.cc.o"
  "CMakeFiles/bench_trigger.dir/bench_trigger.cc.o.d"
  "bench_trigger"
  "bench_trigger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trigger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
