# Empty dependencies file for bench_windows.
# This may be replaced when dependencies are built.
