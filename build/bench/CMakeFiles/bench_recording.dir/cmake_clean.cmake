file(REMOVE_RECURSE
  "CMakeFiles/bench_recording.dir/bench_recording.cc.o"
  "CMakeFiles/bench_recording.dir/bench_recording.cc.o.d"
  "bench_recording"
  "bench_recording.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recording.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
