# Empty dependencies file for bench_recording.
# This may be replaced when dependencies are built.
