file(REMOVE_RECURSE
  "CMakeFiles/bench_support.dir/bench_support.cc.o"
  "CMakeFiles/bench_support.dir/bench_support.cc.o.d"
  "bench_support"
  "bench_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
