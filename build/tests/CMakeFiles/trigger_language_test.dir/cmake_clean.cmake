file(REMOVE_RECURSE
  "CMakeFiles/trigger_language_test.dir/trigger_language_test.cc.o"
  "CMakeFiles/trigger_language_test.dir/trigger_language_test.cc.o.d"
  "trigger_language_test"
  "trigger_language_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trigger_language_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
