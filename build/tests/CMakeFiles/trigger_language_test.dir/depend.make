# Empty dependencies file for trigger_language_test.
# This may be replaced when dependencies are built.
