# Empty dependencies file for restriction_test.
# This may be replaced when dependencies are built.
