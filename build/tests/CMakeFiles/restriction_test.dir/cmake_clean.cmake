file(REMOVE_RECURSE
  "CMakeFiles/restriction_test.dir/restriction_test.cc.o"
  "CMakeFiles/restriction_test.dir/restriction_test.cc.o.d"
  "restriction_test"
  "restriction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/restriction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
