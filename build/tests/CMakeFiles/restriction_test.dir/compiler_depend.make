# Empty compiler generated dependencies file for restriction_test.
# This may be replaced when dependencies are built.
