# Empty compiler generated dependencies file for glushkov_test.
# This may be replaced when dependencies are built.
