
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rename_test.cc" "tests/CMakeFiles/rename_test.dir/rename_test.cc.o" "gcc" "tests/CMakeFiles/rename_test.dir/rename_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dtdevolve_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_evolve.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_mining.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_classify.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_adapt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_validate.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_xsd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_dtd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dtdevolve_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
