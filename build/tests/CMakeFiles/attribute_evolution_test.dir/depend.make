# Empty dependencies file for attribute_evolution_test.
# This may be replaced when dependencies are built.
