file(REMOVE_RECURSE
  "CMakeFiles/attribute_evolution_test.dir/attribute_evolution_test.cc.o"
  "CMakeFiles/attribute_evolution_test.dir/attribute_evolution_test.cc.o.d"
  "attribute_evolution_test"
  "attribute_evolution_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attribute_evolution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
