file(REMOVE_RECURSE
  "CMakeFiles/xsd_test.dir/xsd_test.cc.o"
  "CMakeFiles/xsd_test.dir/xsd_test.cc.o.d"
  "xsd_test"
  "xsd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
