file(REMOVE_RECURSE
  "CMakeFiles/adapter_test.dir/adapter_test.cc.o"
  "CMakeFiles/adapter_test.dir/adapter_test.cc.o.d"
  "adapter_test"
  "adapter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
