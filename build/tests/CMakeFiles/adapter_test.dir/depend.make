# Empty dependencies file for adapter_test.
# This may be replaced when dependencies are built.
