file(REMOVE_RECURSE
  "CMakeFiles/evolver_test.dir/evolver_test.cc.o"
  "CMakeFiles/evolver_test.dir/evolver_test.cc.o.d"
  "evolver_test"
  "evolver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
