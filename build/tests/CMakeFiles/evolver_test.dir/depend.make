# Empty dependencies file for evolver_test.
# This may be replaced when dependencies are built.
