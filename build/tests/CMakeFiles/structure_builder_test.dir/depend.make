# Empty dependencies file for structure_builder_test.
# This may be replaced when dependencies are built.
