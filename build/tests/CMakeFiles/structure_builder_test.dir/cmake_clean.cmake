file(REMOVE_RECURSE
  "CMakeFiles/structure_builder_test.dir/structure_builder_test.cc.o"
  "CMakeFiles/structure_builder_test.dir/structure_builder_test.cc.o.d"
  "structure_builder_test"
  "structure_builder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
