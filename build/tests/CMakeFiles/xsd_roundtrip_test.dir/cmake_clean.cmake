file(REMOVE_RECURSE
  "CMakeFiles/xsd_roundtrip_test.dir/xsd_roundtrip_test.cc.o"
  "CMakeFiles/xsd_roundtrip_test.dir/xsd_roundtrip_test.cc.o.d"
  "xsd_roundtrip_test"
  "xsd_roundtrip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xsd_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
