# Empty dependencies file for content_model_test.
# This may be replaced when dependencies are built.
