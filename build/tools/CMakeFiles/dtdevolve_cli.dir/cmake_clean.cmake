file(REMOVE_RECURSE
  "CMakeFiles/dtdevolve_cli.dir/dtdevolve_cli.cc.o"
  "CMakeFiles/dtdevolve_cli.dir/dtdevolve_cli.cc.o.d"
  "dtdevolve"
  "dtdevolve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdevolve_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
