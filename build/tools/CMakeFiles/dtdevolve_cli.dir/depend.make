# Empty dependencies file for dtdevolve_cli.
# This may be replaced when dependencies are built.
