file(REMOVE_RECURSE
  "CMakeFiles/bibliography_evolution.dir/bibliography_evolution.cpp.o"
  "CMakeFiles/bibliography_evolution.dir/bibliography_evolution.cpp.o.d"
  "bibliography_evolution"
  "bibliography_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
