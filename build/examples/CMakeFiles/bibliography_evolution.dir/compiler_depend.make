# Empty compiler generated dependencies file for bibliography_evolution.
# This may be replaced when dependencies are built.
