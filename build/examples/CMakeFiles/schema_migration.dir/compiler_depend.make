# Empty compiler generated dependencies file for schema_migration.
# This may be replaced when dependencies are built.
