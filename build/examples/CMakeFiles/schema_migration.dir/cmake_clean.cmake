file(REMOVE_RECURSE
  "CMakeFiles/schema_migration.dir/schema_migration.cpp.o"
  "CMakeFiles/schema_migration.dir/schema_migration.cpp.o.d"
  "schema_migration"
  "schema_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
