# Empty dependencies file for web_catalog.
# This may be replaced when dependencies are built.
