file(REMOVE_RECURSE
  "CMakeFiles/web_catalog.dir/web_catalog.cpp.o"
  "CMakeFiles/web_catalog.dir/web_catalog.cpp.o.d"
  "web_catalog"
  "web_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
